"""Dependency-free lint fallback for environments without ruff/mypy.

``make lint`` and ``make typecheck`` prefer the real tools when they are
on PATH (configured in ``pyproject.toml``); this script is the degraded
lane the repository can always run.  It parses every Python file with
:mod:`ast` and reports:

* syntax errors;
* unused imports (module scope);
* duplicate top-level definitions;
* ``except:`` without an exception class;
* tabs in indentation and trailing whitespace;
* lines longer than the configured limit.

When the paths include engine source, the SIM3xx concurrency lint
(:mod:`repro.analysis.concurrency`) runs as part of the same sweep, so
``make lint`` gates lock discipline even without ruff installed.

Usage::

    python tools/dev_lint.py [--line-length N] [--no-concurrency] [paths...]

Exit status 1 when any finding is reported, 0 otherwise.
"""

from __future__ import annotations

import argparse
import ast
import os
import sys
from typing import Iterator, List, Tuple

# Self-bootstrapping: CI and bare `python tools/dev_lint.py` runs have no
# PYTHONPATH; the concurrency pass needs the repro package importable.
_SRC = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

Finding = Tuple[str, int, str]


def iter_python_files(paths: List[str]) -> Iterator[str]:
    for path in paths:
        if os.path.isfile(path) and path.endswith(".py"):
            yield path
            continue
        for root, dirs, files in os.walk(path):
            dirs[:] = [d for d in dirs
                       if d not in ("__pycache__", ".git", ".ruff_cache")]
            for name in sorted(files):
                if name.endswith(".py"):
                    yield os.path.join(root, name)


def _imported_names(node: ast.AST) -> List[Tuple[str, int]]:
    names = []
    if isinstance(node, ast.Import):
        for alias in node.names:
            bound = alias.asname or alias.name.split(".")[0]
            names.append((bound, node.lineno))
    elif isinstance(node, ast.ImportFrom):
        if node.module == "__future__":
            return names        # compiler directives, not bindings
        for alias in node.names:
            if alias.name == "*":
                continue
            names.append((alias.asname or alias.name, node.lineno))
    return names


def _used_names(tree: ast.AST) -> set:
    used = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name):
            used.add(node.id)
        elif isinstance(node, ast.Attribute):
            # "repro.analysis.cli" used as "repro.analysis" — the root
            # Name node covers it; nothing extra to record.
            pass
    # Names re-exported via __all__ strings count as used.
    for node in ast.walk(tree):
        if (isinstance(node, ast.Assign)
                and any(isinstance(t, ast.Name) and t.id == "__all__"
                        for t in node.targets)):
            for element in ast.walk(node.value):
                if isinstance(element, ast.Constant) \
                        and isinstance(element.value, str):
                    used.add(element.value)
    return used


def check_file(path: str, line_length: int) -> List[Finding]:
    findings: List[Finding] = []
    with open(path, encoding="utf-8") as handle:
        source = handle.read()

    for number, line in enumerate(source.splitlines(), start=1):
        stripped = line.rstrip("\n")
        if stripped != stripped.rstrip():
            findings.append((path, number, "trailing whitespace"))
        indent = stripped[:len(stripped) - len(stripped.lstrip())]
        if "\t" in indent:
            findings.append((path, number, "tab in indentation"))
        if len(stripped) > line_length:
            findings.append(
                (path, number,
                 f"line too long ({len(stripped)} > {line_length})"))

    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        findings.append((path, exc.lineno or 0, f"syntax error: {exc.msg}"))
        return findings

    used = _used_names(tree)
    for node in tree.body:
        for name, lineno in _imported_names(node):
            if name not in used and not name.startswith("_"):
                findings.append((path, lineno, f"unused import {name!r}"))

    seen = {}
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            if node.name in seen:
                findings.append(
                    (path, node.lineno,
                     f"duplicate top-level definition {node.name!r} "
                     f"(first at line {seen[node.name]})"))
            seen[node.name] = node.lineno

    for node in ast.walk(tree):
        if isinstance(node, ast.ExceptHandler) and node.type is None:
            findings.append((path, node.lineno,
                             "bare 'except:'; name the exception class"))
    return findings


def concurrency_findings(paths: List[str]) -> List[Finding]:
    """SIM3xx lock-discipline findings, folded into the hygiene sweep."""
    from repro.analysis.concurrency import lint_concurrency_paths
    findings: List[Finding] = []
    for path, diagnostic in lint_concurrency_paths(paths):
        findings.append((path, diagnostic.span.line,
                         f"{diagnostic.code} {diagnostic.severity}: "
                         f"{diagnostic.message}"))
    return findings


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="*", default=["src/repro"],
                        help="files or directories (default: src/repro)")
    parser.add_argument("--line-length", type=int, default=88)
    parser.add_argument("--no-concurrency", action="store_true",
                        help="skip the SIM3xx concurrency lint pass")
    args = parser.parse_args(argv)
    paths = args.paths or ["src/repro"]

    findings: List[Finding] = []
    checked = 0
    for path in iter_python_files(paths):
        checked += 1
        findings.extend(check_file(path, args.line_length))
    if not args.no_concurrency:
        findings.extend(concurrency_findings(paths))

    for path, lineno, message in findings:
        print(f"{path}:{lineno}: {message}")
    print(f"{checked} file(s) checked, {len(findings)} finding(s)")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
