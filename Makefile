PYTHONPATH := src
export PYTHONPATH

.PHONY: test torture bench bench-recovery bench-read-path

test:
	python -m pytest -x -q

# The seeded fault-injection crash-torture lane (fixed seed, ~200+ crash
# points; see tests/test_torture.py).
torture:
	python -m pytest -q -m torture tests/test_torture.py

bench:
	python -m pytest -q benchmarks/ --benchmark-only

bench-recovery:
	python benchmarks/make_report.py --recovery

bench-read-path:
	python benchmarks/make_report.py --read-path
