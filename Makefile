PYTHONPATH := src
export PYTHONPATH

.PHONY: test torture chaos lockdep bench bench-recovery bench-read-path \
	bench-lint bench-trace bench-batch bench-scale bench-concurrency \
	bench-concurrency-smoke bench-lockdep bench-rewrite lint typecheck \
	simcheck

test:
	python -m pytest -x -q

# Static analysis lanes.  ruff adds style checks when installed
# (configured in pyproject.toml); tools/dev_lint.py (AST hygiene +
# SIM3xx concurrency lint) and the standalone concurrency gate always
# run — they are dependency-free.
lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src/repro tools; \
	fi
	python tools/dev_lint.py src/repro tools
	python -m repro lint --concurrency --strict

typecheck:
	@if command -v mypy >/dev/null 2>&1; then \
		mypy; \
	else \
		echo "mypy not installed; falling back to compileall"; \
		python -m compileall -q src/repro; \
	fi

# simcheck over the UNIVERSITY schema (the repo's own dogfood lane).
simcheck:
	python -c "from repro.workloads import UNIVERSITY_DDL; \
	open('/tmp/university.ddl', 'w').write(UNIVERSITY_DDL)"
	python -m repro lint /tmp/university.ddl --strict

# The seeded fault-injection crash-torture lane (fixed seed, ~200+ crash
# points; see tests/test_torture.py).
torture:
	python -m pytest -q -m torture tests/test_torture.py

# The multi-session contention/fault chaos lane (seeded writer fleets,
# deadlock-prone mixes, committed-prefix oracle; see tests/test_chaos.py).
# Runs with runtime lockdep on: any lock-order violation fails the lane.
chaos:
	REPRO_LOCKDEP=1 python -m pytest -q -m chaos tests/test_chaos.py

# Runtime lock-order validation lane: lockdep unit tests plus the
# lock-heavy suites (sessions/mvcc/server) under REPRO_LOCKDEP=1.
lockdep:
	REPRO_LOCKDEP=1 python -m pytest -q tests/test_lockdep.py \
		tests/test_sessions.py tests/test_mvcc.py tests/test_server.py

bench:
	python -m pytest -q benchmarks/ --benchmark-only

bench-recovery:
	python benchmarks/make_report.py --recovery

bench-read-path:
	python benchmarks/make_report.py --read-path

bench-lint:
	python benchmarks/make_report.py --lint

# E16: tracing-overhead gate (fails if dormant tracing costs > 5%).
bench-trace:
	python benchmarks/make_report.py --trace

# E17: batched-execution gate (fails below 2x on traversal queries or on
# any row mismatch against the tuple-at-a-time interpreter).
bench-batch:
	python benchmarks/make_report.py --batch

# E18: morsel-parallelism gate at 10^5 entities (fails below 2x aggregate
# speedup at 4 workers on traversal-heavy queries, or on any row drift
# between parallel and serial execution).
bench-scale:
	python benchmarks/make_report.py --scale

# E19: multi-session concurrency gate (fails on row drift between
# concurrent snapshot reads and serial execution, on a committed-prefix
# oracle violation under contention, below 1.3x read throughput at
# 4 sessions, or below 2x disjoint-entity write throughput at 8
# sessions vs the class-granularity baseline).
bench-concurrency:
	python benchmarks/make_report.py --concurrency

# The reduced E19 lane CI runs: row identity + both committed-prefix
# oracles + the disjoint-entity >=2x gate, no read-throughput bound.
bench-concurrency-smoke:
	python benchmarks/make_report.py --concurrency-smoke

# E20: lockdep instrumentation-overhead gate (fails if runtime lock-order
# checking costs >10% on the E19 contended-write cell, or if any
# violation is recorded during the measurement).
bench-lockdep:
	python benchmarks/make_report.py --lockdep

# E21: semantic-rewrite gate (fails below 2x on the subclass-pruned ISA
# cell or the closure-materialization cell, on any row drift against the
# rewrite-off reference, or if either cell fails to exercise its
# rewrite/materialization).
bench-rewrite:
	python benchmarks/make_report.py --rewrite
