"""E13 — read-path acceleration: decoded-record / fan-out caches and
query-scoped memoization.

The paper's nested-loop semantics program (§4.5) re-reads every DVA and
re-traverses every EVA once per enumerated tuple; §5.1 concedes that
statistical optimization "is not fully implemented yet", leaving the read
path as the dominant cost.  This experiment measures the layered caches
added above the physical mapping (``repro.mapper.read_cache``) plus the
engine's query-scoped memoization (``repro.engine.access``):

* cold run — buffer pool, read cache and memos all empty;
* warm run — the same repeated-qualification query again, served from
  the decoded-record / fan-out caches.

Shape claims asserted:
* the warm run is at least 2x faster than the cold run (wall time);
* the warm run reports a non-zero cache hit rate (attributable speedup);
* the warm run does strictly less logical block I/O than the cold run.
"""

import time

import pytest

from repro.workloads import build_university

from _harness import attach

#: repeated-qualification workload: two hot EVA hops shared by many
#: students (few advisors / departments) plus a TYPE 2 existential that
#: re-enumerates the enrollment fan-out per candidate row
REPEATED_QUALIFICATION = (
    "From student Retrieve name, name of advisor, name of major-department"
    " Where credits of courses-enrolled >= 2")


def build(students: int):
    return build_university(departments=4, instructors=12,
                            students=students, courses=24, seed=17)


def measure_read_path(students: int = 200, repeats: int = 3) -> dict:
    """Cold-vs-warm measurement of the repeated-qualification query.

    Returns wall times (best of ``repeats``), deterministic logical-read
    counts, the warm-run cache hit rate and the raw per-query counters —
    the numbers ``BENCH_read_path.json`` records.
    """
    db = build(students)
    query = REPEATED_QUALIFICATION

    db.cold_cache()
    db.reset_io_stats()
    started = time.perf_counter()
    cold_result = db.query(query)
    cold_wall = time.perf_counter() - started
    cold_logical = db.io_stats.logical_reads

    warm_wall = float("inf")
    warm_result = None
    for _ in range(repeats):
        db.reset_io_stats()
        started = time.perf_counter()
        warm_result = db.query(query)
        warm_wall = min(warm_wall, time.perf_counter() - started)
    warm_logical = db.io_stats.logical_reads

    assert warm_result.rows == cold_result.rows
    warm_perf = warm_result.perf
    return {
        "students": students,
        "rows": len(cold_result.rows),
        "cold_wall_ms": cold_wall * 1000.0,
        "warm_wall_ms": warm_wall * 1000.0,
        "wall_speedup": cold_wall / warm_wall if warm_wall else float("inf"),
        "cold_logical_reads": cold_logical,
        "warm_logical_reads": warm_logical,
        "logical_read_ratio": (cold_logical / warm_logical
                               if warm_logical else float("inf")),
        "warm_hit_rate": warm_perf.overall_hit_rate(),
        "warm_read_hit_rate": warm_perf.read_hit_rate(),
        "cold_counters": cold_result.perf.as_dict(),
        "warm_counters": warm_perf.as_dict(),
    }


@pytest.mark.parametrize("students", [80, 200])
def test_e13_warm_over_cold(benchmark, students):
    measured = measure_read_path(students=students)

    # The acceptance bar: >= 2x warm-over-cold on repeated-qualification
    # queries, with the speedup attributable to a non-zero hit rate.
    assert measured["wall_speedup"] >= 2.0
    assert measured["warm_hit_rate"] > 0.0
    assert measured["warm_logical_reads"] < measured["cold_logical_reads"]

    benchmark(lambda: None)
    attach(benchmark,
           rows=measured["rows"],
           cold_wall_ms=round(measured["cold_wall_ms"], 3),
           warm_wall_ms=round(measured["warm_wall_ms"], 3),
           wall_speedup=round(measured["wall_speedup"], 2),
           cold_logical=measured["cold_logical_reads"],
           warm_logical=measured["warm_logical_reads"],
           warm_hit_rate=round(measured["warm_hit_rate"], 3))


def test_e13_invalidation_costs_only_one_requery(benchmark):
    """After one MODIFY the next query repopulates the caches; the one
    after that is warm again — invalidation is strict but not sticky."""
    db = build(80)
    query = REPEATED_QUALIFICATION
    db.query(query)

    ssn = db.query("From student Retrieve soc-sec-no").rows[0][0]
    db.execute(f'Modify student(name := "Renamed") Where soc-sec-no = {ssn}')
    rewarm = db.query(query)       # repopulates
    warm = db.query(query)         # warm again
    assert warm.rows == rewarm.rows
    assert warm.perf.overall_hit_rate() > rewarm.perf.overall_hit_rate()

    benchmark(lambda: None)
    attach(benchmark,
           rewarm_hit_rate=round(rewarm.perf.overall_hit_rate(), 3),
           warm_hit_rate=round(warm.perf.overall_hit_rate(), 3))
