"""E20 — runtime lockdep instrumentation overhead.

The dynamic lock-order checker (:mod:`repro.engine.lockdep`) is on by
default under pytest and ``REPRO_LOCKDEP=1``; for that to be a
keep-it-on default, its cost on the *worst* cell — E19's contended
writes, where lock traffic is the workload — must stay small.

This experiment re-drives the E19 contended-write cell twice, back to
back, with lockdep forced off and then forced on (the enabled state is
captured at lock construction, so each run builds a fresh database
inside :func:`repro.engine.lockdep.forced`).  Best-of-``repeats``
throughput in each mode gives the overhead ratio.

Shape claims asserted:
* instrumentation overhead on the contended cell is below 10%;
* the instrumented run records **zero** lock-order violations while
  observing a non-trivial acquisition graph;
* the committed-prefix oracle holds in both modes.
"""

import time

from repro.engine import lockdep

from _harness import attach
from bench_concurrency import _measure_contention

#: the E19 contended cell this experiment re-drives
SESSIONS = 8
TRANSACTIONS = 30
REPEATS = 5

#: acceptance bound on (1 - instrumented/baseline)
MAX_OVERHEAD = 0.10


def _contended_cell(sessions: int, transactions: int) -> dict:
    result = _measure_contention((sessions,), transactions)
    cell = dict(result["sessions"][str(sessions)])
    cell["oracle_ok"] = result["oracle_ok"]
    return cell


def measure_lockdep(sessions: int = SESSIONS,
                    transactions: int = TRANSACTIONS,
                    repeats: int = REPEATS) -> dict:
    """The numbers ``BENCH_lockdep.json`` records."""
    baseline_rate = 0.0
    instrumented_rate = 0.0
    oracle_ok = True
    deadlocks = 0
    started = time.perf_counter()
    for _ in range(repeats):
        with lockdep.forced(False):
            cell = _contended_cell(sessions, transactions)
        baseline_rate = max(baseline_rate, cell["txns_per_s"])
        oracle_ok = oracle_ok and cell["oracle_ok"]

        with lockdep.forced(True):
            lockdep.reset()
            cell = _contended_cell(sessions, transactions)
            graph_edges = len(lockdep.edges())
            violation_count = len(lockdep.violations())
        instrumented_rate = max(instrumented_rate, cell["txns_per_s"])
        oracle_ok = oracle_ok and cell["oracle_ok"]
        deadlocks += cell["deadlocks"]
    wall = time.perf_counter() - started

    overhead = (1.0 - instrumented_rate / baseline_rate
                if baseline_rate else 0.0)
    return {
        "sessions": sessions,
        "transactions_per_session": transactions,
        "repeats": repeats,
        "baseline_txns_per_s": baseline_rate,
        "instrumented_txns_per_s": instrumented_rate,
        "overhead_ratio": overhead,
        "max_overhead_ratio": MAX_OVERHEAD,
        "acquisition_edges": graph_edges,
        "violations": violation_count,
        "deadlocks_resolved": deadlocks,
        "oracle_ok": oracle_ok,
        "wall_s": wall,
    }


def test_e20_lockdep_overhead_smoke(benchmark):
    measured = measure_lockdep(sessions=4, transactions=10, repeats=1)

    assert measured["oracle_ok"]
    assert measured["violations"] == 0
    assert measured["acquisition_edges"] > 0
    # The smoke cell is too short for a tight overhead bound; assert it
    # is not catastrophic (the full gate runs via make bench-lockdep).
    assert measured["overhead_ratio"] < 0.5

    benchmark(lambda: None)
    attach(benchmark,
           baseline_txns_per_s=round(measured["baseline_txns_per_s"], 1),
           instrumented_txns_per_s=round(
               measured["instrumented_txns_per_s"], 1),
           overhead_ratio=round(measured["overhead_ratio"], 4),
           acquisition_edges=measured["acquisition_edges"],
           violations=measured["violations"])
