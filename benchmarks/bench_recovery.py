"""Substrate extension benchmark — WAL and crash recovery.

Not a paper experiment (the paper delegates durability to DMSII); this
measures the substrate extension documented in DESIGN.md §4:

* commit-path overhead of write-ahead logging (log forces per commit);
* crash-recovery time as a function of database size and of the amount of
  in-flight (loser) work to undo;
* correctness: recovered state equals the committed state.
"""

import pytest

from repro import Database
from repro.workloads import UNIVERSITY_DDL

from _harness import attach


def loaded(students: int) -> Database:
    db = Database(UNIVERSITY_DDL, constraint_mode="off",
                  use_optimizer=False)
    with db.transaction():
        db.execute('Insert course(course-no := 1, title := "Load",'
                   ' credits := 12)')
        for k in range(students):
            db.execute(f'Insert student(soc-sec-no := {k + 1},'
                       f' courses-enrolled := course with'
                       f' (title = "Load"))')
    return db


@pytest.mark.parametrize("students", [25, 100])
def test_recovery_time_scales_with_database(benchmark, students):
    db = loaded(students)

    def operation():
        return db.simulate_crash()

    stats = benchmark(operation)
    assert stats["undone_slots"] == 0
    assert db.store.class_count("student") == students
    attach(benchmark, students=students)


@pytest.mark.parametrize("inflight", [5, 50])
def test_undo_work_scales_with_losers(benchmark, inflight):
    counter = [0]

    def operation():
        db = loaded(20)
        db.begin()
        base = 1000 * (counter[0] + 1)
        counter[0] += 1
        for k in range(inflight):
            db.execute(f'Insert person(soc-sec-no := {base + k})')
        db.store.pool.flush()
        stats = db.simulate_crash()
        assert db.store.class_count("person") == 20
        return stats

    stats = benchmark(operation)
    assert stats["undone_slots"] >= inflight
    attach(benchmark, inflight=inflight, undone=stats["undone_slots"])


def test_commit_overhead_of_wal(benchmark):
    """Each commit costs one log force (plus the data-page flush)."""
    db = Database(UNIVERSITY_DDL, constraint_mode="off",
                  use_optimizer=False)

    counter = [0]

    def one_transaction():
        counter[0] += 1
        with db.transaction():
            db.execute(f'Insert person(soc-sec-no := {counter[0]})')

    benchmark(one_transaction)
    # one force per commit (plus any eviction-driven forces)
    assert db.store.wal.forces >= db.store.transactions.commits
    attach(benchmark, commits=db.store.transactions.commits,
           forces=db.store.wal.forces)


def test_recovered_database_fully_operational(benchmark):
    db = loaded(30)
    db.simulate_crash()

    def operation():
        return db.query("From student Retrieve count(courses-enrolled)"
                        " of student").rows

    rows = benchmark(operation)
    assert all(count == 1 for (count,) in rows)
    with db.transaction():
        db.execute('Insert person(soc-sec-no := 777777)')
    assert db.store.class_count("person") == 31
