"""Substrate extension benchmark — WAL, crash recovery, fault torture.

Not a paper experiment (the paper delegates durability to DMSII); this
measures the substrate extension documented in DESIGN.md §4:

* commit-path overhead of write-ahead logging (log forces per commit);
* crash-recovery time as a function of database size and of the amount of
  in-flight (loser) work to undo;
* correctness: recovered state equals the committed state;
* E14 — the fault-injection/recovery discipline: crash-torture coverage,
  recovery latency, consistency-check latency and transient-retry cost
  (``python benchmarks/make_report.py --recovery`` regenerates
  ``BENCH_recovery.json`` from :func:`measure_recovery`).
"""

import time

import pytest

from repro import Database
from repro.errors import InjectedCrash
from repro.workloads import UNIVERSITY_DDL
from repro.workloads.university import build_university

from _harness import attach


def loaded(students: int) -> Database:
    db = Database(UNIVERSITY_DDL, constraint_mode="off",
                  use_optimizer=False)
    with db.transaction():
        db.execute('Insert course(course-no := 1, title := "Load",'
                   ' credits := 12)')
        for k in range(students):
            db.execute(f'Insert student(soc-sec-no := {k + 1},'
                       f' courses-enrolled := course with'
                       f' (title = "Load"))')
    return db


@pytest.mark.parametrize("students", [25, 100])
def test_recovery_time_scales_with_database(benchmark, students):
    db = loaded(students)

    def operation():
        return db.simulate_crash()

    stats = benchmark(operation)
    assert stats["undone_slots"] == 0
    assert db.store.class_count("student") == students
    attach(benchmark, students=students)


@pytest.mark.parametrize("inflight", [5, 50])
def test_undo_work_scales_with_losers(benchmark, inflight):
    counter = [0]

    def operation():
        db = loaded(20)
        db.begin()
        base = 1000 * (counter[0] + 1)
        counter[0] += 1
        for k in range(inflight):
            db.execute(f'Insert person(soc-sec-no := {base + k})')
        db.store.pool.flush()
        stats = db.simulate_crash()
        assert db.store.class_count("person") == 20
        return stats

    stats = benchmark(operation)
    assert stats["undone_slots"] >= inflight
    attach(benchmark, inflight=inflight, undone=stats["undone_slots"])


def test_commit_overhead_of_wal(benchmark):
    """Each commit costs one log force (plus the data-page flush)."""
    db = Database(UNIVERSITY_DDL, constraint_mode="off",
                  use_optimizer=False)

    counter = [0]

    def one_transaction():
        counter[0] += 1
        with db.transaction():
            db.execute(f'Insert person(soc-sec-no := {counter[0]})')

    benchmark(one_transaction)
    # one force per commit (plus any eviction-driven forces)
    assert db.store.wal.forces >= db.store.transactions.commits
    attach(benchmark, commits=db.store.transactions.commits,
           forces=db.store.wal.forces)


def test_recovered_database_fully_operational(benchmark):
    db = loaded(30)
    db.simulate_crash()

    def operation():
        return db.query("From student Retrieve count(courses-enrolled)"
                        " of student").rows

    rows = benchmark(operation)
    assert all(count == 1 for (count,) in rows)
    with db.transaction():
        db.execute('Insert person(soc-sec-no := 777777)')
    assert db.store.class_count("person") == 31


# -- E14: fault injection, torture coverage, checker cost -----------------------

TORTURE_STATEMENTS = [
    f'Insert person(name := "T{i}", soc-sec-no := {700000 + i})'
    for i in range(12)
]


def _torture_round(crash_at: int) -> dict:
    """One crash point: run the statement list, crash on the
    ``crash_at``-th physical write, recover, check."""
    db = build_university(departments=2, instructors=3, students=6,
                          courses=5, ta_fraction=0.0, seed=11)
    db.store.pool.flush()
    injector = db.install_faults(seed=crash_at)
    injector.crash_after_writes(crash_at)
    committed = 0
    crashed = False
    try:
        for statement in TORTURE_STATEMENTS:
            db.execute(statement)
            committed += 1
    except InjectedCrash:
        crashed = True
    recovery = db.simulate_crash()
    report = db.check()
    survived = len(db.query(
        "From person Retrieve name"
        " Where soc-sec-no >= 700000 and soc-sec-no < 701000"))
    return {"crashed": crashed, "committed": committed,
            "survived": survived, "consistent": report.ok,
            "undone_slots": recovery["undone_slots"]}


def measure_recovery(max_points: int = 24) -> dict:
    """The E14 measurement behind ``BENCH_recovery.json``.

    Runs a bounded crash-torture matrix (every k-th-write crash point up
    to ``max_points``), timing recovery and the consistency check, and
    verifying zero committed-effect loss at every point.
    """
    # dry run: how many writes does the workload perform fault-free?
    dry = build_university(departments=2, instructors=3, students=6,
                          courses=5, ta_fraction=0.0, seed=11)
    dry.store.pool.flush()
    dry_injector = dry.install_faults(seed=0)
    for statement in TORTURE_STATEMENTS:
        dry.execute(statement)
    total_writes = dry_injector.ops["write"]

    points = min(max_points, total_writes)
    outcomes = []
    recovery_wall = 0.0
    started_all = time.perf_counter()
    for k in range(1, points + 1):
        started = time.perf_counter()
        outcome = _torture_round(k)
        recovery_wall += time.perf_counter() - started
        outcomes.append(outcome)
    torture_wall = time.perf_counter() - started_all

    clean = sum(1 for o in outcomes if o["consistent"])
    exact = sum(1 for o in outcomes if o["survived"] == o["committed"])

    # recovery and checker latency on a recovered instance
    db = build_university(departments=2, instructors=3, students=6,
                          courses=5, ta_fraction=0.0, seed=11)
    db.store.pool.flush()
    started = time.perf_counter()
    db.simulate_crash()
    recover_ms = (time.perf_counter() - started) * 1000.0
    started = time.perf_counter()
    report = db.check()
    check_ms = (time.perf_counter() - started) * 1000.0

    # transient-fault retry cost
    injector = db.install_faults(seed=5)
    db.cold_cache()
    injector.fail_read(1, error="transient")
    db.query("From student Retrieve name")
    retry = db.store.retry.statistics()

    return {
        "workload_statements": len(TORTURE_STATEMENTS),
        "workload_writes": total_writes,
        "crash_points_run": points,
        "consistent_points": clean,
        "exact_prefix_points": exact,
        "torture_wall_ms": torture_wall * 1000.0,
        "mean_point_ms": (recovery_wall / points) * 1000.0 if points else 0.0,
        "recover_ms": recover_ms,
        "check_ms": check_ms,
        "checked": report.checked,
        "retry": retry,
    }


@pytest.mark.parametrize("crash_at", [3, 9, 15])
def test_e14_crash_point_recovers_consistent(benchmark, crash_at):
    outcome = benchmark(_torture_round, crash_at)
    assert outcome["consistent"]
    assert outcome["survived"] == outcome["committed"]
    attach(benchmark, **{k: v for k, v in outcome.items()
                         if isinstance(v, (int, bool))})


def test_e14_consistency_check_cost(benchmark):
    db = build_university()
    report = benchmark(db.check)
    assert report.ok
    attach(benchmark, records=report.checked["records"],
           eva_instances=report.checked["eva_instances"],
           blocks=report.checked["blocks"])


def test_e14_transient_retry_overhead(benchmark):
    db = build_university(departments=2, instructors=3, students=6,
                          courses=5, ta_fraction=0.0, seed=11)
    injector = db.install_faults(seed=5)
    counter = [0]

    def faulted_scan():
        counter[0] += 1
        db.cold_cache()
        injector.fail_read(1, error="transient")
        return db.query("From student Retrieve name")

    rows = benchmark(faulted_scan)
    assert len(rows) == 6
    assert db.perf.transient_retries >= counter[0]
    assert db.perf.transient_giveups == 0
    attach(benchmark, retries=db.store.retry.retries,
           backoff_ticks=db.store.retry.backoff_ticks)
