"""E9 — VERIFY enforcement overhead and trigger detection (paper §3.3).

"Integrity constraints are handled by a trigger detection / query
enhancement mechanism that works efficiently for a subset of constraints."

Workload: an insert/modify stream against the UNIVERSITY schema under
constraint modes OFF / IMMEDIATE / DEFERRED.

Shape claims asserted:
* trigger detection skips constraints whose terms a statement does not
  touch (checks_skipped grows, checks_run does not, on unrelated updates);
* deferred mode runs no more checks than immediate mode for the same
  stream;
* enforcement overhead is bounded (immediate mode under 25x OFF on this
  stream — enforcement re-evaluates aggregates per touched entity).
"""

import time

import pytest

from repro import Database
from repro.workloads import UNIVERSITY_DDL

from _harness import attach

STREAM_SIZE = 30


def fresh(mode: str) -> Database:
    db = Database(UNIVERSITY_DDL, constraint_mode=mode,
                  use_optimizer=False)
    db.execute('Insert department(dept-nbr := 100, name := "D")')
    db.execute('Insert course(course-no := 1, title := "Full Load",'
               ' credits := 12)')
    return db


def insert_stream(db, count=STREAM_SIZE, base=0):
    for k in range(count):
        db.execute(f'Insert student(soc-sec-no := {base + k + 1},'
                   f' courses-enrolled := course with'
                   f' (title = "Full Load"))')


def unrelated_stream(db, count=STREAM_SIZE):
    for k in range(count):
        db.execute(f'Modify person(name := "Name {k}")'
                   f' Where soc-sec-no = 1')


@pytest.mark.parametrize("mode", ["off", "immediate", "deferred"])
def test_e9_insert_stream(benchmark, mode):
    counter = [0]

    def operation():
        db = fresh(mode)
        base = counter[0]
        counter[0] += STREAM_SIZE
        if mode == "deferred":
            with db.transaction():
                insert_stream(db, base=base)
        else:
            insert_stream(db, base=base)
        return db

    db = benchmark(operation)
    attach(benchmark, mode=mode, **db.constraints.statistics())


def test_e9_trigger_detection_skips_unrelated(benchmark):
    db = fresh("immediate")
    insert_stream(db, count=5)
    checks_before = db.constraints.checks_run
    skips_before = db.constraints.checks_skipped
    unrelated_stream(db, count=20)
    assert db.constraints.checks_run == checks_before
    assert db.constraints.checks_skipped > skips_before
    attach(benchmark, checks_run=db.constraints.checks_run,
           checks_skipped=db.constraints.checks_skipped)
    benchmark(lambda: None)


def test_e9_deferred_runs_fewer_or_equal_checks(benchmark):
    immediate = fresh("immediate")
    insert_stream(immediate)
    deferred = fresh("deferred")
    with deferred.transaction():
        insert_stream(deferred)
    assert deferred.constraints.checks_run <= \
        immediate.constraints.checks_run
    attach(benchmark,
           immediate_checks=immediate.constraints.checks_run,
           deferred_checks=deferred.constraints.checks_run)
    benchmark(lambda: None)


def test_e9_overhead_bounded(benchmark):
    def timed(mode):
        started = time.perf_counter()
        db = fresh(mode)
        insert_stream(db)
        return time.perf_counter() - started

    baseline = min(timed("off") for _ in range(3))
    enforced = min(timed("immediate") for _ in range(3))
    assert enforced < 25 * baseline
    attach(benchmark, off_seconds=round(baseline, 4),
           immediate_seconds=round(enforced, 4),
           overhead=round(enforced / baseline, 2))
    benchmark(lambda: None)


def test_e9_violation_rolls_back_cleanly(benchmark):
    from repro import ConstraintViolation
    db = fresh("immediate")
    insert_stream(db, count=5)

    def operation():
        try:
            db.execute('Insert student(soc-sec-no := 999999)')
        except ConstraintViolation:
            return True
        return False

    assert benchmark(operation)
    assert db.store.class_count("student") == 5
