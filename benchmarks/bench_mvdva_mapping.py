"""E12 — MV DVA mapping: arrays vs separate units (paper §5.2).

"LUCs of multi-valued DVAs without the MAX option (unbounded) are mapped
into a separate storage unit.  Those with the MAX option are stored as
arrays in the same physical record with their owner."

Workload: a ``document`` class with an MV DVA ``tags`` (MAX-bounded, so
both mappings are legal), population with a fixed number of tags per
document.

Shape claims asserted:
* reading the owner's scalar fields plus the MV values costs fewer block
  accesses under the array mapping (one record) than under the separate
  unit (owner record + dependent records elsewhere);
* both mappings return identical values in insertion order, and
  INCLUDE/EXCLUDE behave identically.
"""

import pytest

from repro import Database, MvDvaMapping, PhysicalDesign
from repro.schema import (
    AttributeOptions,
    DataValuedAttribute,
    Schema,
    SimClass,
)
from repro.types.domain import IntegerType, StringType

from _harness import attach, cold_io

DOCUMENTS = 50
TAGS = 6


def document_schema() -> Schema:
    schema = Schema("documents")
    doc = SimClass("document")
    doc.add_attribute(DataValuedAttribute(
        "doc-key", IntegerType(), AttributeOptions(unique=True,
                                                   required=True)))
    doc.add_attribute(DataValuedAttribute("body", StringType(60)))
    doc.add_attribute(DataValuedAttribute(
        "tags", StringType(12), AttributeOptions(mv=True,
                                                 max_cardinality=8)))
    schema.add_class(doc)
    return schema.resolve()


def build(mapping: MvDvaMapping):
    schema = document_schema()
    design = PhysicalDesign(schema, pool_capacity=16)
    design.override_mv_dva("document", "tags", mapping)
    db = Database(schema, design=design.finalize(), constraint_mode="off",
                  use_optimizer=False)
    store = db.store
    surrogates = []
    for index in range(DOCUMENTS):
        surrogates.append(store.insert_entity("document", {
            "doc-key": index,
            "body": f"document body {index:04d} " + "x" * 30,
            "tags": [f"tag-{index}-{t}" for t in range(TAGS)],
        }))
    return db, surrogates


def read_documents(db, surrogates):
    store = db.store
    body = db.schema.get_class("document").attribute("body")
    tags = db.schema.get_class("document").attribute("tags")
    total = 0
    for surrogate in surrogates:
        store.read_dva(surrogate, body)
        total += len(store.read_dva(surrogate, tags))
    return total


@pytest.mark.parametrize("mapping", list(MvDvaMapping),
                         ids=lambda m: m.value)
def test_e12_read_owner_plus_values(benchmark, mapping):
    db, surrogates = build(mapping)

    def operation():
        db.cold_cache()
        return read_documents(db, surrogates)

    count = benchmark(operation)
    assert count == DOCUMENTS * TAGS
    io = cold_io(db, lambda: read_documents(db, surrogates))
    attach(benchmark, mapping=mapping.value, **io)


def test_e12_array_reads_fewer_blocks(benchmark):
    numbers = {}
    for mapping in MvDvaMapping:
        db, surrogates = build(mapping)
        numbers[mapping.value] = cold_io(
            db, lambda: read_documents(db, surrogates))["physical"]
    assert numbers["array"] <= numbers["separate-unit"]
    attach(benchmark, **numbers)
    benchmark(lambda: None)


def test_e12_identical_values_and_order(benchmark):
    reference = None
    for mapping in MvDvaMapping:
        db, surrogates = build(mapping)
        tags = db.schema.get_class("document").attribute("tags")
        values = [db.store.read_dva(s, tags) for s in surrogates]
        if reference is None:
            reference = values
        assert values == reference
    benchmark(lambda: None)


def test_e12_include_exclude_equivalent(benchmark):
    for mapping in MvDvaMapping:
        db, surrogates = build(mapping)
        db.execute('Modify document(tags := include "extra")'
                   ' Where doc-key = 0')
        db.execute('Modify document(tags := exclude "tag-0-0")'
                   ' Where doc-key = 0')
        tags = db.schema.get_class("document").attribute("tags")
        values = db.store.read_dva(surrogates[0], tags)
        assert "extra" in values and "tag-0-0" not in values
        assert len(values) == TAGS
    benchmark(lambda: None)


def test_e12_max_enforced_under_both(benchmark):
    from repro.errors import CardinalityViolation
    for mapping in MvDvaMapping:
        db, _ = build(mapping)
        db.execute('Modify document(tags := include "seven")'
                   ' Where doc-key = 1')
        db.execute('Modify document(tags := include "eight")'
                   ' Where doc-key = 1')
        with pytest.raises(CardinalityViolation):
            db.execute('Modify document(tags := include "nine")'
                       ' Where doc-key = 1')
    benchmark(lambda: None)
