"""Regenerate the EXPERIMENTS.md measurement tables from a benchmark run.

Usage::

    pytest benchmarks/ --benchmark-only --benchmark-json=bench.json
    python benchmarks/make_report.py bench.json > measured.md
    python benchmarks/make_report.py --read-path [out.json]
    python benchmarks/make_report.py --recovery [out.json]

The output groups benchmarks by experiment (the ``test_e<N>_`` prefix) and
prints, per benchmark, the mean wall time and every ``extra_info`` number
(the deterministic block-I/O measurements the experiments assert on).
EXPERIMENTS.md narrates these numbers; this report is the raw regeneration
path.

``--read-path`` runs the E13 cold-vs-warm measurement directly and writes
``BENCH_read_path.json`` (hit rate + speedup), tracking the read-path
perf trajectory from PR to PR.

``--recovery`` runs the E14 crash-torture/recovery measurement and writes
``BENCH_recovery.json`` (crash points recovered consistent, recovery and
checker latency, transient-retry cost).

``--lint`` runs the E15 static-analysis measurement and writes
``BENCH_lint.json`` (lint overhead ratio, workload cleanliness, seeded
defect detection).

``--trace`` runs the E16 tracing-overhead measurement and writes
``BENCH_trace.json`` (disabled/enabled overhead ratios over the 12-query
sweep, spans per statement, layers observed).

``--batch`` runs the E17 batched-execution measurement and writes
``BENCH_batch.json`` (batched-over-tuple-at-a-time speedups per
UNIVERSITY query, with row-identical verification).

``--scale`` runs the E18 morsel-parallelism measurement at 10^5 entities
and writes ``BENCH_scale.json`` (rows/sec and speedup vs serial at
1/2/4/8 workers on the scale workload, populate rate and peak RSS per
entity count, with row-identical verification).  ``--scale-smoke`` runs
the same measurement at 10^4 entities for CI.

``--concurrency`` runs the E19 multi-session measurement and writes
``BENCH_concurrency.json`` (snapshot-read statements/sec and latency
histograms at 1/4/8 sessions with row-identical verification,
contended write throughput with deadlock counts and the
committed-prefix oracle, plus the disjoint-entity write cell: 8
sessions updating disjoint entities of one class must commit at >= 2x
the class-granularity baseline with zero lock conflicts).
``--concurrency-smoke`` is the reduced CI lane (row identity + both
oracles + the disjoint-entity gate; no read-throughput bound).
"""

from __future__ import annotations

import json
import os
import re
import sys
from collections import defaultdict

_EXPERIMENT_TITLES = {
    "e3": "E3 — ADDS scale (§6)",
    "e4": "E4 — EVA mapping options (§5.2)",
    "e5": "E5 — variable-format records vs separate units (§5.2)",
    "e6": "E6 — optimizer (§5.1)",
    "e7": "E7 — semantic DML vs relational formulation (§1, §4.1)",
    "e8": "E8 — transitive closure (§4.7)",
    "e9": "E9 — VERIFY enforcement (§3.3)",
    "e10": "E10 — DMSII evolution path (§5)",
    "e11": "E11 — output forms (§4.5)",
    "e12": "E12 — MV DVA mapping (§5.2)",
    "e13": "E13 — read-path caches & memoization",
    "e14": "E14 — fault injection, crash torture & consistency checking",
    "e15": "E15 — simcheck static analysis (overhead & coverage)",
    "e16": "E16 — end-to-end tracing overhead (EXPLAIN ANALYZE)",
    "e17": "E17 — batched Volcano execution vs tuple-at-a-time",
    "e18": "E18 — morsel-parallel execution at scale",
    "e19": "E19 — multi-session concurrency (2PL + MVCC + server)",
    "e20": "E20 — runtime lockdep instrumentation overhead",
    "e21": "E21 — semantic rewrite & materialized derived relations",
}


def write_read_path_report(out_path: str) -> int:
    """Run the E13 measurement and emit ``BENCH_read_path.json``."""
    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
    from bench_read_path import measure_read_path
    measured = measure_read_path()
    with open(out_path, "w") as handle:
        json.dump(measured, handle, indent=2)
        handle.write("\n")
    print(f"wrote {out_path}: "
          f"{measured['wall_speedup']:.2f}x warm-over-cold, "
          f"hit rate {measured['warm_hit_rate']:.3f}, "
          f"{measured['cold_logical_reads']} -> "
          f"{measured['warm_logical_reads']} logical reads")
    return 0


def write_recovery_report(out_path: str) -> int:
    """Run the E14 measurement and emit ``BENCH_recovery.json``."""
    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
    from bench_recovery import measure_recovery
    measured = measure_recovery()
    with open(out_path, "w") as handle:
        json.dump(measured, handle, indent=2)
        handle.write("\n")
    print(f"wrote {out_path}: "
          f"{measured['consistent_points']}/{measured['crash_points_run']} "
          f"crash points consistent, "
          f"{measured['exact_prefix_points']}/{measured['crash_points_run']} "
          f"exact committed prefixes, "
          f"recover {measured['recover_ms']:.2f} ms, "
          f"check {measured['check_ms']:.2f} ms")
    return 0


def write_lint_report(out_path: str) -> int:
    """Run the E15 measurement and emit ``BENCH_lint.json``."""
    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
    from bench_lint import measure_lint
    measured = measure_lint()
    with open(out_path, "w") as handle:
        json.dump(measured, handle, indent=2)
        handle.write("\n")
    print(f"wrote {out_path}: "
          f"{measured['queries']} queries compile clean, "
          f"{measured['plans_verified']}/{measured['queries']} plans "
          f"verified, lint overhead "
          f"{measured['lint_overhead_ratio']:.3f}x of execution, "
          f"{measured['defects_detected']}/{measured['defects_seeded']} "
          f"seeded defects detected, "
          f"{measured['concurrency_defects_detected']}/"
          f"{measured['concurrency_defects_seeded']} SIM3xx defects "
          f"detected, sweep findings "
          f"{measured['concurrency_sweep_findings']}")
    if (measured["concurrency_defects_detected"]
            != measured["concurrency_defects_seeded"]):
        print("FAIL: planted SIM3xx defects escaped the concurrency "
              "lint", file=sys.stderr)
        return 1
    if measured["concurrency_sweep_findings"]:
        print("FAIL: the concurrency sweep over src/repro is not clean",
              file=sys.stderr)
        return 1
    return 0


def write_trace_report(out_path: str) -> int:
    """Run the E16 measurement and emit ``BENCH_trace.json``."""
    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
    from bench_trace import measure_trace
    measured = measure_trace()
    with open(out_path, "w") as handle:
        json.dump(measured, handle, indent=2)
        handle.write("\n")
    print(f"wrote {out_path}: "
          f"disabled overhead {measured['disabled_overhead_ratio']:+.4f} "
          f"(bound {measured['disabled_overhead_bound']:.2f}), "
          f"enabled overhead {measured['enabled_overhead_ratio']:+.3f}, "
          f"{measured['spans_per_statement_mean']:.1f} spans/statement "
          f"over {measured['statements_traced']} statements")
    if (measured["disabled_overhead_ratio"]
            > measured["disabled_overhead_bound"]):
        print("FAIL: disabled-tracing overhead exceeds the bound",
              file=sys.stderr)
        return 1
    return 0


def write_batch_report(out_path: str) -> int:
    """Run the E17 measurement and emit ``BENCH_batch.json``."""
    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
    from bench_batch import measure_batch
    measured = measure_batch()
    with open(out_path, "w") as handle:
        json.dump(measured, handle, indent=2)
        handle.write("\n")
    print(f"wrote {out_path}: "
          f"{measured['multi_eva_min_speedup']:.2f}x min / "
          f"{measured['multi_eva_mean_speedup']:.2f}x mean batched-over-"
          f"tuple on {measured['multi_eva_queries']} traversal queries "
          f"(batch size {measured['batch_size']}), "
          f"rows identical: {measured['rows_identical']}")
    if not measured["rows_identical"]:
        print("FAIL: batched execution returned different rows",
              file=sys.stderr)
        return 1
    if measured["multi_eva_min_speedup"] < measured["min_speedup_bound"]:
        print("FAIL: batched speedup on traversal queries below the "
              f"{measured['min_speedup_bound']:.1f}x bound",
              file=sys.stderr)
        return 1
    return 0


def write_scale_report(out_path: str, entities: int = 100_000,
                       enforce_bound: bool = True) -> int:
    """Run the E18 measurement and emit ``BENCH_scale.json``."""
    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
    from bench_scale import measure_scale
    measured = measure_scale(entities=entities)
    with open(out_path, "w") as handle:
        json.dump(measured, handle, indent=2)
        handle.write("\n")
    aggregates = ", ".join(
        f"{workers}w {speedup:.2f}x"
        for workers, speedup in measured["aggregate_speedup"].items())
    print(f"wrote {out_path}: {measured['entities']} entities, "
          f"traversal-query speedup {aggregates} "
          f"(read latency {measured['read_latency_us']:.0f} us), "
          f"rows identical: {measured['rows_identical']}")
    if not measured["rows_identical"]:
        print("FAIL: parallel execution returned different rows",
              file=sys.stderr)
        return 1
    if (enforce_bound and measured["aggregate_speedup_at_4"]
            < measured["min_aggregate_speedup"]):
        print("FAIL: aggregate speedup at 4 workers below the "
              f"{measured['min_aggregate_speedup']:.1f}x bound",
              file=sys.stderr)
        return 1
    return 0


def write_concurrency_report(out_path: str, smoke: bool = False) -> int:
    """Run the E19 measurement and emit ``BENCH_concurrency.json``."""
    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
    from bench_concurrency import measure_concurrency
    if smoke:
        measured = measure_concurrency(entities=2_000,
                                       session_counts=(1, 4),
                                       rounds=1, transactions=10)
    else:
        measured = measure_concurrency()
    with open(out_path, "w") as handle:
        json.dump(measured, handle, indent=2)
        handle.write("\n")
    rates = ", ".join(
        f"{sessions}s {cell['stmts_per_s']:.1f}/s ({cell['speedup']:.2f}x)"
        for sessions, cell in measured["reads"]["sessions"].items())
    contended = measured["contention"]["sessions"]
    deadlocks = sum(cell["deadlocks"] for cell in contended.values())
    disjoint = measured["disjoint"]
    print(f"wrote {out_path}: snapshot reads {rates}; "
          f"contended commits at max sessions "
          f"{list(contended.values())[-1]['txns_per_s']:.1f} txns/s, "
          f"{deadlocks} deadlocks resolved; disjoint-entity writers "
          f"{measured['disjoint_speedup']:.2f}x the class-granularity "
          f"baseline at 8 sessions; "
          f"rows identical: {measured['rows_identical']}, "
          f"oracle ok: {measured['oracle_ok']}")
    if not measured["rows_identical"]:
        print("FAIL: concurrent snapshot reads differ from serial rows",
              file=sys.stderr)
        return 1
    if not measured["oracle_ok"]:
        print("FAIL: committed-prefix oracle violated under contention",
              file=sys.stderr)
        return 1
    disjoint_conflicts = sum(
        cell["deadlocks"] + cell["timeouts"]
        for cell in disjoint["sessions"].values())
    if disjoint_conflicts:
        print("FAIL: disjoint-entity writers hit lock conflicts — "
              "entity granularity is not isolating them", file=sys.stderr)
        return 1
    if measured["disjoint_speedup"] < measured["min_disjoint_speedup_at_8"]:
        print("FAIL: disjoint-entity throughput at 8 sessions below "
              f"{measured['min_disjoint_speedup_at_8']:.1f}x the "
              "class-granularity baseline", file=sys.stderr)
        return 1
    if (not smoke and measured["read_speedup_at_4"] is not None
            and measured["read_speedup_at_4"]
            < measured["min_read_speedup_at_4"]):
        print("FAIL: snapshot-read throughput at 4 sessions below the "
              f"{measured['min_read_speedup_at_4']:.1f}x bound",
              file=sys.stderr)
        return 1
    return 0


def experiment_of(name: str) -> str:
    match = re.match(r"test_(e\d+)_", name)
    if match:
        return match.group(1)
    return "other"


def write_lockdep_report(out_path: str) -> int:
    """Run the E20 measurement and emit ``BENCH_lockdep.json``."""
    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
    from bench_lockdep import measure_lockdep
    measured = measure_lockdep()
    with open(out_path, "w") as handle:
        json.dump(measured, handle, indent=2)
        handle.write("\n")
    print(f"wrote {out_path}: contended cell at "
          f"{measured['sessions']} sessions — baseline "
          f"{measured['baseline_txns_per_s']:.1f} txns/s, instrumented "
          f"{measured['instrumented_txns_per_s']:.1f} txns/s "
          f"({measured['overhead_ratio'] * 100:.1f}% overhead), "
          f"{measured['acquisition_edges']} graph edges, "
          f"{measured['violations']} violations, "
          f"oracle ok: {measured['oracle_ok']}")
    if measured["violations"]:
        print("FAIL: lock-order violations recorded during the "
              "instrumented run", file=sys.stderr)
        return 1
    if not measured["oracle_ok"]:
        print("FAIL: committed-prefix oracle violated", file=sys.stderr)
        return 1
    if measured["overhead_ratio"] >= measured["max_overhead_ratio"]:
        print(f"FAIL: lockdep overhead "
              f"{measured['overhead_ratio'] * 100:.1f}% exceeds the "
              f"{measured['max_overhead_ratio'] * 100:.0f}% bound",
              file=sys.stderr)
        return 1
    return 0


def write_rewrite_report(out_path: str) -> int:
    """Run the E21 measurement and emit ``BENCH_rewrite.json``."""
    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
    from bench_rewrite import measure_rewrite
    measured = measure_rewrite()
    with open(out_path, "w") as handle:
        json.dump(measured, handle, indent=2)
        handle.write("\n")
    sub, mat = measured["subclass"], measured["closure_mat"]
    print(f"wrote {out_path}: subclass-pruned ISA query "
          f"{sub['legacy_ms']:.2f} ms -> {sub['rewritten_ms']:.2f} ms "
          f"({sub['speedup']:.1f}x, {sub['rows']} rows), closure "
          f"materialization {mat['direct_ms']:.2f} ms -> "
          f"{mat['materialized_ms']:.2f} ms ({mat['speedup']:.1f}x, "
          f"{mat['rows']} rows, {mat['materialized_hits']} hits)")
    failed = 0
    for label, cell in (("subclass-pruned", sub),
                        ("materialization-hit", mat)):
        if not cell["rows_identical"]:
            print(f"FAIL: {label} cell rows differ from the rewrite-off "
                  "reference", file=sys.stderr)
            failed = 1
        if cell["speedup"] < measured["min_speedup"]:
            print(f"FAIL: {label} cell speedup {cell['speedup']:.2f}x "
                  f"below the {measured['min_speedup']:.1f}x bound",
                  file=sys.stderr)
            failed = 1
    if sub["rewrite_subclass_prunes"] < 1:
        print("FAIL: subclass cell never exercised the rewrite",
              file=sys.stderr)
        failed = 1
    if mat["materialized_hits"] < 1:
        print("FAIL: materialization cell never hit the materialization",
              file=sys.stderr)
        failed = 1
    return failed


def format_benchmark(entry: dict) -> str:
    name = entry["name"]
    mean_ms = entry["stats"]["mean"] * 1000.0
    extra = entry.get("extra_info", {})
    extras = "  ".join(f"{key}={value}" for key, value in extra.items())
    return f"| `{name}` | {mean_ms:10.3f} | {extras} |"


def main(argv) -> int:
    if len(argv) >= 2 and argv[1] == "--read-path":
        out_path = argv[2] if len(argv) > 2 else "BENCH_read_path.json"
        return write_read_path_report(out_path)
    if len(argv) >= 2 and argv[1] == "--recovery":
        out_path = argv[2] if len(argv) > 2 else "BENCH_recovery.json"
        return write_recovery_report(out_path)
    if len(argv) >= 2 and argv[1] == "--lint":
        out_path = argv[2] if len(argv) > 2 else "BENCH_lint.json"
        return write_lint_report(out_path)
    if len(argv) >= 2 and argv[1] == "--trace":
        out_path = argv[2] if len(argv) > 2 else "BENCH_trace.json"
        return write_trace_report(out_path)
    if len(argv) >= 2 and argv[1] == "--batch":
        out_path = argv[2] if len(argv) > 2 else "BENCH_batch.json"
        return write_batch_report(out_path)
    if len(argv) >= 2 and argv[1] == "--scale":
        out_path = argv[2] if len(argv) > 2 else "BENCH_scale.json"
        return write_scale_report(out_path)
    if len(argv) >= 2 and argv[1] == "--concurrency":
        out_path = argv[2] if len(argv) > 2 else "BENCH_concurrency.json"
        return write_concurrency_report(out_path)
    if len(argv) >= 2 and argv[1] == "--concurrency-smoke":
        out_path = argv[2] if len(argv) > 2 else \
            "BENCH_concurrency_smoke.json"
        return write_concurrency_report(out_path, smoke=True)
    if len(argv) >= 2 and argv[1] == "--lockdep":
        out_path = argv[2] if len(argv) > 2 else "BENCH_lockdep.json"
        return write_lockdep_report(out_path)
    if len(argv) >= 2 and argv[1] == "--rewrite":
        out_path = argv[2] if len(argv) > 2 else "BENCH_rewrite.json"
        return write_rewrite_report(out_path)
    if len(argv) >= 2 and argv[1] == "--scale-smoke":
        out_path = argv[2] if len(argv) > 2 else "BENCH_scale_smoke.json"
        # 10^4-entity CI lane: row identity is enforced, the 2x bound is
        # only asserted at the full 10^5 scale.
        return write_scale_report(out_path, entities=10_000,
                                  enforce_bound=False)
    if len(argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    with open(argv[1]) as handle:
        data = json.load(handle)

    grouped = defaultdict(list)
    for entry in data["benchmarks"]:
        grouped[experiment_of(entry["name"])].append(entry)

    print("# Measured results (regenerated)\n")
    machine = data.get("machine_info", {})
    print(f"Python {machine.get('python_version', '?')} on "
          f"{machine.get('system', '?')}; wall times are indicative, "
          f"block-I/O numbers (extra info) are deterministic.\n")
    for experiment in sorted(grouped,
                             key=lambda e: (e == "other",
                                            int(e[1:]) if e[1:].isdigit()
                                            else 0)):
        title = _EXPERIMENT_TITLES.get(
            experiment, "Substrate extensions (recovery, sessions)")
        print(f"## {title}\n")
        print("| benchmark | mean ms | measurements |")
        print("|---|---:|---|")
        for entry in sorted(grouped[experiment],
                            key=lambda e: e["name"]):
            print(format_benchmark(entry))
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
