"""E15 — simcheck static-analysis overhead and coverage.

Every statement now passes through the static analyzers before it runs
(query lint after qualification, plan verification after optimization,
update lint before the update engine).  This experiment measures what the
always-on pipeline costs and what the batch linter covers:

* compile-vs-execute: the static pipeline's share of end-to-end query
  wall time over the canonical UNIVERSITY workload (it should be a small
  fraction — the analyzers walk ASTs and trees, never data);
* schema lint throughput over the UNIVERSITY DDL;
* detection coverage: every analyzer family (schema, query, update,
  plan) rejects a seeded defect;
* concurrency lint (SIM3xx): every rule fires on a seeded Python
  corpus of planted lock-discipline defects, and the sweep over the
  engine's own source (``src/repro``) is clean.

Shape claims asserted:
* the canonical workload compiles with zero errors and zero warnings;
* lint overhead stays under half of end-to-end execution wall time;
* each seeded defect family is detected with the expected code prefix;
* every planted SIM3xx defect is detected and ``src/repro`` sweeps
  clean.
"""

import os
import time

import pytest

from repro.analysis import (
    lint_concurrency_paths,
    lint_concurrency_source,
    lint_schema,
    verify_plan,
)
from repro.dml.parser import parse_dml
from repro.errors import StaticAnalysisError
from repro.workloads import UNIVERSITY_DDL, build_university
from repro.workloads.university import UNIVERSITY_QUERIES

from _harness import attach

#: seeded defects, one per analyzer family (code prefix -> statement)
SEEDED_DEFECTS = [
    ("SIM11", "From student Retrieve name Where advisor > 3"),
    ("SIM11", "From student Retrieve name Where name > 3"),
    ("SIM12", 'Modify student(advisor := 5) Where name = "x"'),
    ("SIM12", "Insert nosuch(x := 1)"),
]

_REPRO_SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "src", "repro")

#: planted lock-discipline defects, one per SIM3xx rule
#: (code -> filename the snippet pretends to live in -> source)
SEEDED_CONCURRENCY_DEFECTS = [
    ("SIM300", "store.py",
     "def flush(self):\n"
     "    self._lock.acquire()\n"
     "    self.dirty = []\n"),
    ("SIM301", "buffer.py",
     "def pin(self):\n"
     "    with self._lock:\n"          # storage.buffer, rank 10
     "        with store.commit_latch:\n"  # rank 36: inversion
     "            pass\n"),
    ("SIM302", "server.py",
     "def reply(self):\n"
     "    with self._conn_lock:\n"
     "        self.sock.sendall(b'ok')\n"),
    ("SIM303", "buffer.py",
     "class BufferPool:\n"
     "    def grow(self):\n"
     "        self.capacity = 99\n"),
    ("SIM304", "sessions.py",
     "def drain(self):\n"
     "    with self._cond:\n"
     "        self._cond.wait(0.1)\n"),
]


def measure_lint(students: int = 40, repeats: int = 3) -> dict:
    """The numbers ``BENCH_lint.json`` records."""
    db = build_university(departments=4, instructors=10,
                          students=students, courses=20, seed=7)

    # Schema lint throughput.
    started = time.perf_counter()
    schema_diagnostics = lint_schema(UNIVERSITY_DDL)
    schema_lint_ms = (time.perf_counter() - started) * 1000.0

    # Static pipeline vs end-to-end execution over the workload.
    compile_wall = float("inf")
    execute_wall = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        for text in UNIVERSITY_QUERIES:
            db.compile(text)
        compile_wall = min(compile_wall, time.perf_counter() - started)
        started = time.perf_counter()
        for text in UNIVERSITY_QUERIES:
            db.query(text)
        execute_wall = min(execute_wall, time.perf_counter() - started)

    workload_diagnostics = []
    for text in UNIVERSITY_QUERIES:
        workload_diagnostics.extend(db.compile(text).diagnostics)

    # Plan verification across the workload.
    verified = 0
    for text in UNIVERSITY_QUERIES:
        query = parse_dml(text)
        tree = db.qualifier.resolve_retrieve(query)
        plan = db.optimizer.choose_plan(query, tree)
        if verify_plan(db.schema, tree, plan) == []:
            verified += 1

    # Detection coverage of the seeded defects.
    detected = 0
    for prefix, text in SEEDED_DEFECTS:
        try:
            db.compile(text)
        except StaticAnalysisError as exc:
            if (exc.diagnostic_code or "").startswith(prefix):
                detected += 1

    # Concurrency lint: seeded SIM3xx corpus plus the clean sweep over
    # the engine's own source.
    concurrency_detected = 0
    for code, path, source in SEEDED_CONCURRENCY_DEFECTS:
        if code in [d.code for d in lint_concurrency_source(source, path)]:
            concurrency_detected += 1
    started = time.perf_counter()
    sweep_findings = lint_concurrency_paths([_REPRO_SRC])
    concurrency_sweep_ms = (time.perf_counter() - started) * 1000.0

    return {
        "queries": len(UNIVERSITY_QUERIES),
        "schema_lint_ms": schema_lint_ms,
        "schema_errors": sum(1 for d in schema_diagnostics
                             if d.severity == "error"),
        "schema_warnings": sum(1 for d in schema_diagnostics
                               if d.severity == "warning"),
        "schema_notes": sum(1 for d in schema_diagnostics
                            if d.severity == "info"),
        "compile_wall_ms": compile_wall * 1000.0,
        "execute_wall_ms": execute_wall * 1000.0,
        "lint_overhead_ratio": (compile_wall / execute_wall
                                if execute_wall else float("inf")),
        "workload_errors": sum(1 for d in workload_diagnostics
                               if d.severity == "error"),
        "workload_warnings": sum(1 for d in workload_diagnostics
                                 if d.severity == "warning"),
        "plans_verified": verified,
        "defects_seeded": len(SEEDED_DEFECTS),
        "defects_detected": detected,
        "concurrency_defects_seeded": len(SEEDED_CONCURRENCY_DEFECTS),
        "concurrency_defects_detected": concurrency_detected,
        "concurrency_sweep_findings": len(sweep_findings),
        "concurrency_sweep_ms": concurrency_sweep_ms,
    }


def test_e15_lint_overhead_and_coverage(benchmark):
    measured = measure_lint()

    assert measured["schema_errors"] == 0
    assert measured["schema_warnings"] == 0
    assert measured["workload_errors"] == 0
    assert measured["workload_warnings"] == 0
    assert measured["plans_verified"] == measured["queries"]
    assert measured["defects_detected"] == measured["defects_seeded"]
    # The static pipeline must stay cheap relative to execution.
    assert measured["lint_overhead_ratio"] < 0.5
    # Concurrency lint: full seeded detection, clean engine sweep.
    assert (measured["concurrency_defects_detected"]
            == measured["concurrency_defects_seeded"])
    assert measured["concurrency_sweep_findings"] == 0

    benchmark(lambda: None)
    attach(benchmark,
           schema_lint_ms=round(measured["schema_lint_ms"], 3),
           compile_wall_ms=round(measured["compile_wall_ms"], 3),
           execute_wall_ms=round(measured["execute_wall_ms"], 3),
           lint_overhead_ratio=round(measured["lint_overhead_ratio"], 3),
           plans_verified=measured["plans_verified"],
           defects_detected=measured["defects_detected"],
           concurrency_defects_detected=measured[
               "concurrency_defects_detected"],
           concurrency_sweep_ms=round(
               measured["concurrency_sweep_ms"], 3))


@pytest.mark.parametrize("prefix,text", SEEDED_DEFECTS)
def test_e15_seeded_defects_are_rejected(benchmark, prefix, text):
    db = build_university(departments=2, instructors=4, students=8,
                          courses=6, seed=7)
    with pytest.raises(StaticAnalysisError) as exc:
        db.compile(text)
    assert (exc.value.diagnostic_code or "").startswith(prefix)
    benchmark(lambda: None)
    attach(benchmark, code=exc.value.diagnostic_code)


@pytest.mark.parametrize(
    "code,path,source", SEEDED_CONCURRENCY_DEFECTS,
    ids=[c for c, _, _ in SEEDED_CONCURRENCY_DEFECTS])
def test_e15_seeded_concurrency_defects_are_detected(
        benchmark, code, path, source):
    found = [d.code for d in lint_concurrency_source(source, path)]
    assert code in found, f"{code} not raised; got {found}"
    benchmark(lambda: None)
    attach(benchmark, code=code)
