"""Shared measurement helpers for the benchmark suite.

Every experiment reports two kinds of numbers:

* wall time, measured by pytest-benchmark (treat relative values only);
* block I/O from the buffer pool, which is deterministic and is the unit
  the paper's §5.1/§5.2 performance discussion uses.  Deterministic I/O
  lets the benchmarks *assert* the paper's qualitative claims (who wins,
  in which direction) rather than just print numbers.
"""

from __future__ import annotations

from typing import Callable, Dict


def cold_io(db, operation: Callable[[], object]) -> Dict[str, int]:
    """Run ``operation`` against a cold cache and return its I/O counts."""
    db.cold_cache()
    db.reset_io_stats()
    operation()
    stats = db.io_stats
    return {"logical": stats.logical_reads,
            "physical": stats.physical_reads,
            "writes": stats.physical_writes}


def warm_io(db, operation: Callable[[], object]) -> Dict[str, int]:
    """Run ``operation`` twice (warm the cache) and report the second run."""
    operation()
    db.reset_io_stats()
    operation()
    stats = db.io_stats
    return {"logical": stats.logical_reads,
            "physical": stats.physical_reads,
            "writes": stats.physical_writes}


def perf_delta(db, operation: Callable[[], object]) -> Dict[str, int]:
    """Run ``operation`` and return the read-path counter delta (cache
    hits/misses, records decoded...) — the attribution numbers behind a
    claimed cache speedup."""
    before = db.perf.snapshot()
    operation()
    return db.perf.delta(before).as_dict()


def attach(benchmark, **info) -> None:
    """Record experiment numbers on the benchmark's extra_info."""
    for key, value in info.items():
        benchmark.extra_info[key] = value
