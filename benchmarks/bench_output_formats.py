"""E11 — output forms: fully tabular vs fully structured (paper §4.5).

"The output of the program above is termed 'fully tabular', in which one
format describes every output record...  In the 'fully structured' case,
the number of different output formats is equal to the count of TYPE 1
and TYPE 3 variables in the query."

Workload: the nested §4.4 query (students, their courses, the teachers)
over the populated UNIVERSITY database.

Shape claims asserted:
* the tabular result repeats parent values once per child row; the
  structured result emits each parent record once (record count strictly
  smaller whenever fan-out > 1);
* the structured format count equals the TYPE 1 + TYPE 3 variable count.
"""

import pytest

from repro import parse_dml
from repro.dml.query_tree import TYPE1, TYPE3
from repro.workloads import build_university

from _harness import attach

NESTED = ("Retrieve Name of Student,"
          " Title of Courses-Enrolled of Student,"
          " Name of Teachers of Courses-Enrolled of Student")


@pytest.fixture(scope="module")
def db():
    return build_university(departments=4, instructors=10, students=30,
                            courses=16, seed=31)


def test_e11_tabular(benchmark, db):
    result = benchmark(lambda: db.query(NESTED))
    assert len(result.columns) == 3
    attach(benchmark, rows=len(result))


def test_e11_structured(benchmark, db):
    result = benchmark(lambda: db.query("Retrieve Structure "
                                        + NESTED[len("Retrieve "):]))
    assert result.structured
    attach(benchmark, records=len(result.structured))


def test_e11_format_count_is_type13_count(benchmark, db):
    query = parse_dml("Retrieve Structure " + NESTED[len("Retrieve "):])
    tree = db.qualifier.resolve_retrieve(query)
    loop_nodes = [n for n in tree.all_nodes() if n.label in (TYPE1, TYPE3)]
    result = db.executor.run(query, tree)
    format_names = {record.format_name for record in result.structured}
    assert len(format_names) == len(loop_nodes) == 3
    attach(benchmark, formats=len(format_names))
    benchmark(lambda: None)


def test_e11_structured_removes_parent_repetition(benchmark, db):
    tabular = db.query(NESTED)
    structured = db.query("Retrieve Structure "
                          + NESTED[len("Retrieve "):]).structured
    student_records = sum(1 for r in structured
                          if r.format_name == "student")
    assert student_records == db.store.class_count("student")
    # Tabular rows >= structured records whenever fan-out exists.
    assert len(tabular) >= student_records
    assert len(structured) <= 3 * len(tabular)
    attach(benchmark, tabular_rows=len(tabular),
           structured_records=len(structured))
    benchmark(lambda: None)


def test_e11_host_cursor_consumption(benchmark, db):
    from repro.interfaces import HostSession
    session = HostSession(db)

    def operation():
        cursor = session.open_cursor(NESTED)
        return sum(1 for _ in cursor)

    count = benchmark(operation)
    assert count > 0
    attach(benchmark, records=count)
