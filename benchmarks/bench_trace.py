"""E16 — end-to-end tracing overhead (EXPLAIN ANALYZE).

Tracing threads span/count hooks through every Figure-1 layer; the deal
that makes it acceptable as an always-available facility is that the
*disabled* cost is one identity test per hook site.  This experiment
pins that deal with numbers over the canonical 12-query UNIVERSITY
sweep:

* baseline: no recorder attached (``store.trace is None`` — the shipped
  default);
* disabled: recorder attached but ``enabled=False`` (the dormant state
  ``Database.disable_tracing()`` leaves behind);
* enabled: full span trees, per-node actuals, layer histograms.

Shape claims asserted:
* disabled-tracing overhead stays within the 5% bound (the CI gate);
* every statement of the enabled sweep leaves zero open spans and a
  complete span tree (parse/qualify/optimize/verify/execute all present);
* enabled tracing is not catastrophic (bounded at 3x baseline).
"""

import time

from repro.trace import attach_tracing, detach_tracing
from repro.workloads import build_university
from repro.workloads.university import UNIVERSITY_QUERIES

from _harness import attach

#: the CI gate: disabled tracing may cost at most this fraction extra
DISABLED_OVERHEAD_BOUND = 0.05


def _sweep(db) -> None:
    for text in UNIVERSITY_QUERIES:
        db.query(text)


def measure_trace(students: int = 40, repeats: int = 7) -> dict:
    """The numbers ``BENCH_trace.json`` records."""
    db = build_university(departments=4, instructors=10, students=students,
                          courses=20, seed=7)
    _sweep(db)   # warm every cache once so all three modes measure warm

    baseline_wall = disabled_wall = enabled_wall = float("inf")
    # Interleave the three modes inside each repeat so clock drift hits
    # them equally; keep the minimum (least-disturbed) pass of each.
    for _ in range(repeats):
        assert db.store.trace is None
        started = time.perf_counter()
        _sweep(db)
        baseline_wall = min(baseline_wall, time.perf_counter() - started)

        recorder = attach_tracing(db.store)
        recorder.enabled = False
        started = time.perf_counter()
        _sweep(db)
        disabled_wall = min(disabled_wall, time.perf_counter() - started)

        recorder.enabled = True
        started = time.perf_counter()
        _sweep(db)
        enabled_wall = min(enabled_wall, time.perf_counter() - started)
        detach_tracing(db.store)

    # One final enabled sweep to characterize what tracing captures.
    recorder = attach_tracing(db.store)
    recorder.clear()
    _sweep(db)
    span_counts = [sum(1 for _ in root.walk())
                   for root in recorder.statements]
    layer_names = set()
    for root in recorder.statements:
        for span in root.walk():
            layer_names.add(span.layer)
    open_after = recorder.open_spans()
    detach_tracing(db.store)

    return {
        "queries": len(UNIVERSITY_QUERIES),
        "repeats": repeats,
        "baseline_wall_ms": baseline_wall * 1000.0,
        "disabled_wall_ms": disabled_wall * 1000.0,
        "enabled_wall_ms": enabled_wall * 1000.0,
        "disabled_overhead_ratio": disabled_wall / baseline_wall - 1.0,
        "enabled_overhead_ratio": enabled_wall / baseline_wall - 1.0,
        "disabled_overhead_bound": DISABLED_OVERHEAD_BOUND,
        "statements_traced": len(recorder.statements),
        "spans_per_statement_mean": (sum(span_counts) / len(span_counts)
                                     if span_counts else 0.0),
        "layers_observed": sorted(layer_names),
        "open_spans_after": open_after,
    }


def test_e16_trace_overhead(benchmark):
    measured = measure_trace()

    assert measured["statements_traced"] == measured["queries"]
    assert measured["open_spans_after"] == 0
    for layer in ("driver", "qualifier", "optimizer", "executor"):
        assert layer in measured["layers_observed"]
    # The CI gate: dormant tracing must be within the 5% bound.
    assert (measured["disabled_overhead_ratio"]
            <= measured["disabled_overhead_bound"])
    # Enabled tracing records everything yet stays in the same ballpark.
    assert measured["enabled_overhead_ratio"] < 2.0

    benchmark(lambda: None)
    attach(benchmark,
           baseline_wall_ms=round(measured["baseline_wall_ms"], 3),
           disabled_wall_ms=round(measured["disabled_wall_ms"], 3),
           enabled_wall_ms=round(measured["enabled_wall_ms"], 3),
           disabled_overhead_ratio=round(
               measured["disabled_overhead_ratio"], 4),
           enabled_overhead_ratio=round(
               measured["enabled_overhead_ratio"], 4),
           spans_per_statement_mean=round(
               measured["spans_per_statement_mean"], 2))
