"""E19 — multi-session concurrency: snapshot-read scaling and write
throughput under contention.

Two cells, both driven through :class:`~repro.engine.sessions.Session`
(the same substrate the socket server wraps):

**Read scaling.**  N sessions concurrently run the E18 scale workload's
query sweep as MVCC snapshot Retrieves.  As in ``bench_scale``, a
modeled per-read device latency is self-calibrated so the serial mix is
disk-bound (``TARGET_IO_RATIO``), and the buffer pool is sized below
the working set; what scales across sessions is overlapped I/O wait,
since snapshot readers take no locks.  Reported per session count:
statements/sec, speedup over one session, and a power-of-two statement
latency histogram.  Every result must be row-identical to a serial
``Database.execute`` baseline.

**Contended writes.**  N sessions run the chaos mix — two-statement
transactions over two classes in seeded random lock order, a
deadlock-prone shape — and the cell reports committed transactions/sec,
deadlock victims, aborts, and the committed-prefix oracle verdict (the
final state must equal the replay of exactly the committed ledgers).

The CI gate (``--concurrency-smoke``) asserts row identity and the
oracle; the full ``make bench-concurrency`` run also gates on read
throughput at 4 sessions >= ``MIN_READ_SPEEDUP_AT_4`` x serial.
"""

import random
import threading
import time

from repro.database import Database
from repro.engine.sessions import LockConflict, Session
from repro.perf import PowerOfTwoHistogram
from repro.workloads.generators import (
    populate_scale,
    scale_queries,
    scale_schema,
)

from _harness import attach

#: modeled I/O wait as a multiple of pure-CPU time (the calibration)
TARGET_IO_RATIO = 3.0

#: session counts swept (1 = the serial baseline)
SESSION_COUNTS = (1, 4, 8)

#: buffer-pool frames during the read cell — below the working set
POOL_FRAMES = 256

#: the full-scale acceptance bound on read scaling at 4 sessions
MIN_READ_SPEEDUP_AT_4 = 1.3

CONTENTION_DDL = """
Class Account (
  nbr: integer (1..99) unique required;
  balance: integer );

Class Audit (
  nbr: integer (1..99) unique required;
  total: integer );
"""

CONTENTION_ACCOUNTS = 4


# ------------------------------------------------------------------ read cell

def _measure_reads(entities: int, chain_depth: int, session_counts,
                   rounds: int) -> dict:
    database = Database(scale_schema(chain_depth), constraint_mode="off")
    populate_scale(database, entities, chain_depth=chain_depth)
    database.executor.parallelism = 1  # scale across sessions, not within
    queries = scale_queries(chain_depth)
    database.store.pool.resize(POOL_FRAMES)

    # Calibrate the modeled device exactly as bench_scale does: pure-CPU
    # cold wall time vs physical reads pins the serial CPU:I/O mix.
    cpu_wall = 0.0
    physical_reads = 0
    baseline_rows = []
    for text in queries:
        database.cold_cache()
        database.reset_io_stats()
        started = time.perf_counter()
        baseline_rows.append(database.execute(text).rows)
        cpu_wall += time.perf_counter() - started
        physical_reads += database.io_stats.physical_reads
    read_latency = (TARGET_IO_RATIO * cpu_wall / physical_reads
                    if physical_reads else 0.0)
    database.store.disk.read_latency = read_latency

    cells = {}
    rows_identical = True
    serial_rate = None
    for sessions in session_counts:
        histogram = PowerOfTwoHistogram()
        hist_lock = threading.Lock()
        errors = []
        mismatches = []
        database.cold_cache()

        def client(_i):
            session = Session(database)
            try:
                for _ in range(rounds):
                    for index, text in enumerate(queries):
                        started = time.perf_counter()
                        rows = session.query(text).rows
                        micros = (time.perf_counter() - started) * 1e6
                        with hist_lock:
                            histogram.observe(micros)
                        if rows != baseline_rows[index]:
                            mismatches.append(index)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=client, args=(i,))
                   for i in range(sessions)]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall = time.perf_counter() - started
        if errors:
            raise errors[0]
        if mismatches:
            rows_identical = False
        statements = sessions * rounds * len(queries)
        rate = statements / wall if wall else 0.0
        if sessions == 1:
            serial_rate = rate
        cells[str(sessions)] = {
            "statements": statements,
            "wall_s": wall,
            "stmts_per_s": rate,
            "speedup": rate / serial_rate if serial_rate else 1.0,
            "latency_us": histogram.as_dict(),
        }
    return {
        "entities": entities,
        "queries": len(queries),
        "rounds": rounds,
        "read_latency_us": read_latency * 1e6,
        "rows_identical": rows_identical,
        "sessions": cells,
    }


# ------------------------------------------------------------ contention cell

def _contention_client(database, seed, transactions, ledger, aborted):
    session = Session(database, lock_timeout=10.0)
    rng = random.Random(seed)
    for _ in range(transactions):
        steps = [("account", "balance",
                  rng.randint(1, CONTENTION_ACCOUNTS), rng.randint(1, 5)),
                 ("audit", "total",
                  rng.randint(1, CONTENTION_ACCOUNTS), rng.randint(1, 5))]
        if rng.random() < 0.5:
            steps.reverse()
        try:
            for class_name, attr, nbr, delta in steps:
                session.execute(f"Modify {class_name}({attr} := {attr} + "
                                f"{delta}) Where nbr = {nbr}")
            session.commit()
        except LockConflict:
            session.abort()
            aborted.append(1)
        else:
            ledger.extend(steps)


def _measure_contention(session_counts, transactions: int) -> dict:
    cells = {}
    oracle_ok = True
    for sessions in session_counts:
        database = Database(CONTENTION_DDL, constraint_mode="off")
        for nbr in range(1, CONTENTION_ACCOUNTS + 1):
            database.execute(f"Insert account(nbr := {nbr}, balance := 0)")
            database.execute(f"Insert audit(nbr := {nbr}, total := 0)")
        ledgers = [[] for _ in range(sessions)]
        aborted = []
        threads = [threading.Thread(
            target=_contention_client,
            args=(database, 7000 + i, transactions, ledgers[i], aborted))
            for i in range(sessions)]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall = time.perf_counter() - started

        expected = {}
        for ledger in ledgers:
            for class_name, _attr, nbr, delta in ledger:
                key = (class_name, nbr)
                expected[key] = expected.get(key, 0) + delta
        for class_name, attr in (("account", "balance"), ("audit", "total")):
            for nbr in range(1, CONTENTION_ACCOUNTS + 1):
                stored = database.query(
                    f"From {class_name} Retrieve {attr}"
                    f" Where nbr = {nbr}").scalar()
                if stored != expected.get((class_name, nbr), 0):
                    oracle_ok = False
        committed = sum(len(ledger) // 2 for ledger in ledgers)
        stats = database._lock_manager.statistics()
        cells[str(sessions)] = {
            "transactions_offered": sessions * transactions,
            "committed": committed,
            "aborted": len(aborted),
            "txns_per_s": committed / wall if wall else 0.0,
            "deadlocks": stats["deadlocks"],
            "lock_waits": stats["waits"],
            "check_ok": bool(database.check().ok),
        }
    return {"oracle_ok": oracle_ok, "sessions": cells}


# ----------------------------------------------------------------- entry point

def measure_concurrency(entities: int = 10_000, chain_depth: int = 3,
                        session_counts=SESSION_COUNTS, rounds: int = 2,
                        transactions: int = 25) -> dict:
    """The numbers ``BENCH_concurrency.json`` records."""
    reads = _measure_reads(entities, chain_depth, session_counts, rounds)
    contention = _measure_contention(session_counts, transactions)
    speedup_at_4 = (reads["sessions"]["4"]["speedup"]
                    if "4" in reads["sessions"] else None)
    return {
        "session_counts": list(session_counts),
        "reads": reads,
        "contention": contention,
        "rows_identical": reads["rows_identical"],
        "oracle_ok": contention["oracle_ok"],
        "read_speedup_at_4": speedup_at_4,
        "min_read_speedup_at_4": MIN_READ_SPEEDUP_AT_4,
    }


def test_e19_concurrency_smoke(benchmark):
    """The CI lane: small scale, sessions {1, 4} — row identity across
    sessions plus the committed-prefix oracle.  The throughput bound is
    ``make bench-concurrency``'s gate, not CI's."""
    measured = measure_concurrency(entities=2_000, session_counts=(1, 4),
                                   rounds=1, transactions=10)

    assert measured["rows_identical"]
    assert measured["oracle_ok"]
    for cell in measured["contention"]["sessions"].values():
        assert cell["check_ok"]
        assert cell["committed"] + cell["aborted"] == \
            cell["transactions_offered"]

    benchmark(lambda: None)
    attach(benchmark,
           rows_identical=measured["rows_identical"],
           oracle_ok=measured["oracle_ok"],
           read_speedup_at_4=round(measured["read_speedup_at_4"], 2),
           contended_txns_per_s_at_4=round(
               measured["contention"]["sessions"]["4"]["txns_per_s"], 1))
