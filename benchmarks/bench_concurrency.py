"""E19 — multi-session concurrency: snapshot-read scaling and write
throughput under contention.

Two cells, both driven through :class:`~repro.engine.sessions.Session`
(the same substrate the socket server wraps):

**Read scaling.**  N sessions concurrently run the E18 scale workload's
query sweep as MVCC snapshot Retrieves.  As in ``bench_scale``, a
modeled per-read device latency is self-calibrated so the serial mix is
disk-bound (``TARGET_IO_RATIO``), and the buffer pool is sized below
the working set; what scales across sessions is overlapped I/O wait,
since snapshot readers take no locks.  Reported per session count:
statements/sec, speedup over one session, and a power-of-two statement
latency histogram.  Every result must be row-identical to a serial
``Database.execute`` baseline.

**Contended writes.**  N sessions run the chaos mix — two-statement
transactions over two classes in seeded random lock order, a
deadlock-prone shape — and the cell reports committed transactions/sec,
deadlock victims, aborts, and the committed-prefix oracle verdict (the
final state must equal the replay of exactly the committed ledgers).

**Disjoint-entity writes.**  N sessions update *disjoint entities of
ONE class* under entity-granularity locking (IX on the class, X on the
one target entity).  The buffer pool is sized far below the working set
and the modeled device latency is on, so every statement pays real
(overlappable) I/O wait: entity-granular sessions overlap it, while the
``entity_locks=False`` baseline — the pre-entity-lock contention shape,
one class-level X per update — serializes it.  The cell reports
committed transactions/sec per session count plus the speedup of the
max-session entity-granular run over the class-granularity baseline.

The CI gate (``--concurrency-smoke``) asserts row identity, both
committed-prefix oracles, zero conflicts in the disjoint cell, and
disjoint-entity throughput at 8 sessions >=
``MIN_DISJOINT_SPEEDUP_AT_8`` x the class-granularity baseline; the
full ``make bench-concurrency`` run also gates on read throughput at 4
sessions >= ``MIN_READ_SPEEDUP_AT_4`` x serial.
"""

import random
import threading
import time

from repro.database import Database
from repro.engine.sessions import LockConflict, Session
from repro.perf import PowerOfTwoHistogram
from repro.workloads.generators import (
    populate_scale,
    scale_queries,
    scale_schema,
)

from _harness import attach

#: modeled I/O wait as a multiple of pure-CPU time (the calibration)
TARGET_IO_RATIO = 3.0

#: session counts swept (1 = the serial baseline)
SESSION_COUNTS = (1, 4, 8)

#: buffer-pool frames during the read cell — below the working set
POOL_FRAMES = 256

#: the full-scale acceptance bound on read scaling at 4 sessions
MIN_READ_SPEEDUP_AT_4 = 1.3

CONTENTION_DDL = """
Class Account (
  nbr: integer (1..99) unique required;
  balance: integer );

Class Audit (
  nbr: integer (1..99) unique required;
  total: integer );
"""

CONTENTION_ACCOUNTS = 4

#: entities in the disjoint-write class, partitioned among the sessions
DISJOINT_ENTITIES = 64

#: the disjoint-write class: the string filler fattens each record past
#: half a block, so every entity lives in its own block and a random
#: entity access is a genuine (modeled-latency) device read
DISJOINT_DDL = """
Class Account (
  nbr: integer (1..99) unique required;
  balance: integer;
  pad0: string;  pad1: string;  pad2: string;
  pad3: string;  pad4: string;  pad5: string;
  pad6: string;  pad7: string;  pad8: string );
"""

#: buffer frames during the disjoint cell — far below the working set,
#: so every statement keeps paying (overlappable) modeled read latency
DISJOINT_POOL_FRAMES = 1

#: modeled per-read device service time during the disjoint cell
DISJOINT_READ_LATENCY = 0.002

#: acceptance bound: entity-granular disjoint writers at 8 sessions vs
#: the class-granularity (entity_locks=False) baseline at 8 sessions
MIN_DISJOINT_SPEEDUP_AT_8 = 2.0


# ------------------------------------------------------------------ read cell

def _measure_reads(entities: int, chain_depth: int, session_counts,
                   rounds: int) -> dict:
    database = Database(scale_schema(chain_depth), constraint_mode="off")
    populate_scale(database, entities, chain_depth=chain_depth)
    database.executor.parallelism = 1  # scale across sessions, not within
    queries = scale_queries(chain_depth)
    database.store.pool.resize(POOL_FRAMES)

    # Calibrate the modeled device exactly as bench_scale does: pure-CPU
    # cold wall time vs physical reads pins the serial CPU:I/O mix.
    cpu_wall = 0.0
    physical_reads = 0
    baseline_rows = []
    for text in queries:
        database.cold_cache()
        database.reset_io_stats()
        started = time.perf_counter()
        baseline_rows.append(database.execute(text).rows)
        cpu_wall += time.perf_counter() - started
        physical_reads += database.io_stats.physical_reads
    read_latency = (TARGET_IO_RATIO * cpu_wall / physical_reads
                    if physical_reads else 0.0)
    database.store.disk.read_latency = read_latency

    cells = {}
    rows_identical = True
    serial_rate = None
    for sessions in session_counts:
        histogram = PowerOfTwoHistogram()
        hist_lock = threading.Lock()
        errors = []
        mismatches = []
        database.cold_cache()

        def client(_i):
            session = Session(database)
            try:
                for _ in range(rounds):
                    for index, text in enumerate(queries):
                        started = time.perf_counter()
                        rows = session.query(text).rows
                        micros = (time.perf_counter() - started) * 1e6
                        with hist_lock:
                            histogram.observe(micros)
                        if rows != baseline_rows[index]:
                            mismatches.append(index)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=client, args=(i,))
                   for i in range(sessions)]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall = time.perf_counter() - started
        if errors:
            raise errors[0]
        if mismatches:
            rows_identical = False
        statements = sessions * rounds * len(queries)
        rate = statements / wall if wall else 0.0
        if sessions == 1:
            serial_rate = rate
        cells[str(sessions)] = {
            "statements": statements,
            "wall_s": wall,
            "stmts_per_s": rate,
            "speedup": rate / serial_rate if serial_rate else 1.0,
            "latency_us": histogram.as_dict(),
        }
    return {
        "entities": entities,
        "queries": len(queries),
        "rounds": rounds,
        "read_latency_us": read_latency * 1e6,
        "rows_identical": rows_identical,
        "sessions": cells,
    }


# ------------------------------------------------------------ contention cell

def _contention_client(database, seed, transactions, ledger, aborted):
    session = Session(database, lock_timeout=10.0)
    rng = random.Random(seed)
    for _ in range(transactions):
        steps = [("account", "balance",
                  rng.randint(1, CONTENTION_ACCOUNTS), rng.randint(1, 5)),
                 ("audit", "total",
                  rng.randint(1, CONTENTION_ACCOUNTS), rng.randint(1, 5))]
        if rng.random() < 0.5:
            steps.reverse()
        try:
            for class_name, attr, nbr, delta in steps:
                session.execute(f"Modify {class_name}({attr} := {attr} + "
                                f"{delta}) Where nbr = {nbr}")
            session.commit()
        except LockConflict:
            session.abort()
            aborted.append(1)
        else:
            ledger.extend(steps)


def _measure_contention(session_counts, transactions: int) -> dict:
    cells = {}
    oracle_ok = True
    for sessions in session_counts:
        database = Database(CONTENTION_DDL, constraint_mode="off")
        for nbr in range(1, CONTENTION_ACCOUNTS + 1):
            database.execute(f"Insert account(nbr := {nbr}, balance := 0)")
            database.execute(f"Insert audit(nbr := {nbr}, total := 0)")
        ledgers = [[] for _ in range(sessions)]
        aborted = []
        threads = [threading.Thread(
            target=_contention_client,
            args=(database, 7000 + i, transactions, ledgers[i], aborted))
            for i in range(sessions)]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall = time.perf_counter() - started

        expected = {}
        for ledger in ledgers:
            for class_name, _attr, nbr, delta in ledger:
                key = (class_name, nbr)
                expected[key] = expected.get(key, 0) + delta
        for class_name, attr in (("account", "balance"), ("audit", "total")):
            for nbr in range(1, CONTENTION_ACCOUNTS + 1):
                stored = database.query(
                    f"From {class_name} Retrieve {attr}"
                    f" Where nbr = {nbr}").scalar()
                if stored != expected.get((class_name, nbr), 0):
                    oracle_ok = False
        committed = sum(len(ledger) // 2 for ledger in ledgers)
        stats = database._lock_manager.statistics()
        cells[str(sessions)] = {
            "transactions_offered": sessions * transactions,
            "committed": committed,
            "aborted": len(aborted),
            "txns_per_s": committed / wall if wall else 0.0,
            "deadlocks": stats["deadlocks"],
            "lock_waits": stats["waits"],
            "check_ok": bool(database.check().ok),
        }
    return {"oracle_ok": oracle_ok, "sessions": cells}


# -------------------------------------------------------- disjoint-entity cell

def _disjoint_run(sessions: int, transactions: int,
                  entity_locks: bool) -> dict:
    """One disjoint-entity run: ``sessions`` writers over disjoint
    slices of one ``DISJOINT_ENTITIES``-entity class."""
    database = Database(DISJOINT_DDL, constraint_mode="off")
    pads = ", ".join(f'pad{i} := "x"' for i in range(9))
    for nbr in range(1, DISJOINT_ENTITIES + 1):
        database.execute(f"Insert account(nbr := {nbr}, balance := 0,"
                         f" {pads})")
    database.store.pool.resize(DISJOINT_POOL_FRAMES)
    database.store.disk.read_latency = DISJOINT_READ_LATENCY
    database.cold_cache()

    slices = [list(range(i + 1, DISJOINT_ENTITIES + 1, sessions))
              for i in range(sessions)]
    ledgers = [[] for _ in range(sessions)]
    errors = []

    def client(index):
        session = Session(database, entity_locks=entity_locks,
                          lock_timeout=60.0)
        rng = random.Random(9000 + index)
        try:
            for _ in range(transactions):
                nbr = rng.choice(slices[index])
                delta = rng.randint(1, 5)
                session.execute(f"Modify account(balance := balance +"
                                f" {delta}) Where nbr = {nbr}")
                session.commit()
                ledgers[index].append((nbr, delta))
        except Exception as exc:  # pragma: no cover
            errors.append(exc)

    threads = [threading.Thread(target=client, args=(i,))
               for i in range(sessions)]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - started
    if errors:
        raise errors[0]

    expected = {}
    for ledger in ledgers:
        for nbr, delta in ledger:
            expected[nbr] = expected.get(nbr, 0) + delta
    oracle_ok = True
    for nbr in range(1, DISJOINT_ENTITIES + 1):
        stored = database.query(f"From account Retrieve balance"
                                f" Where nbr = {nbr}").scalar()
        if stored != expected.get(nbr, 0):
            oracle_ok = False
    committed = sum(len(ledger) for ledger in ledgers)
    stats = database._lock_manager.statistics()
    return {
        "entity_locks": entity_locks,
        "transactions_offered": sessions * transactions,
        "committed": committed,
        "wall_s": wall,
        "txns_per_s": committed / wall if wall else 0.0,
        "deadlocks": stats["deadlocks"],
        "timeouts": stats["timeouts"],
        "lock_waits": stats["waits"],
        "tracked_keys": stats["tracked_keys"],
        "oracle_ok": oracle_ok,
        "check_ok": bool(database.check().ok),
    }


def _measure_disjoint(session_counts, transactions: int) -> dict:
    """Sweep the entity-granular disjoint workload across session
    counts, then pit the max-session cell against the same workload at
    class granularity (``entity_locks=False``) — the serialization the
    entity locks exist to remove."""
    cells = {}
    for sessions in session_counts:
        cells[str(sessions)] = _disjoint_run(sessions, transactions,
                                             entity_locks=True)
    top = max(session_counts)
    baseline = _disjoint_run(top, transactions, entity_locks=False)
    entity_rate = cells[str(top)]["txns_per_s"]
    baseline_rate = baseline["txns_per_s"]
    return {
        "entities": DISJOINT_ENTITIES,
        "pool_frames": DISJOINT_POOL_FRAMES,
        "read_latency_us": DISJOINT_READ_LATENCY * 1e6,
        "sessions": cells,
        "class_granularity_baseline": baseline,
        "oracle_ok": all(cell["oracle_ok"]
                         for cell in cells.values()) and
        baseline["oracle_ok"],
        "speedup_vs_class_granularity": (entity_rate / baseline_rate
                                         if baseline_rate else 0.0),
    }


# ----------------------------------------------------------------- entry point

def measure_concurrency(entities: int = 10_000, chain_depth: int = 3,
                        session_counts=SESSION_COUNTS, rounds: int = 2,
                        transactions: int = 25) -> dict:
    """The numbers ``BENCH_concurrency.json`` records."""
    reads = _measure_reads(entities, chain_depth, session_counts, rounds)
    contention = _measure_contention(session_counts, transactions)
    # The disjoint cell always includes the 8-session point: that is
    # where its speedup gate is anchored, smoke lane included.
    disjoint_counts = tuple(sorted(set(session_counts) | {8}))
    disjoint = _measure_disjoint(disjoint_counts, transactions)
    speedup_at_4 = (reads["sessions"]["4"]["speedup"]
                    if "4" in reads["sessions"] else None)
    return {
        "session_counts": list(session_counts),
        "reads": reads,
        "contention": contention,
        "disjoint": disjoint,
        "rows_identical": reads["rows_identical"],
        "oracle_ok": contention["oracle_ok"] and disjoint["oracle_ok"],
        "read_speedup_at_4": speedup_at_4,
        "min_read_speedup_at_4": MIN_READ_SPEEDUP_AT_4,
        "disjoint_speedup": disjoint["speedup_vs_class_granularity"],
        "min_disjoint_speedup_at_8": MIN_DISJOINT_SPEEDUP_AT_8,
    }


def test_e19_concurrency_smoke(benchmark):
    """The CI lane: small scale, sessions {1, 4} for reads/contention —
    row identity across sessions plus the committed-prefix oracles —
    and the full 8-session disjoint-entity cell with its gate: entity-
    granularity throughput >= MIN_DISJOINT_SPEEDUP_AT_8 x the class-
    granularity baseline.  The read-scaling bound is ``make
    bench-concurrency``'s gate, not CI's."""
    measured = measure_concurrency(entities=2_000, session_counts=(1, 4),
                                   rounds=1, transactions=10)

    assert measured["rows_identical"]
    assert measured["oracle_ok"]
    for cell in measured["contention"]["sessions"].values():
        assert cell["check_ok"]
        assert cell["committed"] + cell["aborted"] == \
            cell["transactions_offered"]

    disjoint = measured["disjoint"]
    assert disjoint["oracle_ok"]
    for cell in disjoint["sessions"].values():
        assert cell["check_ok"]
        assert cell["committed"] == cell["transactions_offered"]
        # Entity-granular writers over disjoint entities never conflict.
        assert cell["deadlocks"] == 0
        assert cell["timeouts"] == 0
        assert cell["tracked_keys"] == 0
    assert disjoint["speedup_vs_class_granularity"] \
        >= MIN_DISJOINT_SPEEDUP_AT_8

    benchmark(lambda: None)
    attach(benchmark,
           rows_identical=measured["rows_identical"],
           oracle_ok=measured["oracle_ok"],
           read_speedup_at_4=round(measured["read_speedup_at_4"], 2),
           contended_txns_per_s_at_4=round(
               measured["contention"]["sessions"]["4"]["txns_per_s"], 1),
           disjoint_speedup_at_8=round(
               disjoint["speedup_vs_class_granularity"], 2))
