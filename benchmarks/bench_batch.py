"""E17 — batched Volcano execution vs tuple-at-a-time interpretation.

The operator-algebra refactor's performance claim: pulling *batches* of
surrogate bindings through the pipeline (one accessor/mapper call per
batch, columnar projection reads) beats the seed's recursive
tuple-at-a-time interpreter (one recursive generator frame, one env
dict, and one accessor call per row).

The seed interpreter was deleted, so this experiment reconstructs it
faithfully *inside the same pipeline*: a tuple-at-a-time spine operator
(recursive enumeration, per-row ``node_domain`` / ``selection_holds``
calls, batches of exactly one row) is spliced in below the unchanged
Aggregate/Project/Sort/Distinct tail.  Both sides therefore share the
projection, ordering and distinct semantics by construction, which lets
the experiment *assert* row-identical results rather than trust them.

Shape claims asserted (the CI gate):
* every one of the 12 UNIVERSITY queries returns identical rows both
  ways;
* on the multi-EVA traversal queries — those whose physical spine has
  at least one traversal operator — the batched engine is at least
  ``MULTI_EVA_MIN_SPEEDUP`` (2x) faster at ``BATCH_SIZE`` (>= 64).
"""

import time

from repro import parse_dml
from repro.dml.query_tree import TYPE3
from repro.engine import operators as ops
from repro.optimizer.physical_plan import lower_plan
from repro.workloads import build_university
from repro.workloads.university import UNIVERSITY_QUERIES

from _harness import attach

#: the CI gate: minimum batched-over-tuple speedup on traversal queries
MULTI_EVA_MIN_SPEEDUP = 2.0

#: batch size under test (the acceptance bar requires >= 64)
BATCH_SIZE = 64


class _RecursiveSpine(ops.Operator):
    """The seed's recursive nested-loop enumeration, as a source
    operator: per-row env dicts, one ``node_domain`` call per parent
    instance, one ``selection_holds`` call per candidate row, and
    single-row batches into the tail."""

    name = "RecursiveSpine"

    def __init__(self, physical, where):
        super().__init__(None)
        self.physical = physical
        self.where = where

    def run(self, ctx):
        spine = self.physical.spine
        exists_nodes = self.physical.exists_nodes
        plan = self.physical.plan
        slots = ctx.slots
        accessor = ctx.accessor
        evaluator = ctx.evaluator
        where = self.where
        row = [ops.UNBOUND] * ctx.width
        env = {}

        def recurse(index):
            if index == len(spine):
                if ops.selection_holds(evaluator, accessor, where,
                                       exists_nodes, env):
                    yield self._emit([list(row)])
                return
            node = spine[index]
            slot = slots[node.id]
            if node.kind == "root":
                domain = None
                if plan is not None:
                    domain = plan.root_iterator(node, ctx.executor)
                if domain is None:
                    domain = accessor.root_domain(node)
            else:
                domain = accessor.node_domain(node, env)
                if not domain and node.label == TYPE3:
                    domain = (ops.DUMMY,)
            for instance in domain:
                row[slot] = instance
                env[node.id] = instance
                yield from recurse(index + 1)
            row[slot] = ops.UNBOUND
            env.pop(node.id, None)

        yield from recurse(0)


def _prepare(db, text):
    """Parse / qualify / plan / lower once, outside the timed region:
    the timed comparison is pure execution.  Two DAGs are lowered from
    the same plan — the batched pipeline as shipped, and one whose
    spine and selection are replaced by the recursive source (the
    unchanged Aggregate/Project/Sort/Distinct tail is shared code, so
    row-identical output is checkable, not assumed)."""
    query = parse_dml(text)
    tree = db.qualifier.resolve_retrieve(query)
    # The access-path choice is held constant (extent scans, no root
    # reorder) so the comparison isolates interpretation cost; index
    # access paths are a separate effect and are measured by E6.
    plan = None
    batched = lower_plan(query, tree, plan, db.executor)
    tuple_wise = lower_plan(query, tree, plan, db.executor)
    boundary = next(op for op in tuple_wise.operators
                    if op.name in ("Aggregate", "Project"))
    boundary.child = _RecursiveSpine(tuple_wise, query.where)
    return batched, tuple_wise


def _drain(physical, executor):
    executor.accessor.begin_query()
    ctx = ops.ExecContext(executor, physical)
    rows = []
    for batch in physical.root.run(ctx):
        for out_row in batch:
            if not out_row.duplicate:
                rows.append(out_row.values)
    return rows


def _spine_traversals(physical) -> int:
    return sum(1 for op in physical.operators
               if op.name in ("EVATraverse", "OuterTraverse"))


def measure_batch(students: int = 120, courses: int = 240,
                  repeats: int = 5) -> dict:
    """The numbers ``BENCH_batch.json`` records."""
    db = build_university(departments=4, instructors=12, students=students,
                          courses=courses, seed=7)
    executor = db.executor
    executor.batch_size = BATCH_SIZE

    prepared = [_prepare(db, text) for text in UNIVERSITY_QUERIES]

    # Warm every cache (memo, read cache) through both paths so the
    # timed runs compare interpretation cost, not I/O.
    rows_identical = True
    for batched, tuple_wise in prepared:
        if _drain(batched, executor) != _drain(tuple_wise, executor):
            rows_identical = False

    per_query = []
    for text, (batched, tuple_wise) in zip(UNIVERSITY_QUERIES, prepared):
        tuple_wall = batched_wall = float("inf")
        # Interleave modes inside each repeat so clock drift hits both
        # equally; keep the least-disturbed (minimum) pass of each.
        for _ in range(repeats):
            started = time.perf_counter()
            _drain(tuple_wise, executor)
            tuple_wall = min(tuple_wall, time.perf_counter() - started)

            started = time.perf_counter()
            batched_rows = _drain(batched, executor)
            batched_wall = min(batched_wall, time.perf_counter() - started)
        per_query.append({
            "query": text,
            "rows": len(batched_rows),
            "traversals": _spine_traversals(batched),
            "tuple_ms": tuple_wall * 1000.0,
            "batched_ms": batched_wall * 1000.0,
            "speedup": tuple_wall / batched_wall,
        })

    multi_eva = [entry for entry in per_query if entry["traversals"] >= 1]
    return {
        "queries": len(per_query),
        "students": students,
        "courses": courses,
        "repeats": repeats,
        "batch_size": BATCH_SIZE,
        "rows_identical": rows_identical,
        "per_query": per_query,
        "multi_eva_queries": len(multi_eva),
        "multi_eva_min_speedup": min(entry["speedup"]
                                     for entry in multi_eva),
        "multi_eva_mean_speedup": (sum(entry["speedup"]
                                       for entry in multi_eva)
                                   / len(multi_eva)),
        "overall_mean_speedup": (sum(entry["speedup"]
                                     for entry in per_query)
                                 / len(per_query)),
        "min_speedup_bound": MULTI_EVA_MIN_SPEEDUP,
    }


def test_e17_batch_throughput(benchmark):
    measured = measure_batch()

    # Identical rows on all 12 queries is the correctness half of the
    # experiment — a speedup over different answers measures nothing.
    assert measured["rows_identical"]
    assert measured["multi_eva_queries"] >= 3
    # The CI gate: batched execution holds its 2x on traversal queries.
    assert (measured["multi_eva_min_speedup"]
            >= measured["min_speedup_bound"])

    benchmark(lambda: None)
    attach(benchmark,
           batch_size=measured["batch_size"],
           rows_identical=measured["rows_identical"],
           multi_eva_queries=measured["multi_eva_queries"],
           multi_eva_min_speedup=round(
               measured["multi_eva_min_speedup"], 2),
           multi_eva_mean_speedup=round(
               measured["multi_eva_mean_speedup"], 2),
           overall_mean_speedup=round(
               measured["overall_mean_speedup"], 2))
