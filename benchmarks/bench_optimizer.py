"""E6 — the optimizer (paper §5.1): strategy enumeration, cost estimates,
and measured wins.

"SIM optimizes a query by building a query graph..., enumerating
strategies, estimating the cost of processing for each strategy and
choosing the one with the least cost."

Workload: the populated UNIVERSITY database; queries with selective
equality predicates on indexed attributes.

Shape claims asserted:
* the optimizer's chosen plan never does more physical I/O than the naive
  canonical scan, and wins by a growing factor as the class grows;
* the cost model's ranking of strategies agrees with measured I/O;
* plans preserve answers and perspective-implied ordering.
"""

import pytest

from repro import parse_dml
from repro.workloads import build_university

from _harness import attach, cold_io


def build(students: int):
    return build_university(departments=4, instructors=12,
                            students=students, courses=24, seed=17)


def selective_query(db):
    ssn = db.query("From student Retrieve soc-sec-no").rows[-1][0]
    return (f"From student Retrieve name, name of advisor"
            f" Where soc-sec-no = {ssn}")


def run_with(db, text, plan):
    query = parse_dml(text)
    tree = db.qualifier.resolve_retrieve(query)
    return db.executor.run(query, tree, plan)


def chosen_plan(db, text):
    query = parse_dml(text)
    tree = db.qualifier.resolve_retrieve(query)
    return db.optimizer.choose_plan(query, tree)


@pytest.mark.parametrize("students", [40, 160])
def test_e6_optimized_query(benchmark, students):
    db = build(students)
    text = selective_query(db)
    plan = chosen_plan(db, text)

    def operation():
        db.cold_cache()
        return run_with(db, text, plan)

    result = benchmark(operation)
    assert len(result) == 1
    io = cold_io(db, lambda: run_with(db, text, plan))
    attach(benchmark, students=students, plan=plan.description, **io)


@pytest.mark.parametrize("students", [40, 160])
def test_e6_naive_query(benchmark, students):
    db = build(students)
    text = selective_query(db)

    def operation():
        db.cold_cache()
        return run_with(db, text, None)

    result = benchmark(operation)
    assert len(result) == 1
    io = cold_io(db, lambda: run_with(db, text, None))
    attach(benchmark, students=students, plan="canonical scan", **io)


def test_e6_optimizer_beats_naive_and_scales(benchmark):
    ratios = {}
    for students in (40, 160):
        db = build(students)
        text = selective_query(db)
        plan = chosen_plan(db, text)
        assert plan.root_access["student"].kind == "index"
        optimized = cold_io(db, lambda: run_with(db, text, plan))["physical"]
        naive = cold_io(db, lambda: run_with(db, text, None))["physical"]
        assert optimized <= naive
        ratios[students] = naive / max(optimized, 1)
    # The win grows with the extent size.
    assert ratios[160] >= ratios[40]
    attach(benchmark, **{f"ratio_{k}": round(v, 2)
                         for k, v in ratios.items()})
    benchmark(lambda: None)


def test_e6_cost_ranking_matches_measurement(benchmark):
    """Estimates order strategies the same way measured I/O does."""
    db = build(160)
    text = selective_query(db)
    query = parse_dml(text)
    tree = db.qualifier.resolve_retrieve(query)
    plans = db.optimizer.enumerate_strategies(query, tree)

    measured = []
    for plan in plans:
        io = cold_io(db, lambda: db.executor.run(query, tree, plan))
        measured.append((plan.estimated_cost, io["physical"]))
    by_estimate = sorted(measured, key=lambda pair: pair[0])
    assert [physical for _, physical in by_estimate] == \
        sorted(physical for _, physical in measured)
    attach(benchmark, strategies=len(plans))
    benchmark(lambda: None)


def test_e6_plans_preserve_answers_and_order(benchmark):
    db = build(60)
    queries = [
        "From student Retrieve name, name of advisor",
        selective_query(db),
        "From student Retrieve name, title of courses-enrolled"
        " Where soc-sec-no >= 0 and soc-sec-no <= 999999999",
    ]
    for text in queries:
        query = parse_dml(text)
        tree = db.qualifier.resolve_retrieve(query)
        plan = db.optimizer.choose_plan(query, tree)
        assert db.executor.run(query, tree, plan).rows == \
            db.executor.run(query, tree, None).rows
    benchmark(lambda: None)


def test_e6_explain_overhead(benchmark):
    db = build(40)
    text = selective_query(db)
    benchmark(lambda: db.explain(text))


def test_e6_statistics_ablation(benchmark):
    """Statistical optimization (§5.1's unfinished roadmap item): with
    ANALYZE, a value index on an effectively-unique attribute is chosen;
    without statistics the fixed default selectivity under-sells it."""
    from repro import Database, PhysicalDesign, parse_ddl
    from repro.workloads import UNIVERSITY_DDL, populate_university

    schema = parse_ddl(UNIVERSITY_DDL)
    design = (PhysicalDesign(schema)
              .add_value_index("student", "student-nbr")
              .finalize())
    db = Database(schema, design=design, constraint_mode="off")
    populate_university(db, students=160, instructors=12, courses=24,
                        seed=19)
    nbr = db.query("From student Retrieve student-nbr").rows[-1][0]
    text = f"From student Retrieve name, name of advisor Where student-nbr = {nbr}"

    query = parse_dml(text)
    tree = db.qualifier.resolve_retrieve(query)
    db.optimizer.table_statistics = None
    plan_default = db.optimizer.choose_plan(query, tree)
    db.analyze()
    plan_analyzed = db.optimizer.choose_plan(query, tree)

    assert plan_analyzed.root_access["student"].kind == "index"
    analyzed_io = cold_io(db, lambda: db.executor.run(query, tree,
                                                      plan_analyzed))
    default_io = cold_io(db, lambda: db.executor.run(query, tree,
                                                     plan_default))
    assert analyzed_io["physical"] <= default_io["physical"]
    attach(benchmark,
           default_plan=plan_default.root_access["student"].kind,
           analyzed_plan=plan_analyzed.root_access["student"].kind,
           default_physical=default_io["physical"],
           analyzed_physical=analyzed_io["physical"])
    benchmark(lambda: db.analyze())
