"""E3 — the ADDS data-dictionary scale point (paper §6).

"ADDS ... consists of 13 base classes, 209 subclasses, 39 EVA-inverse
pairs, 530 DVAs and at its deepest, one hierarchy represents 5 levels of
generalization."

The generated schema reproduces those statistics exactly; the benchmark
measures resolving a schema of that shape, translating it to LUCs, laying
out physical storage, loading it into the queryable catalog, and running
entity operations on the 5-level hierarchy.
"""

import pytest

from repro.directory import build_catalog
from repro.mapper import MapperStore, translate_schema
from repro.workloads import ADDS_TARGET, build_adds_schema

from _harness import attach


def test_e3_statistics_match_paper(benchmark):
    schema = benchmark(build_adds_schema)
    stats = schema.statistics()
    assert stats == ADDS_TARGET
    attach(benchmark, **stats)


def test_e3_luc_translation(benchmark):
    schema = build_adds_schema()
    luc_schema = benchmark(lambda: translate_schema(schema))
    class_lucs = [l for l in luc_schema.lucs() if l.kind == "class"]
    assert len(class_lucs) == (ADDS_TARGET["base_classes"]
                               + ADDS_TARGET["subclasses"])
    assert len(luc_schema.relationships("eva")) == \
        ADDS_TARGET["eva_inverse_pairs"]
    attach(benchmark, lucs=len(luc_schema.lucs()),
           relationships=len(luc_schema.relationships()))


def test_e3_physical_layout(benchmark):
    schema = build_adds_schema()
    store = benchmark(lambda: MapperStore(schema))
    assert len(store._eva_info) == ADDS_TARGET["eva_inverse_pairs"]


def test_e3_deep_hierarchy_operations(benchmark):
    schema = build_adds_schema()
    store = MapperStore(schema)
    deep = f"dict-deep{ADDS_TARGET['max_hierarchy_depth'] - 1}"

    def operation():
        surrogate = store.insert_entity(deep)
        roles = store.roles_of(surrogate, "dict-base00")
        store.remove_role(surrogate, "dict-base00")
        return roles

    roles = benchmark(operation)
    assert len(roles) == ADDS_TARGET["max_hierarchy_depth"]


def test_e3_catalog_of_adds_schema(benchmark):
    """The dictionary-about-the-dictionary: load the ADDS-shaped schema
    into the SIM catalog and query it."""
    schema = build_adds_schema()
    catalog = benchmark(lambda: build_catalog(schema))
    base_count = catalog.query(
        "From db-class Retrieve Table Distinct count(db-class)"
        " Where is-base = true")
    assert len(catalog.query(
        "From db-class Retrieve name Where is-base = true")) == \
        ADDS_TARGET["base_classes"]
    deepest = catalog.query(
        "From db-class Retrieve Table Distinct level Order By level Desc"
    ).rows[0][0]
    assert deepest == ADDS_TARGET["max_hierarchy_depth"] - 1
    attach(benchmark,
           catalog_classes=catalog.store.class_count("db-class"),
           catalog_attributes=catalog.store.class_count("db-attribute"))
