"""E4 — EVA mapping options (paper §5.2).

"The mapping of EVAs is the key factor in determining SIM's performance."

Workload: ``owners`` owner entities with a 1:many EVA of ``fanout``
members, plus an interleaved noise EVA sharing the Common EVA Structure.
Unit operation: from one owner, traverse the relationship and materialize
every member record (cold cache), the access pattern §5.1's first/next
instance costs describe.

Shape claims asserted:
* the Common structure does at least as much physical I/O as a dedicated
  structure (interleaving destroys locality);
* clustered relationship records make the *relationship access itself*
  free once the owner's block is in memory (first-instance cost 0);
* every mapping returns identical answers.

Ablations: surrogate key kind and buffer-pool size.
"""

import pytest

from repro import Database, EvaMapping, PhysicalDesign, SurrogateKeyKind
from repro.workloads import fanout_schema, populate_fanout

from _harness import attach, cold_io

OWNERS = 60
FANOUT = 10

MAPPINGS = [EvaMapping.COMMON, EvaMapping.DEDICATED, EvaMapping.CLUSTERED,
            EvaMapping.POINTER, EvaMapping.FOREIGN_KEY]


def build(mapping: EvaMapping, owners: int = OWNERS, fanout: int = FANOUT,
          pool: int = 24, key_kind: SurrogateKeyKind = SurrogateKeyKind.HASH):
    schema = fanout_schema()
    design = PhysicalDesign(schema, pool_capacity=pool,
                            surrogate_key_kind=key_kind)
    design.override_eva("owner", "members", mapping)
    db = Database(schema, design=design.finalize(), constraint_mode="off",
                  use_optimizer=False)
    owners_surrs, _ = populate_fanout(db, owners, fanout)
    return db, owners_surrs


def traverse_all(db, owner_surrs, with_members: bool = True):
    """The unit operation, repeated over every owner."""
    store = db.store
    members = db.schema.get_class("owner").attribute("members")
    data_attr = db.schema.get_class("member").attribute("member-data")
    total = 0
    for owner in owner_surrs:
        store.record_of(owner, "owner")
        for member in store.eva_targets(owner, members):
            if with_members:
                store.read_dva(member, data_attr)
            total += 1
    return total


@pytest.mark.parametrize("mapping", MAPPINGS, ids=lambda m: m.value)
def test_e4_traversal(benchmark, mapping):
    db, owner_surrs = build(mapping)

    def operation():
        db.cold_cache()
        return traverse_all(db, owner_surrs)

    count = benchmark(operation)
    assert count == OWNERS * FANOUT
    io = cold_io(db, lambda: traverse_all(db, owner_surrs))
    attach(benchmark, mapping=mapping.value, owners=OWNERS, fanout=FANOUT,
           **io)


def _physical(mapping, with_members=True, fanout=FANOUT):
    db, owner_surrs = build(mapping, fanout=fanout)
    return cold_io(db, lambda: traverse_all(db, owner_surrs,
                                            with_members))["physical"]


def test_e4_common_pays_for_interleaving(benchmark):
    """Dedicated beats the shared Common structure on the same traversal."""
    common = _physical(EvaMapping.COMMON)
    dedicated = _physical(EvaMapping.DEDICATED)
    assert dedicated <= common
    attach(benchmark, common=common, dedicated=dedicated)
    benchmark(lambda: None)


def first_instances(db, owner_surrs):
    """§5.1's unit operation: read each owner's record, then access the
    FIRST instance of the relationship (not the whole fan-out)."""
    store = db.store
    members = db.schema.get_class("owner").attribute("members")
    info = store.eva_info(members)
    touched = 0
    for owner in owner_surrs:
        store.record_of(owner, "owner")
        rids = info.forward.lookup((info.rel_id, owner))
        if rids:
            info.file.read(rids[0])
            touched += 1
    return touched


def test_e4_clustered_first_instance_free(benchmark):
    """§5.1: "the I/O cost of accessing the first instance of a
    relationship will be 0 if the relationship is implemented by
    clustering" — the clustered mapping's first-instance sweep costs no
    more than reading the owner records alone, while the structure-based
    mappings pay extra block accesses."""
    results = {}
    for mapping in (EvaMapping.CLUSTERED, EvaMapping.DEDICATED,
                    EvaMapping.COMMON):
        db, owner_surrs = build(mapping, owners=40, fanout=2, pool=16)
        baseline = cold_io(db, lambda: [db.store.record_of(o, "owner")
                                        for o in owner_surrs])["physical"]
        total = cold_io(db,
                        lambda: first_instances(db, owner_surrs))["physical"]
        results[mapping.value] = total - baseline
    assert results["clustered"] == 0
    assert results["clustered"] <= results["dedicated"]
    assert results["clustered"] <= results["common"]
    attach(benchmark, **results)
    benchmark(lambda: None)


@pytest.mark.parametrize("fanout", [1, 10, 40])
def test_e4_fanout_sweep(benchmark, fanout):
    """The common-vs-dedicated gap grows with fan-out."""
    db, owner_surrs = build(EvaMapping.COMMON, owners=30, fanout=fanout)
    benchmark(lambda: (db.cold_cache(),
                       traverse_all(db, owner_surrs))[1])
    io = cold_io(db, lambda: traverse_all(db, owner_surrs))
    attach(benchmark, fanout=fanout, **io)


@pytest.mark.parametrize("key_kind", list(SurrogateKeyKind),
                         ids=lambda k: k.value)
def test_e4_surrogate_key_kinds(benchmark, key_kind):
    """§5.2 ablation: direct / hashed / index-sequential surrogates all
    support the same traversal; timing differs, answers do not."""
    db, owner_surrs = build(EvaMapping.DEDICATED, key_kind=key_kind)

    def operation():
        db.cold_cache()
        return traverse_all(db, owner_surrs)

    count = benchmark(operation)
    assert count == OWNERS * FANOUT
    attach(benchmark, key_kind=key_kind.value)


@pytest.mark.parametrize("pool", [4, 16, 64])
def test_e4_buffer_pool_sweep(benchmark, pool):
    """Ablation: physical reads fall as the buffer pool grows."""
    db, owner_surrs = build(EvaMapping.COMMON, pool=pool)

    def operation():
        db.cold_cache()
        return traverse_all(db, owner_surrs)

    benchmark(operation)
    io = cold_io(db, lambda: traverse_all(db, owner_surrs))
    attach(benchmark, pool=pool, **io)


def test_e4_buffer_pool_monotone(benchmark):
    numbers = {}
    for pool in (4, 16, 64):
        db, owner_surrs = build(EvaMapping.COMMON, pool=pool)
        numbers[pool] = cold_io(
            db, lambda: traverse_all(db, owner_surrs))["physical"]
    assert numbers[64] <= numbers[16] <= numbers[4]
    attach(benchmark, **{str(k): v for k, v in numbers.items()})
    benchmark(lambda: None)


def test_e4_all_mappings_same_answers(benchmark):
    reference = None
    for mapping in MAPPINGS:
        db, owner_surrs = build(mapping, owners=10, fanout=5)
        rows = db.query("From owner Retrieve owner-key, member-key of"
                        " members Order By owner-key,"
                        " member-key of members").rows
        if reference is None:
            reference = rows
        assert rows == reference
    benchmark(lambda: None)
