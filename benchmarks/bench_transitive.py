"""E8 — transitive closure on cyclic EVA chains (paper §4.7, example 5).

Workloads: prerequisite graphs shaped as a chain, a binary tree and a
random DAG, over a depth/size sweep.

Shape claims asserted:
* the closure visits every reachable course exactly once (set semantics,
  even on diamonds) and never loops on cycles;
* work grows roughly linearly with the number of reachable edges (each
  entity's relationship instances are traversed once).
"""

import pytest

from repro import Database
from repro.workloads import UNIVERSITY_DDL

from _harness import attach, cold_io


def course_db(edges, count):
    """Build a course graph; edges are (course, prerequisite) indexes."""
    db = Database(UNIVERSITY_DDL, constraint_mode="off",
                  use_optimizer=False)
    store = db.store
    prereq = db.schema.get_class("course").attribute("prerequisites")
    surrogates = [store.insert_entity(
        "course", {"course-no": k + 1, "title": f"C{k}", "credits": 1})
        for k in range(count)]
    for course, prerequisite in edges:
        store.eva_include(surrogates[course], prereq,
                          surrogates[prerequisite])
    return db, surrogates


def chain(depth):
    return [(k, k + 1) for k in range(depth)], depth + 1


def binary_tree(levels):
    edges = []
    count = 2 ** levels - 1
    for node in range(count):
        for child in (2 * node + 1, 2 * node + 2):
            if child < count:
                edges.append((node, child))
    return edges, count


def diamond_dag(layers):
    """Each layer fully connected to the next: many shared paths."""
    width = 3
    edges = []
    count = layers * width
    for layer in range(layers - 1):
        for upper in range(width):
            for lower in range(width):
                edges.append((layer * width + upper,
                              (layer + 1) * width + lower))
    return edges, count


CLOSURE = ('Retrieve count distinct (transitive(prerequisites))'
           ' Where title = "C0"')


@pytest.mark.parametrize("depth", [4, 16, 64])
def test_e8_chain_depth_sweep(benchmark, depth):
    edges, count = chain(depth)
    db, _ = course_db(edges, count)
    result = benchmark(lambda: db.query("From course " + CLOSURE).scalar())
    assert result == depth
    io = cold_io(db, lambda: db.query("From course " + CLOSURE))
    attach(benchmark, depth=depth, **io)


@pytest.mark.parametrize("levels", [3, 5, 7])
def test_e8_tree_sweep(benchmark, levels):
    edges, count = binary_tree(levels)
    db, _ = course_db(edges, count)
    result = benchmark(lambda: db.query("From course " + CLOSURE).scalar())
    assert result == count - 1
    attach(benchmark, levels=levels, nodes=count)


def test_e8_dag_counts_each_node_once(benchmark):
    edges, count = diamond_dag(4)
    db, _ = course_db(edges, count)
    value = benchmark(
        lambda: db.query("From course " + CLOSURE).scalar())
    # reachable: everything below layer 0 except C0's own layer siblings
    assert value == count - 3

def test_e8_cycle_terminates(benchmark):
    edges = [(0, 1), (1, 2), (2, 0)]
    db, _ = course_db(edges, 3)
    value = benchmark(
        lambda: db.query("From course " + CLOSURE).scalar())
    assert value == 2  # everything reachable except the start itself


def test_e8_levels_in_structured_output(benchmark):
    edges, count = chain(5)
    db, _ = course_db(edges, count)
    result = db.query('Retrieve Structure Title of'
                      ' Transitive(prerequisites) of Course'
                      ' Where Title of Course = "C0"')
    levels = [record.level for record in result.structured
              if record.format_name == "prerequisites"]
    assert levels == [1, 2, 3, 4, 5]
    benchmark(lambda: None)


def test_e8_linear_scaling(benchmark):
    """Closure I/O grows sub-quadratically in chain depth."""
    io_by_depth = {}
    for depth in (16, 64):
        edges, count = chain(depth)
        db, _ = course_db(edges, count)
        io_by_depth[depth] = cold_io(
            db, lambda: db.query("From course " + CLOSURE))["logical"]
    # 4x the depth should cost well under 16x the logical reads.
    assert io_by_depth[64] < 8 * io_by_depth[16]
    attach(benchmark, **{str(k): v for k, v in io_by_depth.items()})
    benchmark(lambda: None)
