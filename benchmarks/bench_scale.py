"""E18 — morsel-parallel execution at 10^5+ entity scale.

The morsel dispatcher's performance claim: partitioning the root Scan's
domain into morsels and driving cloned pipeline segments on a worker
pool overlaps device waits, so traversal-heavy queries whose working set
misses the buffer pool speed up with the worker count — while the merged
output stays row-identical to serial execution.

CPython's GIL means pure interpretation cannot scale across threads on
one core; what scales is *waiting*.  The measurement therefore models a
storage device with a per-read service time (``Disk.read_latency``, a
``time.sleep`` taken outside the buffer-pool lock) and **self-calibrates**
it: each query first runs with zero latency to measure its pure-CPU wall
time and cold physical-read count, then the latency is set so modeled
I/O wait is ``TARGET_IO_RATIO`` times the CPU time.  That pins the
serial CPU:I/O mix — the knob morsel parallelism actually exploits — to
a realistic disk-bound shape instead of depending on host speed, and the
buffer pool is resized below the working set so reads keep faulting.

Reported per query and worker count: wall time, rows/sec, speedup over
serial (same latency, one worker).  Reported per entity count: populate
rate and peak RSS (``resource.getrusage``).  The CI gate asserts
row-identity across every worker count and — at the full 10^5 scale run
by ``make bench-scale`` — an aggregate >= 2x speedup at 4 workers on the
traversal-heavy queries.
"""

import resource
import time

from repro.database import Database
from repro.workloads.generators import (
    populate_scale,
    scale_queries,
    scale_schema,
)

from _harness import attach

#: modeled I/O wait as a multiple of pure-CPU time (the calibration)
TARGET_IO_RATIO = 3.0

#: the acceptance bound: aggregate traversal-query speedup at 4 workers
MIN_AGGREGATE_SPEEDUP = 2.0

#: worker counts swept (1 = serial baseline at the same latency)
WORKER_COUNTS = (1, 2, 4, 8)

#: buffer-pool frames during measurement — far below the working set at
#: 10^4+ entities, so cold runs fault throughout execution
POOL_FRAMES = 256

#: indices into scale_queries() whose heavy reads run in the parallel
#: segment — traversal selections and the generalization-diamond scan
#: (the "traversal-heavy" aggregate the acceptance bound is over).  The
#: others (target-path projection, aggregate evaluation) do their reads
#: in the serial consumers above the barrier and are reported as the
#: honest contrast.
TRAVERSAL_QUERY_INDICES = (0, 2, 4, 5)


def _peak_rss_kb() -> int:
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


def _build(entities: int, chain_depth: int) -> Database:
    database = Database(scale_schema(chain_depth), constraint_mode="off")
    populate_scale(database, entities, chain_depth=chain_depth)
    return database


def _cold_run(database: Database, text: str):
    """One cold-cache execution: wall seconds, rows, physical reads."""
    database.cold_cache()
    database.reset_io_stats()
    started = time.perf_counter()
    result = database.execute(text)
    wall = time.perf_counter() - started
    return wall, result.rows, database.io_stats.physical_reads


def measure_scale(entities: int = 100_000, chain_depth: int = 3,
                  sizes=(1_000, 10_000), worker_counts=WORKER_COUNTS) -> dict:
    """The numbers ``BENCH_scale.json`` records."""
    queries = scale_queries(chain_depth)

    # Entity-count sweep (ascending, so ru_maxrss deltas are meaningful):
    # populate rate and peak RSS per scale.
    scale_sweep = []
    for size in [s for s in sizes if s < entities] + [entities]:
        started = time.perf_counter()
        database = _build(size, chain_depth)
        populate_wall = time.perf_counter() - started
        total = sum(database.store.class_count(f"tier{level}")
                    for level in range(chain_depth))
        total += database.store.class_count("part")
        scale_sweep.append({
            "entities": total,
            "populate_s": populate_wall,
            "populate_rate": total / populate_wall,
            "peak_rss_kb": _peak_rss_kb(),
        })
        if size != entities:
            del database

    # The largest database is the measured one.  Constrain the pool so
    # the working set does not fit, then calibrate the modeled device.
    database.store.pool.resize(POOL_FRAMES)
    cpu_wall = 0.0
    physical_reads = 0
    baseline_rows = []
    for text in queries:
        wall, rows, reads = _cold_run(database, text)
        cpu_wall += wall
        physical_reads += reads
        baseline_rows.append(rows)
    read_latency = (TARGET_IO_RATIO * cpu_wall / physical_reads
                    if physical_reads else 0.0)
    database.store.disk.read_latency = read_latency

    per_query = [{"query": text,
                  "traversal": index in TRAVERSAL_QUERY_INDICES,
                  "rows": len(baseline_rows[index]),
                  "workers": {}}
                 for index, text in enumerate(queries)]
    rows_identical = True
    serial_wall = [None] * len(queries)
    for workers in worker_counts:
        database.executor.parallelism = workers
        for index, text in enumerate(queries):
            wall, rows, reads = _cold_run(database, text)
            if rows != baseline_rows[index]:
                rows_identical = False
            if workers == 1:
                serial_wall[index] = wall
            per_query[index]["workers"][str(workers)] = {
                "wall_s": wall,
                "rows_per_s": len(rows) / wall if wall else 0.0,
                "physical_reads": reads,
                "speedup": (serial_wall[index] / wall
                            if serial_wall[index] else 1.0),
            }

    def aggregate(workers: int) -> float:
        traversal = [entry for entry in per_query if entry["traversal"]]
        return (sum(entry["workers"][str(workers)]["speedup"]
                    for entry in traversal) / len(traversal))

    return {
        "entities": scale_sweep[-1]["entities"],
        "chain_depth": chain_depth,
        "queries": len(queries),
        "pool_frames": POOL_FRAMES,
        "target_io_ratio": TARGET_IO_RATIO,
        "read_latency_us": read_latency * 1e6,
        "calibration_cpu_s": cpu_wall,
        "calibration_physical_reads": physical_reads,
        "rows_identical": rows_identical,
        "scale_sweep": scale_sweep,
        "per_query": per_query,
        "aggregate_speedup": {str(workers): aggregate(workers)
                              for workers in worker_counts if workers > 1},
        "aggregate_speedup_at_4": aggregate(4) if 4 in worker_counts
        else None,
        "min_aggregate_speedup": MIN_AGGREGATE_SPEEDUP,
    }


def test_e18_scale_smoke(benchmark):
    """The CI lane: 10^4 entities, workers {1, 4} — row identity across
    the worker sweep plus a conservative speedup floor (the full 2x bound
    at 10^5 is ``make bench-scale``'s gate, not CI's)."""
    measured = measure_scale(entities=10_000, sizes=(1_000,),
                             worker_counts=(1, 4))

    assert measured["rows_identical"]
    assert measured["entities"] >= 9_000
    # Even at smoke scale the calibrated I/O mix must show real overlap.
    assert measured["aggregate_speedup_at_4"] >= 1.3

    benchmark(lambda: None)
    attach(benchmark,
           entities=measured["entities"],
           rows_identical=measured["rows_identical"],
           read_latency_us=round(measured["read_latency_us"], 1),
           aggregate_speedup_at_4=round(
               measured["aggregate_speedup_at_4"], 2))
