"""E21 — semantic rewrite phase & materialized derived relations.

Two headline cells, both verified row-identical to the legacy planner:

* **subclass pruning** — the §4 ISA query ``From person ... Where person
  isa instructor ...`` over a person hierarchy dominated by students.
  The rewrite proves the qualifying entities all lie in the instructor
  extent and enumerates that extent instead of the person perspective,
  skipping the WHERE evaluation for every non-instructor.
* **materialization hit** — the §4.7 transitive-closure query over a
  dense layered prerequisite DAG, served from a declared closure
  materialization against a cold cache (`cold_cache` drops the read
  cache but materializations stay fresh: that persistence across cache
  pressure is exactly their value proposition).  The DAG shape matters:
  direct BFS cost scales with *edges* while the served closure — and
  the title decode both sides pay — scales with *nodes*.

Wall-clock speedups gate the CI lane at >=2x (``make bench-rewrite``);
rows are asserted identical in every cell, so the gate cannot pass on a
rewrite that changes semantics.
"""

from __future__ import annotations

import time

import pytest

from repro import Database
from repro.workloads import UNIVERSITY_DDL
from repro.workloads.university import build_university

from _harness import attach, perf_delta

SUBCLASS_QUERY = ('From person Retrieve name'
                  ' Where person isa instructor and not person isa student')
CLOSURE_QUERY = ('Retrieve title of Transitive(prerequisites) of course'
                 ' Where course-no of course = 1')


def _best_of(operation, repeats: int, prepare=None) -> float:
    """Best wall time of ``repeats`` runs, in milliseconds."""
    best = float("inf")
    for _ in range(repeats):
        if prepare is not None:
            prepare()
        started = time.perf_counter()
        operation()
        best = min(best, time.perf_counter() - started)
    return best * 1000.0


def subclass_db(students: int = 300, instructors: int = 12) -> Database:
    """A person hierarchy dominated by students: pruning to the
    instructor extent skips almost every WHERE evaluation."""
    return build_university(departments=4, instructors=instructors,
                            students=students, courses=30, seed=11)


def dag_db(width: int = 10, levels: int = 8) -> Database:
    """Course 1 sits atop a layered prerequisite DAG: ``levels`` layers
    of ``width`` courses, each fully connected to the next layer."""
    db = Database(UNIVERSITY_DDL, constraint_mode="off")
    store = db.store
    prereq = db.schema.get_class("course").attribute("prerequisites")
    counter = iter(range(1, width * levels + 2))

    def course():
        number = next(counter)
        return store.insert_entity(
            "course", {"course-no": number, "title": f"C{number}",
                       "credits": 1})

    root = course()
    layers = [[course() for _ in range(width)] for _ in range(levels)]
    for target in layers[0]:
        store.eva_include(root, prereq, target)
    for upper, lower in zip(layers, layers[1:]):
        for source in upper:
            for target in lower:
                store.eva_include(source, prereq, target)
    return db


def measure_rewrite(students: int = 300, width: int = 10, levels: int = 8,
                    repeats: int = 7) -> dict:
    """The numbers ``BENCH_rewrite.json`` records."""
    # -- Cell 1: subclass-pruned ISA query vs the legacy scan ------------
    db = subclass_db(students=students)
    db.rewrite = False
    rows_off = db.query(SUBCLASS_QUERY).rows
    off_ms = _best_of(lambda: db.query(SUBCLASS_QUERY), repeats)
    db.rewrite = True
    rows_on = db.query(SUBCLASS_QUERY).rows
    on_ms = _best_of(lambda: db.query(SUBCLASS_QUERY), repeats)
    subclass_counters = perf_delta(db, lambda: db.query(SUBCLASS_QUERY))

    # -- Cell 2: closure materialization hit vs direct BFS, cold cache --
    direct = dag_db(width=width, levels=levels)
    rows_direct = direct.query(CLOSURE_QUERY).rows
    direct_ms = _best_of(lambda: direct.query(CLOSURE_QUERY), repeats,
                         prepare=direct.cold_cache)

    materialized = dag_db(width=width, levels=levels)
    materialized.materialize("prereq-closure", "closure", "course",
                             ("prerequisites",))
    rows_mat = materialized.query(CLOSURE_QUERY).rows
    mat_ms = _best_of(lambda: materialized.query(CLOSURE_QUERY), repeats,
                      prepare=materialized.cold_cache)
    materialized.cold_cache()      # counter probe must reach the accessor
    mat_counters = perf_delta(materialized,
                              lambda: materialized.query(CLOSURE_QUERY))

    return {
        "students": students,
        "dag_width": width,
        "dag_levels": levels,
        "repeats": repeats,
        "subclass": {
            "query": SUBCLASS_QUERY,
            "legacy_ms": off_ms,
            "rewritten_ms": on_ms,
            "speedup": off_ms / on_ms if on_ms else 0.0,
            "rows": len(rows_on),
            "rows_identical": rows_on == rows_off,
            "rewrite_subclass_prunes":
                subclass_counters["rewrite_subclass_prunes"],
        },
        "closure_mat": {
            "query": CLOSURE_QUERY,
            "direct_ms": direct_ms,
            "materialized_ms": mat_ms,
            "speedup": direct_ms / mat_ms if mat_ms else 0.0,
            "rows": len(rows_mat),
            "rows_identical": rows_mat == rows_direct,
            "materialized_hits": mat_counters["materialized_hits"],
        },
        "min_speedup": 2.0,
    }


# -- pytest-benchmark smoke cells (tier-2: pytest benchmarks/) ----------------

def test_e21_subclass_pruning_rows_identical(benchmark):
    db = subclass_db(students=80)
    db.rewrite = False
    expected = db.query(SUBCLASS_QUERY).rows
    db.rewrite = True
    rows = benchmark(lambda: db.query(SUBCLASS_QUERY).rows)
    assert rows == expected
    delta = perf_delta(db, lambda: db.query(SUBCLASS_QUERY))
    assert delta["rewrite_subclass_prunes"] >= 1
    attach(benchmark, rows=len(rows),
           prunes=delta["rewrite_subclass_prunes"])


def test_e21_closure_materialization_rows_identical(benchmark):
    db = dag_db(width=4, levels=4)
    expected = db.query(CLOSURE_QUERY).rows
    db.materialize("prereq-closure", "closure", "course", ("prerequisites",))
    rows = benchmark(lambda: db.query(CLOSURE_QUERY).rows)
    assert rows == expected
    db.cold_cache()                # reach the accessor, not the read cache
    delta = perf_delta(db, lambda: db.query(CLOSURE_QUERY))
    assert delta["materialized_hits"] >= 1
    attach(benchmark, rows=len(rows), hits=delta["materialized_hits"])


def test_e21_join_materialization_rows_identical(benchmark):
    db = build_university(seed=11)
    expected = db.query("From instructor Retrieve name,"
                        " count(advisees)").rows
    db.materialize("advising", "join", "instructor", ("advisees",))
    rows = benchmark(lambda: db.query(
        "From instructor Retrieve name, count(advisees)").rows)
    assert rows == expected
    attach(benchmark, rows=len(rows))


@pytest.mark.slow
def test_e21_full_gate():
    measured = measure_rewrite()
    assert measured["subclass"]["rows_identical"]
    assert measured["closure_mat"]["rows_identical"]
    assert measured["subclass"]["speedup"] >= measured["min_speedup"]
    assert measured["closure_mat"]["speedup"] >= measured["min_speedup"]
