"""E5 — hierarchy mapping: variable-format records vs separate units
(paper §5.2).

"LUCs in a tree structured generalization hierarchy are physically mapped
into a storage unit with variable-format records...  This ensures that all
immediate and inherited single-valued DVAs applicable to a class will be
in one physical record."

Unit operation: materialize ONE entity — every attribute from the base
class down to the leaf — via an indexed single-entity query, cold cache.
Under the variable-format mapping the entity's role records share one
block (one physical read); one-unit-per-class needs one block per level.

Shape claim asserted: per-entity physical reads are lower under
variable-format for every depth >= 2, and the gap grows with depth.
"""

import pytest

from repro import Database, HierarchyMapping, PhysicalDesign
from repro.workloads import hierarchy_chain_schema, populate_hierarchy_chain

from _harness import attach, cold_io

ENTITIES = 40


def build(depth: int, mapping: HierarchyMapping):
    schema = hierarchy_chain_schema(depth)
    design = PhysicalDesign(schema, pool_capacity=64,
                            default_hierarchy=mapping)
    db = Database(schema, design=design.finalize(), constraint_mode="off",
                  use_optimizer=False)
    surrogates = populate_hierarchy_chain(db, depth, ENTITIES)
    return db, surrogates


def materialize(db, surrogate: int, depth: int):
    """Read every level's attributes of one entity through the Mapper."""
    store = db.store
    values = []
    for level in range(depth):
        sim_class = db.schema.get_class(f"level{level}")
        attr = sim_class.attribute(f"data{level}")
        values.append(store.read_dva(surrogate, attr))
    return values


def per_entity_reads(db, surrogates, depth: int) -> float:
    total = 0
    for surrogate in surrogates:
        io = cold_io(db, lambda: materialize(db, surrogate, depth))
        total += io["physical"]
    return total / len(surrogates)


@pytest.mark.parametrize("depth", [1, 2, 3, 4, 5])
@pytest.mark.parametrize("mapping", list(HierarchyMapping),
                         ids=lambda m: m.value)
def test_e5_entity_materialization(benchmark, depth, mapping):
    db, surrogates = build(depth, mapping)
    sample = surrogates[:10]

    def operation():
        db.cold_cache()
        for surrogate in sample:
            materialize(db, surrogate, depth)

    benchmark(operation)
    attach(benchmark, depth=depth, mapping=mapping.value,
           per_entity_physical=per_entity_reads(db, sample, depth))


def test_e5_variable_format_wins_and_gap_grows(benchmark):
    gaps = {}
    for depth in (2, 3, 4, 5):
        numbers = {}
        for mapping in HierarchyMapping:
            db, surrogates = build(depth, mapping)
            numbers[mapping] = per_entity_reads(db, surrogates[:10], depth)
        assert numbers[HierarchyMapping.VARIABLE_FORMAT] <= \
            numbers[HierarchyMapping.SEPARATE_UNITS]
        gaps[depth] = (numbers[HierarchyMapping.SEPARATE_UNITS]
                       - numbers[HierarchyMapping.VARIABLE_FORMAT])
    assert gaps[5] >= gaps[2]
    attach(benchmark, **{f"gap_depth_{k}": v for k, v in gaps.items()})
    benchmark(lambda: None)


def test_e5_space_claim(benchmark):
    """§5.2: the merged mapping "is also efficient in terms of space" —
    it never uses more blocks than one-unit-per-class."""
    for depth in (2, 4):
        sizes = {}
        for mapping in HierarchyMapping:
            db, _ = build(depth, mapping)
            db.store.pool.flush()
            sizes[mapping] = sum(
                f.block_count for f in db.store._files.values())
        assert sizes[HierarchyMapping.VARIABLE_FORMAT] <= \
            sizes[HierarchyMapping.SEPARATE_UNITS]
    benchmark(lambda: None)


def test_e5_same_answers_under_both_mappings(benchmark):
    reference = None
    for mapping in HierarchyMapping:
        db, _ = build(4, mapping)
        rows = db.query("From level3 Retrieve key0, data0, data3"
                        " Order By key0").rows
        if reference is None:
            reference = rows
        assert rows == reference
    benchmark(lambda: None)
