"""E7 — semantic DML vs the relational formulation (paper §1, §4.1).

The paper's critique of the relational model: application concepts must be
"fragmented to suit the model", and queries acquire "artificial steps"
(explicit joins).  SIM's perspective semantics gives the directed outer
join for free.

Workload: the §4.1 query — every student's name with the advisor's name,
null when absent — over identical data in both systems (the relational
side is loaded from the SIM database), on the same storage substrate with
the same blocking, so block I/O is directly comparable.

Shape claims asserted:
* identical answers at every scale;
* the SIM query text carries no join machinery (0 explicit joins vs 3 in
  the relational program);
* block I/O is in the same ballpark (within 3x either way) — the paper
  claims naturalness without giving up efficiency, not a 10x speedup.
"""

import pytest

from repro.baseline import load_university_relational
from repro.types.tvl import is_null
from repro.workloads import build_university

from _harness import attach, cold_io

SIM_QUERY = "From Student Retrieve Name, Name of Advisor"
#: explicit joins the relational program needs for the same question
RELATIONAL_JOINS = 3


def build(students: int):
    sim_db = build_university(departments=4, instructors=12,
                              students=students, courses=20, seed=23)
    rel_db = load_university_relational(sim_db)
    return sim_db, rel_db


def relational_program(rel_db):
    """student ⋈ person ⟕ instructor ⟕ person — the fragmented shape."""
    students = rel_db.hash_join(rel_db.scan("student"), "person",
                                "id", "id")
    advised = rel_db.left_outer_join(students, "instructor",
                                     "advisor_id", "id", prefix="adv_")
    named = rel_db.left_outer_join(advised, "person", "adv_id", "id",
                                   prefix="advp_")
    return [(row["name"], row["advp_name"]) for row in named]


def normalize_sim(rows):
    return sorted((name, None if is_null(advisor) else advisor)
                  for name, advisor in rows)


@pytest.mark.parametrize("students", [50, 200])
def test_e7_sim_side(benchmark, students):
    sim_db, _ = build(students)

    def operation():
        sim_db.cold_cache()
        return sim_db.query(SIM_QUERY)

    result = benchmark(operation)
    assert len(result) == students
    io = cold_io(sim_db, lambda: sim_db.query(SIM_QUERY))
    attach(benchmark, students=students, joins_in_query_text=0, **io)


@pytest.mark.parametrize("students", [50, 200])
def test_e7_relational_side(benchmark, students):
    _, rel_db = build(students)

    def operation():
        rel_db.cold_cache()
        return relational_program(rel_db)

    result = benchmark(operation)
    assert len(result) == students
    rel_db.cold_cache()
    rel_db.reset_io_stats()
    relational_program(rel_db)
    stats = rel_db.io_stats
    attach(benchmark, students=students,
           joins_in_query_text=RELATIONAL_JOINS,
           logical=stats.logical_reads, physical=stats.physical_reads)


def test_e7_same_answers_and_comparable_io(benchmark):
    for students in (50, 200):
        sim_db, rel_db = build(students)
        sim_rows = normalize_sim(sim_db.query(SIM_QUERY).rows)
        rel_rows = sorted(relational_program(rel_db))
        assert sim_rows == rel_rows

        sim_io = cold_io(sim_db, lambda: sim_db.query(SIM_QUERY))["physical"]
        rel_db.cold_cache()
        rel_db.reset_io_stats()
        relational_program(rel_db)
        rel_io = rel_db.io_stats.physical_reads
        assert sim_io <= 3 * rel_io and rel_io <= 3 * max(sim_io, 1)
        attach(benchmark, **{f"sim_physical_{students}": sim_io,
                             f"relational_physical_{students}": rel_io})
    benchmark(lambda: None)


def test_e7_multi_eva_navigation(benchmark):
    """A 3-hop navigation (student -> courses -> teachers) where the
    relational side needs two junction-table joins."""
    sim_db, rel_db = build(80)
    sim_text = ("From student Retrieve soc-sec-no,"
                " employee-nbr of teachers of courses-enrolled")

    def relational_three_hop():
        enrollments = rel_db.hash_join(rel_db.scan("student"),
                                       "enrollment", "id", "student_id")
        taught = rel_db.hash_join(enrollments, "teaches",
                                  "course_id", "course_id", prefix="t_")
        teachers = rel_db.hash_join(taught, "instructor",
                                    "t_instructor_id", "id", prefix="i_")
        with_ssn = rel_db.hash_join(teachers, "person", "id", "id",
                                    prefix="p_")
        return [(r["p_ssn"], r["i_employee_nbr"]) for r in with_ssn]

    sim_rows = sorted(
        (ssn, emp) for ssn, emp in sim_db.query(sim_text).rows
        if not is_null(emp))
    rel_rows = sorted(relational_three_hop())
    assert sim_rows == rel_rows

    def operation():
        sim_db.cold_cache()
        return sim_db.query(sim_text)

    benchmark(operation)
    attach(benchmark, sim_joins=0, relational_joins=4)
