"""E10 — the DMSII evolution path (paper §5).

"A utility program allows any existing DMSII database to be viewed as a
SIM database...  a foreign-key based relationship between DMSII structures
can be defined as a SIM EVA."

Workload: a generated network-model database (record types + sets +
foreign-key fields) of configurable size; the benchmark measures the
import and verifies that SIM DML over the imported view returns the same
facts the raw network structures hold.
"""

import random

import pytest

from repro.interfaces import (
    NetworkDatabase,
    NetworkRecordType,
    NetworkSet,
    import_network_database,
)

from _harness import attach


def generate_network(customers: int, orders_per_customer: int,
                     seed: int = 29) -> NetworkDatabase:
    rng = random.Random(seed)
    net = NetworkDatabase("orders")
    net.add_record_type(NetworkRecordType(
        "region", {"region-id": "integer", "name": "string[20]"},
        key_field="region-id"))
    net.add_record_type(NetworkRecordType(
        "customer", {"cust-id": "integer", "name": "string[30]",
                     "region": "integer"},
        key_field="cust-id"))
    net.add_record_type(NetworkRecordType(
        "order", {"order-id": "integer", "total": "integer"},
        key_field="order-id"))
    net.add_set(NetworkSet("cust-orders", "customer", "order"))

    regions = [net.store("region", {"region-id": k + 1,
                                    "name": f"Region {k + 1}"})
               for k in range(5)]
    order_id = 0
    for index in range(customers):
        customer = net.store("customer", {
            "cust-id": index + 1,
            "name": f"Customer {index + 1}",
            "region": rng.randint(1, 5)})
        for _ in range(orders_per_customer):
            order_id += 1
            order = net.store("order", {"order-id": order_id,
                                        "total": rng.randint(10, 500)})
            net.connect("cust-orders", customer, order)
    return net


@pytest.mark.parametrize("customers", [20, 100])
def test_e10_import(benchmark, customers):
    net = generate_network(customers, orders_per_customer=4)

    def operation():
        return import_network_database(
            net, foreign_keys={("customer", "region"): "region"})

    db = benchmark(operation)
    assert db.store.class_count("customer") == customers
    assert db.store.class_count("order") == customers * 4
    attach(benchmark, customers=customers)


def test_e10_imported_view_answers_match_network(benchmark):
    net = generate_network(30, orders_per_customer=3)
    db = import_network_database(
        net, foreign_keys={("customer", "region"): "region"})

    # Orders per customer, from the network's raw memberships.
    expected = {}
    customer_records = net.records("customer")
    for owner_no, _ in net.memberships("cust-orders"):
        name = customer_records[owner_no]["name"]
        expected[name] = expected.get(name, 0) + 1

    rows = db.query("From customer Retrieve name,"
                    " count(cust-orders-members) of customer").rows
    assert dict(rows) == expected
    benchmark(lambda: None)


def test_e10_promoted_foreign_key_navigable(benchmark):
    net = generate_network(30, orders_per_customer=2)
    db = import_network_database(
        net, foreign_keys={("customer", "region"): "region"})

    def operation():
        return db.query("From customer Retrieve name, name of region"
                        " Order By name").rows

    rows = benchmark(operation)
    assert len(rows) == 30
    assert all(region.startswith("Region") for _, region in rows)


def test_e10_queries_with_quantifiers_on_imported_view(benchmark):
    net = generate_network(30, orders_per_customer=3)
    db = import_network_database(
        net, foreign_keys={("customer", "region"): "region"})
    value = benchmark(lambda: db.query(
        'From region Retrieve Table Distinct count(region-of) of region'
        ' Where name = "Region 1"').scalar())
    expected = sum(1 for record in net.records("customer")
                   if record["region"] == 1)
    assert value == expected
