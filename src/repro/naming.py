"""Identifier conventions shared by DDL, DML and the catalog.

SIM identifiers are case-insensitive and hyphenated (``Soc-Sec-No``,
``courses-enrolled``).  We canonicalize names to lower case with hyphens,
treating underscores as equivalent to hyphens, so Python host code can use
``courses_enrolled`` and DML text can use ``Courses-Enrolled``
interchangeably.
"""

from __future__ import annotations

import re

_IDENT_RE = re.compile(r"^[A-Za-z][A-Za-z0-9_-]*$")


def canon(name: str) -> str:
    """Canonical form of an identifier: lower case, underscores → hyphens."""
    return name.strip().lower().replace("_", "-")


def is_identifier(name: str) -> bool:
    """True when ``name`` is a legal SIM identifier."""
    return bool(_IDENT_RE.match(name.strip()))


def pythonic(name: str) -> str:
    """Python-attribute-friendly form: hyphens → underscores."""
    return canon(name).replace("-", "_")
