"""Shared lexer for SIM DDL and DML text.

SIM's concrete syntax (paper §4, §7) is case-insensitive and uses
hyphenated identifiers (``soc-sec-no``, ``courses-enrolled``).  The lexer
resolves the hyphen/minus ambiguity with one rule, documented in the
README: a ``-`` continues an identifier when it immediately follows an
identifier character and is immediately followed by a letter, with no
intervening whitespace.  Binary minus therefore needs surrounding
whitespace (``salary - bonus``) or a non-letter operand (``x-1`` is
``x - 1``).

Comments are ``(* ... *)`` as in the paper's §7 schema listing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.errors import DMLSyntaxError


# Token kinds
IDENT = "IDENT"
NUMBER = "NUMBER"      # integer literal
DECIMAL = "DECIMAL"    # fixed-point literal (has a '.')
STRING = "STRING"
SYMBOL = "SYMBOL"      # punctuation / operators
EOF = "EOF"

_SYMBOLS = (
    ":=", "..", "<=", ">=", "!=", "<>",
    "(", ")", "[", "]", "{", "}", ",", ";", ":",
    "=", "<", ">", "+", "-", "*", "/", ".",
)


@dataclass(frozen=True)
class Span:
    """A 1-based source position (line, column); (0, 0) means unknown.

    Spans originate here — every token carries its position — and are
    threaded through the DDL/DML parsers onto schema objects and AST
    nodes, so diagnostics (:mod:`repro.analysis`) can point back at the
    exact source location.
    """

    line: int = 0
    column: int = 0

    def __bool__(self) -> bool:
        return self.line > 0

    def offset(self, base: "Span") -> "Span":
        """This span, re-expressed in the coordinates of an enclosing
        source whose extract started at ``base`` (both 1-based)."""
        if not self or not base:
            return self
        if self.line == 1:
            return Span(base.line, base.column + self.column - 1)
        return Span(base.line + self.line - 1, self.column)

    def describe(self) -> str:
        return f"{self.line}:{self.column}" if self else "?:?"


@dataclass
class Token:
    """One lexical token with its source position (1-based)."""

    kind: str
    value: str
    line: int
    column: int

    @property
    def span(self) -> Span:
        return Span(self.line, self.column)

    def matches(self, kind: str, value: Optional[str] = None) -> bool:
        if self.kind != kind:
            return False
        if value is None:
            return True
        if kind == IDENT:
            return self.value.lower() == value.lower()
        return self.value == value

    def is_keyword(self, *words: str) -> bool:
        """Case-insensitive identifier match (SIM has no reserved words)."""
        return self.kind == IDENT and self.value.lower() in {
            w.lower() for w in words}

    def __repr__(self):
        return f"Token({self.kind}, {self.value!r}, {self.line}:{self.column})"


def tokenize(text: str,
             error: Callable[[str, int, int], Exception] = None) -> List[Token]:
    """Tokenize ``text`` into a list ending with an EOF token.

    ``error`` builds the exception to raise on lexical errors; it defaults
    to :class:`repro.errors.DMLSyntaxError`.
    """
    if error is None:
        error = DMLSyntaxError
    tokens: List[Token] = []
    i = 0
    line = 1
    line_start = 0
    n = len(text)

    def column(pos: int) -> int:
        return pos - line_start + 1

    while i < n:
        ch = text[i]

        # -- whitespace ----------------------------------------------------
        if ch in " \t\r":
            i += 1
            continue
        if ch == "\n":
            i += 1
            line += 1
            line_start = i
            continue

        # -- comments: (* ... *) -------------------------------------------
        if ch == "(" and i + 1 < n and text[i + 1] == "*":
            end = text.find("*)", i + 2)
            if end < 0:
                raise error("unterminated comment", line, column(i))
            for j in range(i, end):
                if text[j] == "\n":
                    line += 1
                    line_start = j + 1
            i = end + 2
            continue

        # -- identifiers -----------------------------------------------------
        if ch.isalpha():
            start = i
            i += 1
            while i < n:
                c = text[i]
                if c.isalnum() or c == "_":
                    i += 1
                elif (c == "-" and i + 1 < n and text[i + 1].isalpha()):
                    i += 1
                else:
                    break
            tokens.append(Token(IDENT, text[start:i], line, column(start)))
            continue

        # -- numbers ---------------------------------------------------------
        if ch.isdigit():
            start = i
            i += 1
            while i < n and text[i].isdigit():
                i += 1
            kind = NUMBER
            # '..' is the range operator; a single '.' + digit is a decimal.
            if (i < n and text[i] == "."
                    and not (i + 1 < n and text[i + 1] == ".")):
                if i + 1 < n and text[i + 1].isdigit():
                    kind = DECIMAL
                    i += 1
                    while i < n and text[i].isdigit():
                        i += 1
                else:
                    raise error("digit expected after decimal point",
                                line, column(i))
            tokens.append(Token(kind, text[start:i], line, column(start)))
            continue

        # -- strings -----------------------------------------------------------
        if ch == '"':
            start = i
            i += 1
            pieces = []
            while True:
                if i >= n:
                    raise error("unterminated string literal",
                                line, column(start))
                c = text[i]
                if c == '"':
                    # doubled quote is an escaped quote
                    if i + 1 < n and text[i + 1] == '"':
                        pieces.append('"')
                        i += 2
                        continue
                    i += 1
                    break
                if c == "\n":
                    raise error("newline in string literal",
                                line, column(start))
                pieces.append(c)
                i += 1
            tokens.append(Token(STRING, "".join(pieces), line, column(start)))
            continue

        # -- symbols ---------------------------------------------------------
        for symbol in _SYMBOLS:
            if text.startswith(symbol, i):
                tokens.append(Token(SYMBOL, symbol, line, column(i)))
                i += len(symbol)
                break
        else:
            raise error(f"unexpected character {ch!r}", line, column(i))

    tokens.append(Token(EOF, "", line, column(i)))
    return tokens


class TokenStream:
    """Cursor over a token list with the usual recursive-descent helpers."""

    def __init__(self, tokens: List[Token],
                 error: Callable[[str, int, int], Exception] = None):
        self._tokens = tokens
        self._pos = 0
        self._error = error or DMLSyntaxError

    @classmethod
    def from_text(cls, text: str,
                  error: Callable[[str, int, int], Exception] = None
                  ) -> "TokenStream":
        return cls(tokenize(text, error), error)

    @property
    def current(self) -> Token:
        return self._tokens[self._pos]

    def peek(self, offset: int = 1) -> Token:
        pos = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[pos]

    def at_end(self) -> bool:
        return self.current.kind == EOF

    def advance(self) -> Token:
        token = self.current
        if token.kind != EOF:
            self._pos += 1
        return token

    def save(self) -> int:
        return self._pos

    def restore(self, mark: int) -> None:
        self._pos = mark

    # -- matching -------------------------------------------------------------

    def check_symbol(self, *symbols: str) -> bool:
        return self.current.kind == SYMBOL and self.current.value in symbols

    def check_keyword(self, *words: str) -> bool:
        return self.current.is_keyword(*words)

    def accept_symbol(self, *symbols: str) -> Optional[Token]:
        if self.check_symbol(*symbols):
            return self.advance()
        return None

    def accept_keyword(self, *words: str) -> Optional[Token]:
        if self.check_keyword(*words):
            return self.advance()
        return None

    def expect_symbol(self, symbol: str) -> Token:
        if not self.check_symbol(symbol):
            self.fail(f"expected {symbol!r}, found {self._describe()}")
        return self.advance()

    def expect_keyword(self, word: str) -> Token:
        if not self.check_keyword(word):
            self.fail(f"expected {word.upper()!r}, found {self._describe()}")
        return self.advance()

    def expect_ident(self, what: str = "identifier") -> Token:
        if self.current.kind != IDENT:
            self.fail(f"expected {what}, found {self._describe()}")
        return self.advance()

    def expect_integer(self) -> int:
        if self.current.kind != NUMBER:
            self.fail(f"expected integer, found {self._describe()}")
        return int(self.advance().value)

    def _describe(self) -> str:
        token = self.current
        if token.kind == EOF:
            return "end of input"
        return f"{token.value!r}"

    def fail(self, message: str):
        token = self.current
        raise self._error(message, token.line, token.column)

    def fail_from(self, message: str, cause: BaseException):
        """Like :meth:`fail`, but keeps ``cause`` on the raised error's
        ``__cause__`` so the original diagnosis survives the translation
        into a position-annotated syntax error."""
        token = self.current
        raise self._error(message, token.line, token.column) from cause
