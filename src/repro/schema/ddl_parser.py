"""Parser for SIM DDL, covering the concrete syntax of the paper's §7.

Accepted statements::

    Type <name> = <type-spec> ;
    Class <name> ( <attribute> ; ... ) ;
    Subclass <name> of <super> [and <super>]... ( <attribute> ; ... ) ;
    Verify <name> on <class> assert <selection expression>
        else "<message>" ;
    Derive <name> on <class> as <expression> ;          -- paper §6
    View <name> of <class> [ where <selection expr> ] ;  -- paper §6

Attribute declarations::

    <name> : <type-spec> [options]                  -- DVA
    <name> : subrole ( <class>, ... ) [mv]          -- subrole attribute
    <name> : <class> [inverse is <name>] [options]  -- EVA

Options are ``unique``, ``required`` and ``mv [(max <n>] [, distinct)]``,
with commas between options optional (the paper itself uses both
``integer, unique, required`` and ``id-number unique required``).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import DDLSyntaxError, SchemaError
from repro.lexer import IDENT, STRING, SYMBOL, TokenStream, tokenize
from repro.naming import canon
from repro.schema.attribute import (
    AttributeOptions,
    DataValuedAttribute,
    EntityValuedAttribute,
    SubroleAttribute,
)
from repro.schema.klass import SimClass, VerifyConstraint
from repro.schema.schema import Schema
from repro.types.domain import (
    BooleanType,
    DataType,
    DateType,
    IntegerType,
    NumberType,
    RealType,
    StringType,
    SubroleType,
    SymbolicType,
    TimeType,
)

_OPTION_WORDS = {"unique", "required", "mv"}
_BUILTIN_TYPE_WORDS = {
    "integer", "number", "real", "string", "boolean", "date", "time"}


def parse_ddl(text: str, schema: Optional[Schema] = None,
              resolve: bool = True) -> Schema:
    """Parse DDL ``text`` into a :class:`Schema`.

    When ``schema`` is given, definitions are added to it (it must not be
    resolved yet); otherwise a fresh schema is created.  With ``resolve``
    (the default) the schema is resolved before being returned, so the
    result is immediately usable by a database.
    """
    parser = _DDLParser(text, schema or Schema())
    parsed = parser.parse()
    if resolve:
        parsed.resolve()
    return parsed


class _DDLParser:
    def __init__(self, text: str, schema: Schema):
        self.stream = TokenStream(tokenize(text, DDLSyntaxError), DDLSyntaxError)
        self.schema = schema

    def parse(self) -> Schema:
        while not self.stream.at_end():
            if self.stream.accept_keyword("type"):
                self._type_declaration()
            elif self.stream.accept_keyword("class"):
                self._class_declaration(is_base=True)
            elif self.stream.accept_keyword("subclass"):
                self._class_declaration(is_base=False)
            elif self.stream.accept_keyword("verify"):
                self._verify_declaration()
            elif self.stream.accept_keyword("derive"):
                self._derive_declaration()
            elif (self.stream.check_keyword("view")
                  and self.stream.peek().kind == IDENT):
                self.stream.advance()
                self._view_declaration()
            elif self.stream.accept_symbol(";"):
                continue
            else:
                self.stream.fail(
                    "expected TYPE, CLASS, SUBCLASS or VERIFY declaration")
        return self.schema

    # -- Declarations -----------------------------------------------------------

    def _type_declaration(self) -> None:
        name_token = self.stream.expect_ident("type name")
        name = name_token.value
        self.stream.expect_symbol("=")
        data_type = self._type_spec()
        self.stream.expect_symbol(";")
        self.schema.define_type(name, data_type)
        self.schema.type_spans[canon(name)] = name_token.span

    def _class_declaration(self, is_base: bool) -> None:
        name_token = self.stream.expect_ident("class name")
        name = name_token.value
        supers: List[str] = []
        if not is_base:
            self.stream.expect_keyword("of")
            supers.append(self.stream.expect_ident("superclass name").value)
            while self.stream.accept_keyword("and"):
                supers.append(self.stream.expect_ident("superclass name").value)
        sim_class = SimClass(name, supers)
        sim_class.span = name_token.span
        self.stream.expect_symbol("(")
        while not self.stream.check_symbol(")"):
            self._attribute(sim_class)
            # Attribute separator: ';' canonically; ',' tolerated (the
            # paper's own listing mixes them).
            while self.stream.accept_symbol(";") or self.stream.accept_symbol(","):
                pass
        self.stream.expect_symbol(")")
        self.stream.accept_symbol(";")
        self.schema.add_class(sim_class)

    def _verify_declaration(self) -> None:
        name_token = self.stream.expect_ident("constraint name")
        name = name_token.value
        self.stream.expect_keyword("on")
        class_name = self.stream.expect_ident("class name").value
        self.stream.expect_keyword("assert")
        assertion_span = self.stream.current.span
        assertion = self._capture_until_else()
        self.stream.expect_keyword("else")
        message_token = self.stream.advance()
        if message_token.kind != STRING:
            self.stream.fail("expected the ELSE message string")
        self.stream.accept_symbol(";")
        constraint = VerifyConstraint(name, class_name, assertion,
                                      message_token.value)
        constraint.span = name_token.span
        constraint.assertion_span = assertion_span
        self.schema.add_constraint(constraint)

    def _derive_declaration(self) -> None:
        name_token = self.stream.expect_ident("derived attribute name")
        name = name_token.value
        self.stream.expect_keyword("on")
        class_name = self.stream.expect_ident("class name").value
        self.stream.expect_keyword("as")
        expression = self._capture_until(";")
        self.stream.accept_symbol(";")
        derived = self.schema.define_derived(name, class_name, expression)
        derived.span = name_token.span

    def _view_declaration(self) -> None:
        name_token = self.stream.expect_ident("view name")
        name = name_token.value
        self.stream.expect_keyword("of")
        class_name = self.stream.expect_ident("class name").value
        where_text = None
        if self.stream.accept_keyword("where"):
            where_text = self._capture_until(";")
        self.stream.accept_symbol(";")
        view = self.schema.define_view(name, class_name, where_text)
        view.span = name_token.span

    def _capture_until(self, terminator: str) -> str:
        """Collect raw expression text up to an unnested terminator symbol
        (re-lexed later by the DML parser)."""
        pieces: List[str] = []
        depth = 0
        while True:
            token = self.stream.current
            if token.kind == SYMBOL and token.value == "(":
                depth += 1
            elif token.kind == SYMBOL and token.value == ")":
                depth -= 1
            elif (depth == 0 and token.kind == SYMBOL
                  and token.value == terminator):
                break
            elif token.kind == "EOF":
                break
            self.stream.advance()
            if token.kind == STRING:
                pieces.append('"' + token.value.replace('"', '""') + '"')
            else:
                pieces.append(token.value)
        if not pieces:
            self.stream.fail("expected an expression")
        return " ".join(pieces)

    def _capture_until_else(self) -> str:
        """Collect the raw assertion expression text up to the ELSE keyword.

        The expression is re-lexed later by the DML parser, so a
        token-joined reconstruction is sufficient.
        """
        pieces: List[str] = []
        depth = 0
        while True:
            token = self.stream.current
            if token.kind == SYMBOL and token.value == "(":
                depth += 1
            elif token.kind == SYMBOL and token.value == ")":
                depth -= 1
            elif depth == 0 and token.is_keyword("else"):
                break
            elif token.kind == "EOF":
                self.stream.fail("VERIFY assertion missing ELSE clause")
            self.stream.advance()
            if token.kind == STRING:
                pieces.append('"' + token.value.replace('"', '""') + '"')
            else:
                pieces.append(token.value)
        return " ".join(pieces)

    # -- Attributes -----------------------------------------------------------

    def _attribute(self, sim_class: SimClass) -> None:
        name_token = self.stream.expect_ident("attribute name")
        name = name_token.value
        self.stream.expect_symbol(":")
        head = self.stream.expect_ident("attribute type")
        word = head.value.lower()

        if word == "subrole":
            self.stream.expect_symbol("(")
            values = [self.stream.expect_ident("subclass name").value]
            while self.stream.accept_symbol(","):
                values.append(self.stream.expect_ident("subclass name").value)
            self.stream.expect_symbol(")")
            mv = bool(self.stream.accept_keyword("mv"))
            attribute = SubroleAttribute(name, SubroleType(values), mv=mv)
        elif word in _BUILTIN_TYPE_WORDS:
            data_type = self._builtin_type(word)
            options = self._options()
            attribute = DataValuedAttribute(name, data_type, options)
        elif canon(head.value) in self.schema.types:
            data_type = self.schema.types.lookup(head.value)
            options = self._options()
            attribute = DataValuedAttribute(name, data_type, options,
                                            type_name=head.value)
        else:
            # Otherwise it names a class (possibly forward-declared): an EVA.
            inverse_name = None
            if self.stream.check_keyword("inverse"):
                self.stream.advance()
                self.stream.expect_keyword("is")
                inverse_name = self.stream.expect_ident("inverse name").value
            options = self._options()
            attribute = EntityValuedAttribute(name, head.value, inverse_name,
                                              options)
        attribute.span = name_token.span
        sim_class.add_attribute(attribute)

    def _options(self) -> AttributeOptions:
        required = unique = mv = distinct = False
        max_cardinality: Optional[int] = None
        ordered_by: Optional[str] = None
        while True:
            # commas between options are optional
            mark = self.stream.save()
            if self.stream.accept_symbol(","):
                if not self.stream.check_keyword(*_OPTION_WORDS):
                    self.stream.restore(mark)
                    break
            if self.stream.accept_keyword("required"):
                required = True
            elif self.stream.accept_keyword("unique"):
                unique = True
            elif self.stream.accept_keyword("mv"):
                mv = True
                if self.stream.accept_symbol("("):
                    while True:
                        if self.stream.accept_keyword("distinct"):
                            distinct = True
                        elif self.stream.accept_keyword("max"):
                            max_cardinality = self.stream.expect_integer()
                        elif self.stream.accept_keyword("ordered"):
                            self.stream.expect_keyword("by")
                            ordered_by = self.stream.expect_ident(
                                "ordering attribute").value
                        else:
                            self.stream.fail(
                                "expected MAX, DISTINCT or ORDERED BY")
                        if not self.stream.accept_symbol(","):
                            break
                    self.stream.expect_symbol(")")
            else:
                break
        try:
            return AttributeOptions(required=required, unique=unique, mv=mv,
                                    distinct=distinct,
                                    max_cardinality=max_cardinality,
                                    ordered_by=ordered_by)
        except (SchemaError, ValueError) as exc:
            # Only domain errors become position-annotated syntax errors;
            # anything else (a genuine bug) must propagate untranslated.
            self.stream.fail_from(str(exc), exc)

    # -- Type specs --------------------------------------------------------------

    def _type_spec(self) -> DataType:
        head = self.stream.expect_ident("type")
        word = head.value.lower()
        if word == "symbolic":
            self.stream.expect_symbol("(")
            values = [self.stream.expect_ident("symbolic value").value]
            while self.stream.accept_symbol(","):
                values.append(self.stream.expect_ident("symbolic value").value)
            self.stream.expect_symbol(")")
            return SymbolicType(values)
        if word in _BUILTIN_TYPE_WORDS:
            return self._builtin_type(word)
        if canon(head.value) in self.schema.types:
            return self.schema.types.lookup(head.value)
        self.stream.fail(f"unknown type {head.value!r}")

    def _builtin_type(self, word: str) -> DataType:
        if word == "integer":
            if self.stream.accept_symbol("("):
                ranges = [self._integer_range()]
                while self.stream.accept_symbol(","):
                    ranges.append(self._integer_range())
                self.stream.expect_symbol(")")
                return IntegerType(ranges)
            return IntegerType()
        if word == "number":
            if self.stream.accept_symbol("["):
                precision = self.stream.expect_integer()
                scale = 0
                if self.stream.accept_symbol(","):
                    scale = self.stream.expect_integer()
                self.stream.expect_symbol("]")
                return NumberType(precision, scale)
            return NumberType()
        if word == "string":
            if self.stream.accept_symbol("["):
                length = self.stream.expect_integer()
                self.stream.expect_symbol("]")
                return StringType(length)
            return StringType()
        if word == "real":
            return RealType()
        if word == "boolean":
            return BooleanType()
        if word == "date":
            return DateType()
        if word == "time":
            return TimeType()
        self.stream.fail(f"unknown builtin type {word!r}")  # pragma: no cover

    def _integer_range(self) -> Tuple[int, int]:
        low = self._signed_integer()
        self.stream.expect_symbol("..")
        high = self._signed_integer()
        return (low, high)

    def _signed_integer(self) -> int:
        negative = bool(self.stream.accept_symbol("-"))
        value = self.stream.expect_integer()
        return -value if negative else value
