"""Classes (base classes and subclasses) and VERIFY constraints.

Paper §3.1: the primary unit of data encapsulation is the class.  A base
class is independent; a subclass is defined on one or more superclasses.
Interclass connections form a DAG whose edges are superclass→subclass
connections; the ancestors of any node contain at most one base class.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.errors import SchemaError
from repro.lexer import Span
from repro.naming import canon
from repro.schema.attribute import (
    Attribute,
    DataValuedAttribute,
    EntityValuedAttribute,
    SubroleAttribute,
    SurrogateAttribute,
)


class VerifyConstraint:
    """A class-level integrity assertion (paper §3.3, §7).

    ``Verify v1 on Student assert <selection expression> else "message"``

    The assertion text is any DML selection expression with the class as
    perspective; it is parsed when the schema is attached to a database
    (the DML parser needs a resolved schema).  Entities for which the
    assertion does not hold make the violating DML action fail with the
    ELSE message.
    """

    def __init__(self, name: str, class_name: str, assertion_text: str,
                 else_message: str):
        self.name = canon(name)
        self.class_name = canon(class_name)
        self.assertion_text = assertion_text.strip()
        self.else_message = else_message
        #: source positions (DDL parser): the declaration and the start of
        #: the assertion text, so assertion-relative spans can be offset
        #: back into schema-file coordinates
        self.span = Span()
        self.assertion_span = Span()

    def ddl(self) -> str:
        return (f"verify {self.name} on {self.class_name}\n"
                f"  assert {self.assertion_text}\n"
                f"  else \"{self.else_message}\";")

    def __repr__(self):
        return f"<VerifyConstraint {self.name} on {self.class_name}>"


class DerivedAttribute:
    """A derived (computed) attribute — paper §6's "derived attributes".

    ``Derive compensation on instructor as salary + bonus;``

    Readable wherever a single-valued DVA is; never stored, never
    assignable.  The expression is any DML value expression with the class
    as perspective, parsed when first used.
    """

    system_maintained = True
    is_eva = False
    is_subrole = False
    is_surrogate = False

    def __init__(self, name: str, class_name: str, expression_text: str):
        self.name = canon(name)
        self.class_name = canon(class_name)
        self.expression_text = expression_text.strip()
        self.span = Span()

    def ddl(self) -> str:
        return (f"derive {self.name} on {self.class_name} as "
                f"{self.expression_text};")

    def __repr__(self):
        return f"<DerivedAttribute {self.class_name}.{self.name}>"


class ViewDefinition:
    """A named subcollection view — paper §6's "view mechanism".

    ``View honor-roll of student where <selection expression>;``

    A view is usable as a perspective anywhere its class is; its extent is
    the class extent filtered by the predicate.  All attributes (and
    derived attributes) of the class are visible through the view.
    """

    def __init__(self, name: str, class_name: str,
                 where_text: Optional[str] = None):
        self.name = canon(name)
        self.class_name = canon(class_name)
        self.where_text = where_text.strip() if where_text else None
        self.span = Span()

    def ddl(self) -> str:
        text = f"view {self.name} of {self.class_name}"
        if self.where_text:
            text += f" where {self.where_text}"
        return text + ";"

    def __repr__(self):
        return f"<ViewDefinition {self.name} of {self.class_name}>"


class SimClass:
    """A SIM class: named collection of entities with immediate attributes.

    After :meth:`repro.schema.schema.Schema.resolve` runs, the derived
    fields (``base_class_name``, ``all_attributes``, ``subrole_attribute``,
    ``subclass_names``...) are populated.
    """

    def __init__(self, name: str, superclass_names: Sequence[str] = (),
                 attributes: Sequence[Attribute] = ()):
        self.name = canon(name)
        self.superclass_names: List[str] = [canon(s) for s in superclass_names]
        if len(set(self.superclass_names)) != len(self.superclass_names):
            raise SchemaError(f"duplicate superclass in {self.name}")
        #: source position of the declaration (set by the DDL parser)
        self.span = Span()
        self.immediate_attributes: Dict[str, Attribute] = {}
        for attribute in attributes:
            self.add_attribute(attribute)

        # --- Derived during resolution -------------------------------------
        #: name of the unique base-class ancestor (== self.name for a base class)
        self.base_class_name: Optional[str] = None
        #: all attributes visible on this class, immediate and inherited
        self.all_attributes: Dict[str, Attribute] = {}
        #: names of immediate subclasses
        self.subclass_names: List[str] = []
        #: the subrole attribute declared on this class, if any
        self.subrole_attribute: Optional[SubroleAttribute] = None
        #: the surrogate attribute (declared on the base class, inherited)
        self.surrogate_attribute: Optional[SurrogateAttribute] = None
        #: VERIFY constraints whose perspective is this class
        self.constraints: List[VerifyConstraint] = []
        #: depth in the hierarchy (base class = 0, longest path)
        self.level: int = 0

    # -- Construction -------------------------------------------------------

    @property
    def is_base(self) -> bool:
        return not self.superclass_names

    def add_attribute(self, attribute: Attribute) -> None:
        if attribute.name in self.immediate_attributes:
            raise SchemaError(
                f"attribute {attribute.name!r} declared twice in {self.name!r}")
        attribute.owner_name = self.name
        self.immediate_attributes[attribute.name] = attribute

    # -- Lookup (valid after resolution) -------------------------------------

    def attribute(self, name: str) -> Attribute:
        """Immediate or inherited attribute lookup (paper: interchangeable)."""
        key = canon(name)
        try:
            return self.all_attributes[key]
        except KeyError:
            raise SchemaError(
                f"class {self.name!r} has no attribute {name!r}") from None

    def has_attribute(self, name: str) -> bool:
        return canon(name) in self.all_attributes

    def evas(self) -> List[EntityValuedAttribute]:
        """All visible EVAs, immediate and inherited."""
        return [a for a in self.all_attributes.values() if a.is_eva]

    def immediate_evas(self) -> List[EntityValuedAttribute]:
        return [a for a in self.immediate_attributes.values() if a.is_eva]

    def dvas(self) -> List[DataValuedAttribute]:
        """All visible DVAs (excluding the surrogate), immediate and inherited."""
        return [a for a in self.all_attributes.values()
                if not a.is_eva and not a.is_surrogate]

    def ddl(self) -> str:
        """Render the class declaration in §7 DDL syntax."""
        keyword = "class" if self.is_base else "subclass"
        header = f"{keyword} {self.name}"
        if not self.is_base:
            header += " of " + " and ".join(self.superclass_names)
        body = ";\n  ".join(
            a.ddl() for a in self.immediate_attributes.values()
            if not (a.is_surrogate and not getattr(a, "user_defined", False))
            and not getattr(a, "synthesized_inverse", False)
        )
        return f"{header} (\n  {body} );"

    def __repr__(self):
        kind = "base" if self.is_base else f"subclass of {self.superclass_names}"
        return f"<SimClass {self.name} ({kind})>"
