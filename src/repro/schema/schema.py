"""The Schema object: classes, named types, constraints, and resolution.

A schema is built (programmatically or by the DDL parser), then *resolved*.
Resolution validates the generalization DAG, pairs every EVA with its
inverse (synthesizing unnamed inverses), checks subrole declarations,
plants surrogates on base classes, and computes the inherited attribute
set of every class.  A resolved schema is immutable by convention and is
what the Mapper, optimizer and engine consume.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import SchemaError
from repro.naming import canon
from repro.schema.attribute import (
    Attribute,
    AttributeOptions,
    EntityValuedAttribute,
    SubroleAttribute,
    SurrogateAttribute,
)
from repro.schema.graph import GeneralizationGraph
from repro.schema.klass import (
    DerivedAttribute,
    SimClass,
    VerifyConstraint,
    ViewDefinition,
)
from repro.types.domain import DataType, SubroleType, TypeRegistry


class Schema:
    """A complete SIM schema for one database."""

    def __init__(self, name: str = "schema"):
        self.name = canon(name)
        self.types = TypeRegistry()
        #: source positions of named-type declarations (DDL parser)
        self.type_spans: Dict[str, object] = {}
        self._classes: Dict[str, SimClass] = {}
        self.constraints: List[VerifyConstraint] = []
        self.graph = GeneralizationGraph()
        self._derived: Dict[tuple, DerivedAttribute] = {}
        self._views: Dict[str, ViewDefinition] = {}
        self._resolved = False

    # -- Construction ---------------------------------------------------------

    def define_type(self, name: str, data_type: DataType) -> DataType:
        """Declare a named type (``Type id-number = integer (...)``)."""
        self._mutable()
        self.types.define(name, data_type)
        return data_type

    def add_class(self, sim_class: SimClass) -> SimClass:
        self._mutable()
        if sim_class.name in self._classes:
            raise SchemaError(f"class {sim_class.name!r} declared twice")
        self._classes[sim_class.name] = sim_class
        return sim_class

    def add_constraint(self, constraint: VerifyConstraint) -> VerifyConstraint:
        self._mutable()
        self.constraints.append(constraint)
        return constraint

    def define_derived(self, name: str, class_name: str,
                       expression_text: str) -> DerivedAttribute:
        """Declare a derived attribute (paper §6)."""
        self._mutable()
        derived = DerivedAttribute(name, class_name, expression_text)
        key = (derived.class_name, derived.name)
        if key in self._derived:
            raise SchemaError(
                f"derived attribute {name!r} declared twice on "
                f"{class_name!r}")
        self._derived[key] = derived
        return derived

    def define_view(self, name: str, class_name: str,
                    where_text: Optional[str] = None) -> ViewDefinition:
        """Declare a subcollection view (paper §6)."""
        self._mutable()
        view = ViewDefinition(name, class_name, where_text)
        if view.name in self._views:
            raise SchemaError(f"view {name!r} declared twice")
        self._views[view.name] = view
        return view

    def _mutable(self):
        if self._resolved:
            raise SchemaError("schema already resolved; it is immutable")

    # -- Lookup ---------------------------------------------------------------

    @property
    def resolved(self) -> bool:
        return self._resolved

    def get_class(self, name: str) -> SimClass:
        try:
            return self._classes[canon(name)]
        except KeyError:
            raise SchemaError(f"unknown class {name!r}") from None

    def has_class(self, name: str) -> bool:
        return canon(name) in self._classes

    def classes(self) -> List[SimClass]:
        return list(self._classes.values())

    def class_names(self) -> List[str]:
        return list(self._classes)

    def base_classes(self) -> List[SimClass]:
        return [c for c in self._classes.values() if c.is_base]

    def find_derived(self, class_name: str,
                     attr_name: str) -> Optional[DerivedAttribute]:
        """Derived attribute visible on a class (declared there or
        inherited from an ancestor)."""
        class_name = canon(class_name)
        attr_name = canon(attr_name)
        hit = self._derived.get((class_name, attr_name))
        if hit is not None:
            return hit
        for ancestor in self.graph.ancestors(class_name):
            hit = self._derived.get((ancestor, attr_name))
            if hit is not None:
                return hit
        return None

    def derived_attributes(self) -> List[DerivedAttribute]:
        return list(self._derived.values())

    def view(self, name: str) -> Optional[ViewDefinition]:
        return self._views.get(canon(name))

    def views(self) -> List[ViewDefinition]:
        return list(self._views.values())

    def classes_with_attribute(self, attr_name: str) -> List[SimClass]:
        """Classes on which ``attr_name`` is visible (used by shorthand
        qualification completion and perspective inference)."""
        key = canon(attr_name)
        return [c for c in self._classes.values() if key in c.all_attributes]

    def statistics(self) -> Dict[str, int]:
        """Schema-shape statistics in the form the paper reports for ADDS
        (§6): base classes, subclasses, EVA–inverse pairs, DVAs, max depth."""
        self._require_resolved()
        eva_pairs = set()
        dva_count = 0
        for c in self._classes.values():
            for a in c.immediate_attributes.values():
                if a.is_eva:
                    pair = frozenset({(c.name, a.name),
                                      (a.inverse.owner_name, a.inverse.name)})
                    eva_pairs.add(pair)
                elif not a.is_surrogate and not a.is_subrole:
                    dva_count += 1
        depth = max((self.graph.hierarchy_depth(b.name)
                     for b in self.base_classes()), default=0)
        return {
            "base_classes": sum(1 for c in self._classes.values() if c.is_base),
            "subclasses": sum(1 for c in self._classes.values() if not c.is_base),
            "eva_inverse_pairs": len(eva_pairs),
            "dvas": dva_count,
            "max_hierarchy_depth": depth,
        }

    def _require_resolved(self):
        if not self._resolved:
            raise SchemaError("schema not resolved yet")

    # -- Resolution -------------------------------------------------------------

    def resolve(self, synthesize_subroles: bool = True) -> "Schema":
        """Validate and derive; returns self for chaining.

        ``synthesize_subroles`` — when a class with subclasses lacks the
        subrole attribute the paper requires (§3.2), synthesize one named
        ``<class>-roles`` instead of rejecting the schema.  Declared subrole
        attributes are always validated against the immediate subclass set.
        """
        self._mutable()
        for sim_class in self._classes.values():
            self.graph.add_class(sim_class.name, sim_class.superclass_names)
        self.graph.finalize()

        self._pair_inverses()
        self._resolve_subroles(synthesize_subroles)
        self._plant_surrogates()
        self._compute_inherited_attributes()
        self._attach_constraints()
        self._validate_derived_and_views()

        for sim_class in self._classes.values():
            sim_class.base_class_name = self.graph.base_class_of(sim_class.name)
            sim_class.subclass_names = self.graph.subclasses(sim_class.name)
            sim_class.level = self.graph.level(sim_class.name)

        self._resolved = True
        return self

    def _pair_inverses(self) -> None:
        """Pair every EVA with its inverse; synthesize missing inverses.

        Paper §3.2: "SIM automatically maintains the inverse of every
        declared EVA and guarantees that an EVA and its inverse will stay
        synchronized at all times.  An inverse can also be explicitly named
        by the user."
        """
        for sim_class in list(self._classes.values()):
            for eva in list(sim_class.immediate_attributes.values()):
                if not eva.is_eva or eva.inverse is not None:
                    continue
                if not self.has_class(eva.range_class_name):
                    raise SchemaError(
                        f"EVA {sim_class.name}.{eva.name} names unknown range "
                        f"class {eva.range_class_name!r}")
                range_class = self.get_class(eva.range_class_name)

                if eva.inverse_name is None:
                    self._synthesize_inverse(sim_class, eva, range_class)
                    continue

                # Reflexive self-inverse: spouse: person inverse is spouse.
                if (eva.inverse_name == eva.name
                        and range_class.name == sim_class.name):
                    eva.inverse = eva
                    continue

                declared = range_class.immediate_attributes.get(eva.inverse_name)
                if declared is None:
                    # One-sided declaration: materialize the named inverse.
                    self._synthesize_inverse(sim_class, eva, range_class,
                                             name=eva.inverse_name)
                    continue
                if not declared.is_eva:
                    raise SchemaError(
                        f"inverse of {sim_class.name}.{eva.name} is "
                        f"{range_class.name}.{declared.name}, which is not an EVA")
                if declared.range_class_name != sim_class.name:
                    raise SchemaError(
                        f"inverse pair {sim_class.name}.{eva.name} / "
                        f"{range_class.name}.{declared.name} disagree on range "
                        f"({declared.range_class_name!r} != {sim_class.name!r})")
                if (declared.inverse_name is not None
                        and declared.inverse_name != eva.name):
                    raise SchemaError(
                        f"{range_class.name}.{declared.name} names inverse "
                        f"{declared.inverse_name!r}, not {eva.name!r}")
                eva.inverse = declared
                declared.inverse = eva

    def _synthesize_inverse(self, owner: SimClass, eva: EntityValuedAttribute,
                            range_class: SimClass,
                            name: Optional[str] = None) -> None:
        inverse_name = name or f"inverse-of-{eva.name}"
        if inverse_name in range_class.immediate_attributes:
            raise SchemaError(
                f"cannot synthesize inverse {inverse_name!r} on "
                f"{range_class.name!r}: name already in use")
        inverse = EntityValuedAttribute(
            inverse_name, owner.name, inverse_name=eva.name,
            options=AttributeOptions(mv=True))
        inverse.synthesized_inverse = name is None
        range_class.add_attribute(inverse)
        eva.inverse_name = inverse_name
        eva.inverse = inverse
        inverse.inverse = eva

    def _resolve_subroles(self, synthesize: bool) -> None:
        for sim_class in self._classes.values():
            immediate_subs = sorted(self.graph.subclasses(sim_class.name))
            declared = [a for a in sim_class.immediate_attributes.values()
                        if a.is_subrole]
            if len(declared) > 1:
                raise SchemaError(
                    f"class {sim_class.name!r} declares more than one subrole "
                    f"attribute")
            if declared:
                subrole = declared[0]
                value_set = sorted(canon(n) for n in subrole.subclass_names)
                if value_set != immediate_subs:
                    raise SchemaError(
                        f"subrole {sim_class.name}.{subrole.name} lists "
                        f"{value_set}, but immediate subclasses are "
                        f"{immediate_subs}")
                sim_class.subrole_attribute = subrole
            elif immediate_subs:
                if not synthesize:
                    raise SchemaError(
                        f"class {sim_class.name!r} has subclasses but no "
                        f"subrole attribute (paper §3.2 requires one)")
                subrole = SubroleAttribute(
                    f"{sim_class.name}-roles", SubroleType(immediate_subs))
                sim_class.add_attribute(subrole)
                sim_class.subrole_attribute = subrole

    def _plant_surrogates(self) -> None:
        for sim_class in self._classes.values():
            if sim_class.is_base:
                existing = [a for a in sim_class.immediate_attributes.values()
                            if a.is_surrogate]
                if not existing:
                    sim_class.add_attribute(SurrogateAttribute())

    def _compute_inherited_attributes(self) -> None:
        for name in self.graph.topological_order():
            sim_class = self._classes[name]
            merged: Dict[str, Attribute] = {}
            for super_name in sim_class.superclass_names:
                for attr_name, attr in self._classes[super_name].all_attributes.items():
                    present = merged.get(attr_name)
                    if present is not None and present is not attr:
                        raise SchemaError(
                            f"class {name!r} inherits conflicting attributes "
                            f"named {attr_name!r} from multiple superclasses")
                    merged[attr_name] = attr
            for attr_name, attr in sim_class.immediate_attributes.items():
                if attr_name in merged:
                    raise SchemaError(
                        f"attribute {attr_name!r} of class {name!r} clashes "
                        f"with an inherited attribute")
                merged[attr_name] = attr
            sim_class.all_attributes = merged
            for attr in merged.values():
                if attr.is_surrogate:
                    sim_class.surrogate_attribute = attr

    def _attach_constraints(self) -> None:
        for constraint in self.constraints:
            self.get_class(constraint.class_name).constraints.append(constraint)

    def _validate_derived_and_views(self) -> None:
        for (class_name, attr_name), derived in self._derived.items():
            sim_class = self.get_class(class_name)
            if sim_class.has_attribute(attr_name):
                raise SchemaError(
                    f"derived attribute {attr_name!r} shadows a stored "
                    f"attribute of {class_name!r}")
        for view in self._views.values():
            if self.has_class(view.name):
                raise SchemaError(
                    f"view {view.name!r} collides with a class name")
            self.get_class(view.class_name)
        # EVA ordering attributes must exist on the range class.
        for sim_class in self._classes.values():
            for eva in sim_class.immediate_evas():
                order_attr = eva.options.ordered_by
                if order_attr is None:
                    continue
                range_class = self.get_class(eva.range_class_name)
                if not range_class.has_attribute(order_attr):
                    raise SchemaError(
                        f"EVA {sim_class.name}.{eva.name} is ORDERED BY "
                        f"{order_attr!r}, which {eva.range_class_name!r} "
                        f"does not have")

    # -- Rendering ---------------------------------------------------------------

    def ddl(self) -> str:
        """Render the whole schema back to §7-style DDL text."""
        parts = []
        for type_name in self.types.names():
            parts.append(f"type {type_name} = {self.types.lookup(type_name).ddl()};")
        for sim_class in self._classes.values():
            parts.append(sim_class.ddl())
            for constraint in sim_class.constraints:
                parts.append(constraint.ddl())
        for derived in self._derived.values():
            parts.append(derived.ddl())
        for view in self._views.values():
            parts.append(view.ddl())
        return "\n\n".join(parts)

    def __repr__(self):
        state = "resolved" if self._resolved else "unresolved"
        return f"<Schema {self.name} ({len(self._classes)} classes, {state})>"
