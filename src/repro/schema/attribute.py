"""Attributes: DVAs, EVAs, subroles, surrogates, and attribute options.

Paper §3.2: a DVA associates each entity with a value (or multiset of
values) from a value domain; an EVA relates entities to entities of a range
class and always has a system-maintained inverse.  §3.2.1 defines the
options REQUIRED, UNIQUE, MV, DISTINCT and MAX; combined on an EVA and its
inverse they express 1:1, 1:many and many:many relationships with partial
or total dependency and bounded cardinality.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import SchemaError
from repro.lexer import Span
from repro.naming import canon
from repro.types.domain import DataType, SubroleType, SurrogateType


@dataclass(frozen=True)
class AttributeOptions:
    """The option set from paper §3.2.1.

    ``required`` — value may not be null.
    ``unique`` — no two entities of the class share a non-null value.
    ``mv`` — multi-valued; by default attributes are single-valued.
    ``distinct`` — an MV attribute holds a set rather than a multiset.
    ``max_cardinality`` — upper bound on the number of values of an MV
    attribute (None = unbounded, the default).
    """

    required: bool = False
    unique: bool = False
    mv: bool = False
    distinct: bool = False
    max_cardinality: Optional[int] = None
    #: system-maintained ordering (paper §6 future work): for an MV EVA,
    #: the name of a range-class DVA whose value orders the targets
    ordered_by: Optional[str] = None

    def __post_init__(self):
        if self.distinct and not self.mv:
            raise SchemaError("DISTINCT applies only to multi-valued attributes")
        if self.max_cardinality is not None:
            if not self.mv:
                raise SchemaError("MAX applies only to multi-valued attributes")
            if self.max_cardinality <= 0:
                raise SchemaError(f"MAX must be positive, got {self.max_cardinality}")
        if self.unique and self.mv:
            # The paper leaves UNIQUE+MV undefined; we reject the combination
            # to keep uniqueness enforcement well-defined.
            raise SchemaError("UNIQUE is not supported on multi-valued attributes")
        if self.ordered_by is not None:
            if not self.mv:
                raise SchemaError("ORDERED BY applies only to multi-valued "
                                  "attributes")
            object.__setattr__(self, "ordered_by", canon(self.ordered_by))

    def ddl(self) -> str:
        """Render the options in DDL order (bare options then MV parenthetical)."""
        words = []
        if self.unique:
            words.append("unique")
        if self.required:
            words.append("required")
        if self.mv:
            inner = []
            if self.max_cardinality is not None:
                inner.append(f"max {self.max_cardinality}")
            if self.distinct:
                inner.append("distinct")
            if self.ordered_by is not None:
                inner.append(f"ordered by {self.ordered_by}")
            words.append("mv" + (f" ({', '.join(inner)})" if inner else ""))
        return " ".join(words)


class Attribute:
    """Base class for attributes.  Immutable once the schema is resolved.

    ``owner`` (the class the attribute is immediately declared in) is filled
    in during schema resolution, as is any derived metadata.
    """

    is_eva = False
    is_subrole = False
    is_surrogate = False
    system_maintained = False

    def __init__(self, name: str, options: Optional[AttributeOptions] = None):
        self.name = canon(name)
        self.options = options or AttributeOptions()
        self.owner_name: Optional[str] = None  # set during resolution
        #: source position of the declaration (set by the DDL parser;
        #: stays falsy for programmatically built schemas)
        self.span = Span()

    @property
    def single_valued(self) -> bool:
        return not self.options.mv

    @property
    def multi_valued(self) -> bool:
        return self.options.mv

    def ddl(self) -> str:
        raise NotImplementedError

    def __repr__(self):
        owner = f"{self.owner_name}." if self.owner_name else ""
        return f"<{type(self).__name__} {owner}{self.name}>"


class DataValuedAttribute(Attribute):
    """A DVA: property of an entity drawn from a value domain (paper §3.2)."""

    def __init__(self, name: str, data_type: DataType,
                 options: Optional[AttributeOptions] = None,
                 type_name: Optional[str] = None):
        super().__init__(name, options)
        self.data_type = data_type
        #: name of the named type used in DDL, when one was used
        self.type_name = canon(type_name) if type_name else None

    def ddl(self) -> str:
        type_text = self.type_name if self.type_name else self.data_type.ddl()
        opts = self.options.ddl()
        return f"{self.name}: {type_text}" + (f" {opts}" if opts else "")


class EntityValuedAttribute(Attribute):
    """An EVA: binary relationship from its owner class to a range class.

    ``inverse_name`` names the system-maintained inverse EVA on the range
    class.  When the user does not name an inverse in DDL, schema resolution
    synthesizes one (``inverse-of-<name>``), so the invariant "every EVA has
    an inverse and they stay synchronized" (paper §3.2) holds universally.
    """

    is_eva = True

    def __init__(self, name: str, range_class_name: str,
                 inverse_name: Optional[str] = None,
                 options: Optional[AttributeOptions] = None):
        super().__init__(name, options)
        self.range_class_name = canon(range_class_name)
        self.inverse_name = canon(inverse_name) if inverse_name else None
        #: True for inverses the system synthesized rather than the user named
        self.synthesized_inverse = False
        #: filled in by resolution: the EVA object on the range class
        self.inverse: Optional["EntityValuedAttribute"] = None

    def relationship_kind(self) -> str:
        """'1:1', '1:many', 'many:1' or 'many:many', from both sides' MV flags."""
        assert self.inverse is not None, "schema not resolved"
        mine = "many" if self.multi_valued else "1"
        theirs = "many" if self.inverse.multi_valued else "1"
        # Read from the owner's point of view: ADVISOR (sv) with MV inverse
        # ADVISEES is many:1 — many students relate to one instructor.
        return f"{theirs}:{mine}"

    def ddl(self) -> str:
        text = f"{self.name}: {self.range_class_name}"
        if self.inverse_name:
            text += f" inverse is {self.inverse_name}"
        opts = self.options.ddl()
        return text + (f" {opts}" if opts else "")


class SubroleAttribute(DataValuedAttribute):
    """A subrole attribute (paper §3.2): system-maintained, read-only.

    Every class that has subclasses must declare one; its value set is the
    names of the class's *immediate* subclasses and its value for an entity
    is the set of roles the entity holds.  Declared MV here because an
    entity can hold several immediate roles at once (e.g. a PERSON who is
    both STUDENT and INSTRUCTOR).
    """

    is_subrole = True
    system_maintained = True

    def __init__(self, name: str, subrole_type: SubroleType, mv: bool = True):
        options = AttributeOptions(mv=mv, distinct=mv)
        super().__init__(name, subrole_type, options)

    @property
    def subclass_names(self):
        return self.data_type.subclass_names

    def ddl(self) -> str:
        return (f"{self.name}: {self.data_type.ddl()}"
                + (" mv" if self.options.mv else ""))


class SurrogateAttribute(DataValuedAttribute):
    """The system-maintained surrogate of a base class (paper §3.1).

    Unique, non-null, immutable; inherited by every subclass in the
    hierarchy.  By default the system generates values; a user-declared
    UNIQUE REQUIRED attribute may be designated as the surrogate instead
    (§5.2), which we model with ``user_defined=True``.
    """

    is_surrogate = True
    system_maintained = True

    def __init__(self, name: str = "surrogate", user_defined: bool = False):
        options = AttributeOptions(required=True, unique=True)
        super().__init__(name, SurrogateType(), options)
        self.user_defined = user_defined

    def ddl(self) -> str:
        return f"{self.name}: surrogate unique required"
