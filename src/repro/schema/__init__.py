"""Schema definition: classes, attributes, the generalization DAG, VERIFY.

This package implements §3 of the paper: base classes and subclasses, DVAs
and EVAs with options and inverses, subroles, surrogates and integrity
assertions, plus the DDL parser for the concrete syntax used in §7.
"""

from repro.schema.attribute import (
    AttributeOptions,
    Attribute,
    DataValuedAttribute,
    EntityValuedAttribute,
    SubroleAttribute,
    SurrogateAttribute,
)
from repro.schema.klass import SimClass, VerifyConstraint
from repro.schema.graph import GeneralizationGraph
from repro.schema.schema import Schema
from repro.schema.ddl_parser import parse_ddl

__all__ = [
    "AttributeOptions",
    "Attribute",
    "DataValuedAttribute",
    "EntityValuedAttribute",
    "SubroleAttribute",
    "SurrogateAttribute",
    "SimClass",
    "VerifyConstraint",
    "GeneralizationGraph",
    "Schema",
    "parse_ddl",
]
