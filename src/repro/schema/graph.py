"""The generalization graph: DAG validation and traversal.

Paper §3.1: "Interclass connections are usually represented as a directed
graph whose nodes are the classes and whose edges denote
superclass-to-subclass connections.  SIM requires that this graph be
acyclic and the set of ancestors of any node contain at most one base
class."
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set

from repro.errors import SchemaError
from repro.naming import canon


class GeneralizationGraph:
    """Directed acyclic graph of classes; edges run superclass → subclass."""

    def __init__(self):
        self._supers: Dict[str, List[str]] = {}
        self._subs: Dict[str, List[str]] = {}

    def add_class(self, name: str, superclass_names: Sequence[str]) -> None:
        key = canon(name)
        if key in self._supers:
            raise SchemaError(f"class {name!r} declared twice")
        self._supers[key] = [canon(s) for s in superclass_names]
        self._subs.setdefault(key, [])

    def finalize(self) -> None:
        """Wire subclass edges and validate the DAG invariants."""
        for name, supers in self._supers.items():
            for sup in supers:
                if sup not in self._supers:
                    raise SchemaError(
                        f"class {name!r} names unknown superclass {sup!r}")
                if sup == name:
                    raise SchemaError(f"class {name!r} is its own superclass")
                self._subs[sup].append(name)
        self._check_acyclic()
        self._check_single_base_ancestor()

    # -- Validation -----------------------------------------------------------

    def _check_acyclic(self) -> None:
        # Kahn's algorithm; anything left over sits on a cycle.
        indegree = {n: len(s) for n, s in self._supers.items()}
        frontier = [n for n, d in indegree.items() if d == 0]
        seen = 0
        while frontier:
            node = frontier.pop()
            seen += 1
            for sub in self._subs[node]:
                indegree[sub] -= 1
                if indegree[sub] == 0:
                    frontier.append(sub)
        if seen != len(self._supers):
            cyclic = sorted(n for n, d in indegree.items() if d > 0)
            raise SchemaError(f"generalization graph has a cycle through {cyclic}")

    def _check_single_base_ancestor(self) -> None:
        for name in self._supers:
            bases = {a for a in self.ancestors(name) if not self._supers[a]}
            if not self._supers[name]:
                bases.add(name)
            if len(bases) > 1:
                raise SchemaError(
                    f"class {name!r} has more than one base-class ancestor: "
                    f"{sorted(bases)}")

    # -- Traversal --------------------------------------------------------------

    def classes(self) -> List[str]:
        return list(self._supers)

    def superclasses(self, name: str) -> List[str]:
        return list(self._supers[canon(name)])

    def subclasses(self, name: str) -> List[str]:
        return list(self._subs[canon(name)])

    def ancestors(self, name: str) -> List[str]:
        """All proper ancestors, deterministic order (BFS, declaration order)."""
        result: List[str] = []
        seen: Set[str] = set()
        queue = list(self._supers[canon(name)])
        while queue:
            node = queue.pop(0)
            if node in seen:
                continue
            seen.add(node)
            result.append(node)
            queue.extend(self._supers[node])
        return result

    def descendants(self, name: str) -> List[str]:
        """All proper descendants, deterministic order (BFS)."""
        result: List[str] = []
        seen: Set[str] = set()
        queue = list(self._subs[canon(name)])
        while queue:
            node = queue.pop(0)
            if node in seen:
                continue
            seen.add(node)
            result.append(node)
            queue.extend(self._subs[node])
        return result

    def base_class_of(self, name: str) -> str:
        """The unique base-class ancestor of ``name`` (itself if base)."""
        key = canon(name)
        if not self._supers[key]:
            return key
        for ancestor in self.ancestors(key):
            if not self._supers[ancestor]:
                return ancestor
        raise SchemaError(f"class {name!r} has no base-class ancestor")

    def is_ancestor(self, ancestor: str, descendant: str) -> bool:
        ancestor = canon(ancestor)
        descendant = canon(descendant)
        return ancestor == descendant or ancestor in self.ancestors(descendant)

    def same_hierarchy(self, left: str, right: str) -> bool:
        """True when the classes share their base class (role conversion legal)."""
        return self.base_class_of(left) == self.base_class_of(right)

    def level(self, name: str) -> int:
        """Longest superclass-path length from the base class (base = 0)."""
        supers = self._supers[canon(name)]
        if not supers:
            return 0
        return 1 + max(self.level(s) for s in supers)

    def hierarchy_depth(self, base_name: str) -> int:
        """Levels of generalization under a base class, counting the base as 1."""
        base = canon(base_name)
        depth = 1
        for d in self.descendants(base):
            depth = max(depth, self.level(d) + 1)
        return depth

    def topological_order(self) -> List[str]:
        """Superclasses before subclasses; stable w.r.t. declaration order."""
        indegree = {n: len(s) for n, s in self._supers.items()}
        order: List[str] = []
        frontier = [n for n in self._supers if indegree[n] == 0]
        while frontier:
            node = frontier.pop(0)
            order.append(node)
            for sub in self._subs[node]:
                indegree[sub] -= 1
                if indegree[sub] == 0:
                    frontier.append(sub)
        return order

    def is_tree_hierarchy(self, base_name: str) -> bool:
        """True when every descendant of ``base_name`` has exactly one superclass.

        §5.2 maps tree-shaped hierarchies into one storage unit with
        variable-format records; multiple-inheritance subclasses get their
        own unit.
        """
        return all(len(self._supers[d]) == 1
                   for d in self.descendants(canon(base_name)))

    def insertion_path(self, from_class: str, to_class: str) -> List[str]:
        """Classes whose roles must be added when extending ``from_class``
        down to ``to_class`` — every ancestor of ``to_class`` strictly below
        ``from_class``, plus ``to_class`` itself, superclasses first.

        Implements the INSERT...FROM rule (paper §4.8): "all superclass
        roles of <class name1> up to but not including <class name2> will be
        automatically inserted as needed."
        """
        from_key, to_key = canon(from_class), canon(to_class)
        if not self.is_ancestor(from_key, to_key):
            raise SchemaError(
                f"{from_class!r} is not an ancestor of {to_class!r}")
        # Exclude from_class and everything above it; keep every other
        # ancestor (e.g. INSERT teaching-assistant FROM student still adds
        # the INSTRUCTOR role) plus to_class itself.
        excluded = {from_key, *self.ancestors(from_key)}
        needed = [a for a in self.ancestors(to_key) if a not in excluded]
        needed.append(to_key)
        order = {name: i for i, name in enumerate(self.topological_order())}
        return sorted(set(needed), key=lambda n: order[n])
