"""Lowering the labelled query tree into a physical operator DAG.

The optimizer's :class:`~repro.optimizer.plan.Plan` carries *logical*
decisions — root access paths and loop order.  This module turns those
plus the §4.5 TYPE labels into the executable pipeline of
:mod:`repro.engine.operators`:

* every TYPE 1 / TYPE 3 node of the enumeration spine (planned DF order)
  becomes a :class:`~repro.engine.operators.Scan` (roots) or a
  :class:`~repro.engine.operators.EVATraverse` /
  :class:`~repro.engine.operators.OuterTraverse` (inner nodes);
* the WHERE clause lowers to a :class:`~repro.engine.operators.Semi`
  over the main-scope TYPE 2 subtrees when they exist, to a
  :class:`~repro.engine.operators.Semi` / ``AntiSemi`` comparison
  semijoin for top-level SOME/NO quantifiers, and to a
  :class:`~repro.engine.operators.Filter` otherwise;
* aggregates, projection, the §5.1 restore sort, Order By and Distinct
  complete the chain.

The slot layout (node id -> row index) assigns one slot per spine node
in planned DF order plus one per precomputed aggregate expression.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.dml.ast import Aggregate as AggregateExpr
from repro.dml.ast import Binary, Literal, Path, Quantified, \
    RetrieveQuery, Unary
from repro.dml.query_tree import TYPE2, TYPE3, QTNode, QueryTree
from repro.engine import operators as ops


class PhysicalPlan:
    """A lowered operator pipeline plus the slot layout its rows use."""

    def __init__(self, root: ops.Operator, slots: Dict[int, int],
                 width: int, spine: List[QTNode],
                 exists_nodes: List[QTNode], plan=None):
        self.root = root                  # sink operator
        self.slots = slots                # node id -> slot index
        self.width = width                # row width incl. aggregate slots
        self.spine = spine                # enumerated nodes, planned order
        self.exists_nodes = exists_nodes  # off-spine TYPE 2 probe nodes
        self.plan = plan

    @property
    def operators(self) -> List[ops.Operator]:
        """The pipeline, innermost (leaf) first."""
        return self.root.chain()

    def operator_records(self) -> List[Dict]:
        """Per-operator EXPLAIN ANALYZE records, pipeline order."""
        estimates = getattr(self.plan, "node_estimates", None) or {}
        records = []
        for operator in self.operators:
            node = operator.node
            record = {
                "op": operator.name,
                "detail": operator.detail(),
                "label": (f"TYPE {node.label}"
                          if node is not None and node.label else None),
                "batches": operator.batches,
                "rows_in": operator.rows_in,
                "rows_out": operator.rows_out,
                "est_rows": (estimates.get(node.id)
                             if node is not None else None),
            }
            workers = getattr(operator, "workers", None)
            if workers is None:
                workers = getattr(operator, "workers_used", None) or None
            if workers is not None:
                record["workers"] = workers
                morsels = getattr(operator, "morsels", None)
                if morsels is not None:
                    record["morsels"] = morsels
            records.append(record)
        return records

    def describe(self) -> str:
        lines = ["physical plan:"]
        for operator in self.operators:
            lines.append(f"  {operator.describe()}")
        return "\n".join(lines)


def exists_subtrees(loop_nodes: List[QTNode]) -> List[QTNode]:
    """All TYPE 2 existential subtree nodes below the loop variables, in
    DF order — the probe set of the main-scope :class:`Semi`."""
    exists_nodes: List[QTNode] = []

    def collect(candidate: QTNode) -> None:
        exists_nodes.append(candidate)
        for child in candidate.children.values():
            collect(child)

    for node in loop_nodes:
        for child in node.children.values():
            if child.label == TYPE2:
                collect(child)
    return exists_nodes


def _quantifier_comparison(where):
    """``(quantifier, scope nodes, (op, left, argument))`` when the WHERE
    clause is exactly a top-level SOME/NO quantified comparison whose
    scope actually enumerates something; None otherwise."""
    if not isinstance(where, Binary) or where.op not in ops._COMPARISON_OPS:
        return None
    quantified = where.right
    if not isinstance(quantified, Quantified):
        return None
    if quantified.quantifier not in ("some", "no"):
        return None
    if not quantified.scope_nodes:
        return None
    return (quantified.quantifier, list(quantified.scope_nodes),
            (where.op, where.left, quantified.argument))


def _pushdown_slot(where, slots):
    """The highest spine slot a plain Filter predicate reads, or None
    when the predicate must wait for the complete row.

    Conservative walk: only Path / Literal / Binary / Unary expressions
    qualify, and every path must resolve (through its value node's
    parent chain) to an enumerated spine slot.  A qualifying predicate's
    truth value depends only on slots bound at that depth, so filtering
    there prunes rows *before* the remaining fan-out without changing
    the §4.5 result (the selection is re-evaluated against the same
    bindings either way).
    """
    highest = -1
    stack = [where]
    while stack:
        expression = stack.pop()
        if isinstance(expression, Literal):
            continue
        if isinstance(expression, Binary):
            stack.append(expression.left)
            stack.append(expression.right)
            continue
        if isinstance(expression, Unary):
            stack.append(expression.operand)
            continue
        if isinstance(expression, Path):
            node = expression.value_node
            while node is not None and node.id not in slots:
                node = node.parent
            if node is None:
                return None
            highest = max(highest, slots[node.id])
            continue
        return None          # quantifier, aggregate, isa, function call
    return highest if highest >= 0 else None


def _lower_selection_ops(operator, where, exists_nodes, slots):
    """Selection stage shared by queries and the update-path selection:
    Semi for main-scope TYPE 2 subtrees, Semi/AntiSemi for top-level
    SOME/NO quantified comparisons, Filter for everything else."""
    if where is None:
        return operator
    if exists_nodes:
        return ops.Semi(exists_nodes, operator, where=where)
    quantifier = _quantifier_comparison(where)
    if quantifier is not None:
        kind, scope_nodes, comparison = quantifier
        if kind == "some":
            return ops.Semi(scope_nodes, operator, comparison=comparison)
        return ops.AntiSemi(scope_nodes, operator, comparison)
    return ops.Filter(where, operator, slots)


def lower_plan(query: RetrieveQuery, tree: QueryTree, plan,
               executor) -> PhysicalPlan:
    """Lower a resolved Retrieve into the full operator pipeline."""
    roots = list(tree.roots)
    reordered = False
    if plan is not None and getattr(plan, "root_order", None):
        by_var = {root.var_name: root for root in roots}
        planned = [by_var[name] for name in plan.root_order]
        reordered = planned != roots
        roots = planned

    loop_nodes: List[QTNode] = []
    for root in roots:
        loop_nodes.extend(tree.loop_nodes(root))
    original_nodes: List[QTNode] = []
    for root in tree.roots:
        original_nodes.extend(tree.loop_nodes(root))

    slots: Dict[int, int] = {}
    for node in loop_nodes:
        slots[node.id] = len(slots)

    exists_nodes = exists_subtrees(loop_nodes)
    pushdown = None
    if (query.where is not None and not exists_nodes
            and _quantifier_comparison(query.where) is None):
        pushdown = _pushdown_slot(query.where, slots)

    operator: Optional[ops.Operator] = None
    pushed = False
    for index, node in enumerate(loop_nodes):
        if node.kind == "root":
            access = (plan.root_access.get(node.var_name)
                      if plan is not None else None)
            operator = ops.Scan(node, plan=plan, access=access,
                                child=operator)
        elif node.label == TYPE3:
            operator = ops.OuterTraverse(node, operator)
        else:
            operator = ops.EVATraverse(node, operator)
        if pushdown == index:
            # Predicate pushdown: every slot the WHERE clause reads is
            # bound here, so prune before the remaining fan-out.
            operator = ops.Filter(query.where, operator, slots)
            pushed = True

    operator = _lower_selection_ops(operator,
                                    None if pushed else query.where,
                                    exists_nodes, slots)

    # The selection stage above is the parallel-safe segment; when the
    # executor allows workers, the Parallel barrier wraps it here, and
    # everything below (Aggregate, Project, Sort, Distinct) stays serial
    # on the dispatching thread.
    parallelism = getattr(executor, "parallelism", 1)
    if parallelism > 1:
        from repro.engine.parallel import Parallel
        operator = Parallel(operator, parallelism)

    # Aggregate expressions appearing directly as targets or order keys
    # evaluate once per row into dedicated extra slots.
    width = len(slots)
    agg_slots: Dict[int, int] = {}
    agg_items = []
    expressions = [item.expression for item in query.targets]
    expressions.extend(order.expression for order in (query.order_by or []))
    for expression in expressions:
        if isinstance(expression, AggregateExpr):
            agg_slots[id(expression)] = width
            agg_items.append((expression, width))
            width += 1
    if agg_items:
        operator = ops.Aggregate(agg_items, operator)

    structured = query.mode == "structure"
    operator = ops.Project(query, original_nodes, reordered, structured,
                           slots, agg_slots, operator)
    needs_order = bool(query.order_by)
    if reordered or needs_order:
        operator = ops.Sort(reordered, needs_order, operator)
    if query.distinct:
        operator = ops.Distinct(operator)

    return PhysicalPlan(operator, slots, width, loop_nodes, exists_nodes,
                        plan)


def lower_selection(tree: QueryTree, where, domain=None) -> PhysicalPlan:
    """Lower a single-perspective selection (MODIFY/DELETE/VERIFY path):
    a root Scan — over explicit index/range ``domain`` candidates when
    given — followed by the shared selection stage.  The driver reads
    surviving surrogates straight out of the root slot."""
    root = tree.roots[0]
    slots = {root.id: 0}
    operator: ops.Operator = ops.Scan(root, domain=domain)
    exists_nodes = exists_subtrees([root])
    operator = _lower_selection_ops(operator, where, exists_nodes, slots)
    return PhysicalPlan(operator, slots, 1, [root], exists_nodes, None)
