"""Statistical optimization (paper §5.1: "Statistical optimization is not
fully implemented yet" — completing that roadmap item).

:func:`analyze` scans a store and collects, per class:

* extent cardinality and block count;
* per single-valued DVA: distinct-value count, null fraction, and an
  equi-depth histogram over ordered domains;
* per EVA pair: instance count and average fan-out in both directions.

The :class:`TableStatistics` object answers the selectivity questions the
cost model asks; without ANALYZE the model falls back to the fixed
defaults (the paper's own state).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.naming import canon
from repro.types.tvl import is_null

#: histogram buckets per attribute
BUCKETS = 8


@dataclass
class AttributeStatistics:
    """Distribution summary of one single-valued DVA on one class."""

    row_count: int = 0
    null_count: int = 0
    distinct_count: int = 0
    #: equi-depth bucket boundaries (sorted), for orderable domains
    boundaries: List = field(default_factory=list)
    #: most common value and its frequency (a 1-bucket MCV list)
    top_value: object = None
    top_frequency: int = 0

    @property
    def non_null(self) -> int:
        return self.row_count - self.null_count

    def equality_selectivity(self, value=None) -> float:
        """Fraction of the extent expected to match ``attr = value``."""
        if self.non_null == 0 or self.distinct_count == 0:
            return 0.0
        if value is not None and value == self.top_value:
            return self.top_frequency / self.row_count
        return (self.non_null / self.row_count) / self.distinct_count

    def range_selectivity(self, low=None, high=None) -> float:
        """Fraction expected in [low, high] via the equi-depth histogram."""
        if self.non_null == 0:
            return 0.0
        if not self.boundaries:
            return 0.33  # unordered domain fallback
        buckets = len(self.boundaries) - 1
        if buckets < 1:
            return 1.0

        def position(value, default):
            if value is None:
                return default
            return bisect.bisect_left(self.boundaries, value, 1,
                                      len(self.boundaries) - 1)
        low_pos = position(low, 1)
        high_pos = position(high, buckets)
        covered = max(0, high_pos - low_pos + 1)
        return min(1.0, covered / buckets) * (self.non_null / self.row_count)


@dataclass
class EvaStatistics:
    instance_count: int = 0
    forward_fanout: float = 0.0
    reverse_fanout: float = 0.0


class TableStatistics:
    """All collected statistics for one store."""

    def __init__(self):
        self.class_cardinality: Dict[str, int] = {}
        self.class_blocks: Dict[str, int] = {}
        self.attributes: Dict[Tuple[str, str], AttributeStatistics] = {}
        self.evas: Dict[Tuple[str, str], EvaStatistics] = {}
        self.analyzed = False

    def attribute(self, class_name: str,
                  attr_name: str) -> Optional[AttributeStatistics]:
        return self.attributes.get((canon(class_name), canon(attr_name)))

    def eva(self, owner: str, name: str) -> Optional[EvaStatistics]:
        return self.evas.get((canon(owner), canon(name)))


def analyze(store) -> TableStatistics:
    """Scan the store and build fresh statistics (the ANALYZE pass)."""
    statistics = TableStatistics()
    schema = store.schema

    for sim_class in schema.classes():
        name = sim_class.name
        surrogates = list(store.scan_class(name))
        statistics.class_cardinality[name] = len(surrogates)
        statistics.class_blocks[name] = store.class_block_count(name)

        for attr in sim_class.immediate_attributes.values():
            if attr.is_eva or attr.is_subrole or attr.is_surrogate \
                    or attr.multi_valued:
                continue
            values = [store.read_dva(surrogate, attr)
                      for surrogate in surrogates]
            attr_stats = AttributeStatistics(row_count=len(values))
            non_null = [v for v in values if not is_null(v)]
            attr_stats.null_count = len(values) - len(non_null)
            counts: Dict[object, int] = {}
            for value in non_null:
                counts[value] = counts.get(value, 0) + 1
            attr_stats.distinct_count = len(counts)
            if counts:
                top = max(counts.items(), key=lambda pair: pair[1])
                attr_stats.top_value, attr_stats.top_frequency = top
            try:
                ordered = sorted(non_null)
            except TypeError:
                ordered = []
            if ordered:
                attr_stats.boundaries = _equi_depth(ordered, BUCKETS)
            statistics.attributes[(name, attr.name)] = attr_stats

    seen = set()
    for sim_class in schema.classes():
        for eva in sim_class.immediate_evas():
            info = store.eva_info(eva)
            key = (info.canonical.owner_name, info.canonical.name)
            if key in seen:
                continue
            seen.add(key)
            eva_stats = EvaStatistics(instance_count=info.instance_count)
            domain_count = max(
                1, statistics.class_cardinality.get(
                    info.canonical.owner_name, 1))
            range_count = max(
                1, statistics.class_cardinality.get(
                    info.canonical.range_class_name, 1))
            eva_stats.forward_fanout = info.instance_count / domain_count
            eva_stats.reverse_fanout = info.instance_count / range_count
            statistics.evas[key] = eva_stats
            inverse = info.canonical.inverse
            if inverse is not info.canonical:
                mirror = EvaStatistics(
                    instance_count=info.instance_count,
                    forward_fanout=eva_stats.reverse_fanout,
                    reverse_fanout=eva_stats.forward_fanout)
                statistics.evas[(inverse.owner_name, inverse.name)] = mirror
    statistics.analyzed = True
    return statistics


def _equi_depth(ordered: List, buckets: int) -> List:
    """Equi-depth bucket boundaries (first element, cut points, last)."""
    if len(ordered) < 2:
        return [ordered[0], ordered[-1]] if ordered else []
    boundaries = [ordered[0]]
    for bucket in range(1, buckets):
        index = min(len(ordered) - 1, (len(ordered) * bucket) // buckets)
        boundaries.append(ordered[index])
    boundaries.append(ordered[-1])
    return boundaries
