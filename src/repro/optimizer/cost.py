"""The optimizer's cost model (paper §5.1).

"Cardinality of LUCs and relationships, blocking factors, indexes and the
cost of accessing the first and subsequent instances of a relationship are
some of the optimization parameters used."

Costs are in block accesses.  The first/subsequent-instance parameters
follow the paper's own example: a clustered relationship costs 0 block
accesses for its first instance, a pointer (absolute-address) mapping
costs 1.
"""

from __future__ import annotations

import math
from typing import Tuple

from repro.mapper.physical import EvaMapping
from repro.mapper.store import MapperStore

#: default selectivity of an equality predicate on a non-unique attribute
DEFAULT_EQ_SELECTIVITY = 0.1
#: cost of sorting n records, in block accesses (external-sort flavoured)
SORT_FACTOR = 0.02


class CostModel:
    """Cost estimates over one Mapper store's statistics.

    With collected :class:`~repro.optimizer.statistics.TableStatistics`
    (the ANALYZE pass), selectivities come from real distributions; the
    fixed defaults below are the fallback — the paper's own state
    ("statistical optimization is not fully implemented yet").
    """

    def __init__(self, store: MapperStore, statistics=None,
                 fanout_feedback=None):
        self.store = store
        self.schema = store.schema
        self.design = store.design
        self.statistics = statistics
        #: (owner, attr) -> observed mean fan-out, learned from traced
        #: executions (EXPLAIN ANALYZE actuals fed back by the Optimizer)
        self.fanout_feedback = fanout_feedback

    # -- Base statistics ---------------------------------------------------------

    def class_cardinality(self, class_name: str) -> int:
        return self.store.class_count(class_name)

    def class_blocks(self, class_name: str) -> int:
        """Blocks a full extent scan of the class touches.

        In a shared variable-format unit the scan visits the whole unit.
        """
        return max(1, self.store.class_block_count(class_name))

    def blocking_factor(self, class_name: str) -> int:
        return self.store.blocking_factor(class_name)

    def eva_fanout(self, eva) -> float:
        if self.fanout_feedback:
            observed = self.fanout_feedback.get((eva.owner_name, eva.name))
            if observed is not None:
                return max(observed, 0.0)
        fanout = self.store.avg_fanout(eva)
        return max(fanout, 0.0)

    # -- Relationship access costs --------------------------------------------------

    def relationship_costs(self, eva) -> Tuple[float, float]:
        """(first-instance, next-instance) block-access costs of
        traversing ``eva`` from one source entity, *excluding* the cost of
        materializing target records."""
        mapping = self.design.eva_mapping(eva)
        if mapping is EvaMapping.CLUSTERED:
            # Relationship records live in the source's own block.
            return 0.0, 0.0
        if mapping is EvaMapping.POINTER:
            # Absolute address: straight to the target block.
            return 1.0, 1.0
        if mapping is EvaMapping.FOREIGN_KEY:
            # The key is in the already-fetched source record; the reverse
            # direction needs one probe of the inverse index.
            return 0.0, 0.0
        if mapping is EvaMapping.DEDICATED:
            # One block of the dedicated structure holds many instances of
            # the same source (good locality).
            return 1.0, 0.1
        # COMMON: instances are interleaved with every other common-mapped
        # EVA, so consecutive instances rarely share a block.
        return 1.0, 0.6

    def target_record_cost(self, class_name: str) -> float:
        """Materializing one target record: one block access, discounted
        by expected buffer residency for small classes and by the
        read-path cache hit rate observed so far."""
        blocks = self.class_blocks(class_name)
        base = 0.3 if blocks <= self.design.pool_capacity // 4 else 1.0
        return base * (1.0 - self.cached_read_discount())

    def cached_read_discount(self) -> float:
        """Learned discount on record-materialization cost: the store's
        observed decoded-record / fan-out cache hit rate, capped so no
        access is ever estimated free.  A uniform multiplier preserves
        strategy rankings while shrinking absolute estimates toward the
        measured warm-cache behaviour."""
        perf = getattr(self.store, "perf", None)
        if perf is None:
            return 0.0
        return min(perf.read_hit_rate(), 0.9)

    def traversal_cost(self, eva, source_count: float,
                       existential: bool = False) -> float:
        """Cost of expanding one EVA edge for ``source_count`` sources."""
        first, following = self.relationship_costs(eva)
        fanout = self.eva_fanout(eva)
        per_target = self.target_record_cost(eva.range_class_name)
        if existential:
            # Existential (TYPE 2) subtrees stop at the first witness.
            fanout = min(fanout, 1.0)
        if fanout <= 0:
            return source_count * first
        return source_count * (
            first + max(fanout - 1.0, 0.0) * following + fanout * per_target)

    # -- Root access costs -------------------------------------------------------------

    def scan_cost(self, class_name: str) -> float:
        return float(self.class_blocks(class_name))

    def subclass_scan_cost(self, root_class: str, subclass: str) -> float:
        """Scan of a pruned subclass extent (semantic rewrite).

        In a shared variable-format unit the scan still visits every
        block, but only the subclass's own role records are decoded and
        qualified — the dominant per-block work — so the block cost is
        scaled by the extent fraction relative to the perspective class.
        """
        blocks = float(self.class_blocks(subclass))
        total = max(1, self.class_cardinality(root_class))
        pruned = self.class_cardinality(subclass)
        return max(0.5, blocks * min(1.0, pruned / total))

    def index_lookup_cost(self, class_name: str, attr_name: str,
                          unique: bool, value=None) -> Tuple[float, float]:
        """(cost, expected matches) of an equality index lookup."""
        cardinality = max(1, self.class_cardinality(class_name))
        if unique:
            matches = 1.0
        else:
            matches = max(1.0, cardinality * self.equality_selectivity(
                class_name, attr_name, value))
        probe = 1.0
        return probe + matches * 1.0, matches

    def equality_selectivity(self, class_name: str, attr_name: str,
                             value=None) -> float:
        sim_class = self.schema.get_class(class_name)
        attr = sim_class.attribute(attr_name)
        if attr.options.unique:
            return 1.0 / max(1, self.class_cardinality(class_name))
        if self.statistics is not None:
            collected = self.statistics.attribute(attr.owner_name,
                                                  attr.name)
            if collected is not None and collected.row_count:
                return collected.equality_selectivity(value)
        return DEFAULT_EQ_SELECTIVITY

    def sort_cost(self, record_count: float) -> float:
        """Cost of re-sorting output whose order a strategy broke (§5.1:
        "the cost of reordering/sorting output is added to the cost of a
        strategy")."""
        if record_count <= 1:
            return 0.0
        return SORT_FACTOR * record_count * math.log2(max(record_count, 2.0))
