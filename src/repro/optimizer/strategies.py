"""Strategy enumeration and selection (paper §5.1).

For every perspective root the optimizer enumerates the applicable access
paths (extent scan; equality index lookups derived from top-level WHERE
conjuncts of the form ``<attr of root> = <literal>``), extends each with
the traversal cost of the query tree's EVA/MV-DVA edges (existential
TYPE 2 subtrees are costed with early-exit fanout), applies the
semantics-preservation rule (an index path breaks the surrogate ordering;
re-sorting its matches is added to its cost), and picks the cheapest
combination.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Tuple

from repro.dml.ast import Binary, Literal, Path, RetrieveQuery
from repro.dml.query_tree import TYPE2, QTNode, QueryTree
from repro.optimizer.cost import CostModel
from repro.optimizer.plan import AccessPath, Plan
from repro.optimizer.query_graph import build_query_graph
from repro.optimizer.rewrite import RootHint, rewrite_query


def equality_conjuncts(where, root: QTNode) -> List[Tuple[str, object]]:
    """Top-level AND-ed conjuncts ``<root attr> = <literal>`` of a WHERE
    clause.  Shared by the optimizer's access-path enumeration and the
    executor's update/VERIFY selection fast path."""
    conjuncts: List[Tuple[str, object]] = []

    def walk(expression):
        if isinstance(expression, Binary):
            if expression.op == "and":
                walk(expression.left)
                walk(expression.right)
                return
            if expression.op == "=":
                sides = [(expression.left, expression.right),
                         (expression.right, expression.left)]
                for path_side, literal_side in sides:
                    if (isinstance(path_side, Path)
                            and isinstance(literal_side, Literal)
                            and path_side.anchor_node is root
                            and not path_side.chain_nodes
                            and path_side.terminal_attr is not None):
                        conjuncts.append((path_side.terminal_attr.name,
                                          literal_side.value))

    if where is not None:
        walk(where)
    return conjuncts


#: op -> (is_lower_bound, inclusive)
_RANGE_OPS = {">": (True, False), ">=": (True, True),
              "<": (False, False), "<=": (False, True)}
#: mirror ops for ``<literal> <op> <root attr>`` conjuncts
_FLIPPED = {">": "<", ">=": "<=", "<": ">", "<=": ">="}


def range_conjuncts(where, root: QTNode
                    ) -> List[Tuple[str, object, object, bool, bool]]:
    """Top-level AND-ed range bounds on root attributes, folded per
    attribute into ``(attr, low, high, include_low, include_high)``
    (either bound may be None).  Bounds may be loose — the selection
    stage re-checks the full predicate — so only the first lower and
    first upper bound per attribute are kept."""
    bounds: Dict[str, List] = {}

    def note(attr_name, op, value):
        entry = bounds.setdefault(attr_name, [None, None, True, True])
        lower, inclusive = _RANGE_OPS[op]
        if lower and entry[0] is None:
            entry[0], entry[2] = value, inclusive
        elif not lower and entry[1] is None:
            entry[1], entry[3] = value, inclusive

    def walk(expression):
        if isinstance(expression, Binary):
            if expression.op == "and":
                walk(expression.left)
                walk(expression.right)
                return
            if expression.op in _RANGE_OPS:
                left, right = expression.left, expression.right
                if (isinstance(left, Path) and isinstance(right, Literal)
                        and left.anchor_node is root
                        and not left.chain_nodes
                        and left.terminal_attr is not None):
                    note(left.terminal_attr.name, expression.op, right.value)
                elif (isinstance(left, Literal) and isinstance(right, Path)
                        and right.anchor_node is root
                        and not right.chain_nodes
                        and right.terminal_attr is not None):
                    note(right.terminal_attr.name,
                         _FLIPPED[expression.op], left.value)

    if where is not None:
        walk(where)
    return [(attr_name, entry[0], entry[1], entry[2], entry[3])
            for attr_name, entry in bounds.items()]


class Optimizer:
    """Chooses an access plan for Retrieve queries."""

    def __init__(self, database):
        self.database = database
        self.store = database.store
        self.schema = database.schema
        #: collected by Database.analyze(); None = fixed-default estimates
        self.table_statistics = None
        #: (owner, attr) -> [observation count, fan-out sum]; fed by
        #: observe_execution from traced EXPLAIN ANALYZE actuals
        self._fanout_observations = {}
        self._considered = 0
        #: human-readable summary of the last statement's semantic
        #: rewrites (None when the phase was disabled)
        self._last_rewrite = None

    # -- Public API ---------------------------------------------------------------

    def choose_plan(self, query: RetrieveQuery, tree: QueryTree) -> Plan:
        trace = self.store.trace
        if trace is not None and trace.enabled:
            with trace.span("optimize", layer="optimizer") as span:
                plan = self._choose_plan(query, tree)
                span.attrs["strategy"] = plan.description
                span.attrs["estimated_cost"] = round(plan.estimated_cost, 2)
                span.attrs["strategies_considered"] = self._considered
                if self._last_rewrite is not None:
                    span.attrs["rewrite"] = self._last_rewrite
                return plan
        return self._choose_plan(query, tree)

    def _choose_plan(self, query: RetrieveQuery, tree: QueryTree) -> Plan:
        cost_model = self._cost_model()
        strategies = self.enumerate_strategies(query, tree, cost_model)
        self._considered = len(strategies)
        plan = min(strategies, key=lambda p: p.estimated_cost)
        self._annotate_estimates(tree, plan, cost_model)
        return plan

    def _cost_model(self) -> CostModel:
        return CostModel(self.store, self.table_statistics,
                         fanout_feedback=self.fanout_feedback())

    # -- Learned cardinality feedback ---------------------------------------------

    def fanout_feedback(self):
        """Mean observed fan-out per EVA direction, or None before any
        traced execution has reported actuals."""
        if not self._fanout_observations:
            return None
        return {key: total / count
                for key, (count, total) in self._fanout_observations.items()}

    def observe_execution(self, tree: QueryTree, node_stats) -> None:
        """Learn actual cardinalities from one traced execution.

        ``node_stats`` maps node id -> [domain enumerations, instances
        bound] (the executor's EXPLAIN ANALYZE counters).  Each EVA edge
        whose parent bound at least one instance contributes an observed
        mean fan-out, which future cost models prefer over the store's
        static average (paper §5.1's "statistical optimization", closed
        into a feedback loop)."""
        if not node_stats:
            return

        def visit(node):
            parent_stats = node_stats.get(node.id)
            for child in node.children.values():
                child_stats = node_stats.get(child.id)
                if (child.kind == "eva" and not child.transitive
                        and parent_stats is not None
                        and child_stats is not None
                        and parent_stats[1] > 0):
                    key = (child.eva.owner_name, child.eva.name)
                    count, total = self._fanout_observations.get(key, (0, 0.0))
                    fanout = child_stats[1] / parent_stats[1]
                    if child.label == TYPE2:
                        # Existential enumeration stops at the first
                        # witness; its counts under-estimate true fan-out.
                        fanout = max(fanout, 1.0) if child_stats[1] else 0.0
                    self._fanout_observations[key] = (count + 1,
                                                      total + fanout)
                visit(child)

        for root in tree.roots:
            visit(root)

    # -- Per-node estimates (EXPLAIN ANALYZE's "est" column) ------------------------

    def _annotate_estimates(self, tree: QueryTree, plan: Plan,
                            cost_model: CostModel) -> None:
        estimates = {}
        for root in tree.roots:
            access = plan.root_access.get(root.var_name)
            rows = (access.estimated_rows if access is not None
                    else float(cost_model.class_cardinality(root.class_name)))
            self._estimate_subtree(root, rows, cost_model, estimates)
        plan.node_estimates = estimates

    def _estimate_subtree(self, node: QTNode, rows: float,
                          cost_model: CostModel, estimates) -> None:
        estimates[node.id] = rows
        for child in node.children.values():
            existential = child.label == TYPE2
            if child.kind == "eva":
                fanout = max(cost_model.eva_fanout(child.eva), 0.0)
                child_rows = rows * (min(fanout, 1.0) if existential
                                     else fanout)
            else:
                child_rows = rows
            self._estimate_subtree(child, child_rows, cost_model, estimates)

    def explain(self, query: RetrieveQuery, tree: QueryTree) -> str:
        graph = build_query_graph(tree)
        strategies = sorted(self.enumerate_strategies(query, tree),
                            key=lambda plan: plan.estimated_cost)
        lines = [graph.describe(), ""]
        lines.append(f"{len(strategies)} strategies considered:")
        for rank, plan in enumerate(strategies):
            marker = "->" if rank == 0 else "  "
            lines.append(f"{marker} {plan.describe()}")
        return "\n".join(lines)

    # -- Strategy enumeration -------------------------------------------------------

    def enumerate_strategies(self, query: RetrieveQuery, tree: QueryTree,
                             cost_model: CostModel = None) -> List[Plan]:
        if cost_model is None:
            cost_model = self._cost_model()
        hints, rewrite_text = self._run_rewrite(query, tree)
        per_root: List[List[AccessPath]] = []
        for root in tree.roots:
            per_root.append(self._root_alternatives(
                query, root, cost_model, hints.get(root.var_name)))

        # Loop orders: the FROM order (semantics-preserving) plus, for
        # multi-perspective queries, every permutation — non-preserving
        # orders are charged the output re-sort (§5.1).
        original = list(tree.roots)
        if len(original) > 1 and len(original) <= 4:
            orders = [list(p) for p in itertools.permutations(original)]
        else:
            orders = [original]

        plans: List[Plan] = []
        for combination in itertools.product(*per_root):
            access_of = {root.var_name: access
                         for root, access in zip(tree.roots, combination)}
            for order in orders:
                plan = Plan()
                plan.root_access = dict(access_of)
                preserves = order == original
                if not preserves:
                    plan.root_order = [root.var_name for root in order]
                total = self._nested_cost(order, access_of, cost_model)
                result_rows = 1.0
                for access in combination:
                    result_rows *= max(access.estimated_rows, 1.0)
                if not preserves:
                    total += cost_model.sort_cost(result_rows)
                for access in combination:
                    if not access.preserves_order:
                        total += cost_model.sort_cost(access.estimated_rows)
                plan.estimated_cost = total
                plan.description = " x ".join(
                    access_of[root.var_name].kind for root in order)
                if not preserves:
                    plan.description += " (reordered)"
                plan.rewrite = rewrite_text
                plans.append(plan)
        return plans

    # -- Semantic rewrite phase -----------------------------------------------------

    def _run_rewrite(self, query: RetrieveQuery, tree: QueryTree):
        """Run the semantic rewrite pass when the knob allows it.

        Returns ``(hints_by_var, description)``.  With rewrites off the
        tree is untouched and every downstream plan is byte-identical to
        the legacy enumeration (description None).
        """
        if not getattr(self.database, "rewrite", True):
            self._last_rewrite = None
            return {}, None
        result = rewrite_query(self.store, self.schema, query, tree)
        self._last_rewrite = result.describe()
        perf = self.store.perf
        if perf is not None:
            perf.bump("rewrite_statements")
            for hint in result.hints.values():
                if hint.empty_proof is not None:
                    perf.bump("rewrite_empty_extents")
                elif hint.subclass is not None:
                    perf.bump("rewrite_subclass_prunes")
                if hint.flips:
                    perf.bump("rewrite_eva_flips", len(hint.flips))
            for tag in result.applied:
                if tag.startswith("exists-reorder"):
                    perf.bump("rewrite_exists_reorders")
                elif tag.startswith("factor"):
                    perf.bump("rewrite_traversal_factorings")
        return result.hints, self._last_rewrite

    def _nested_cost(self, order, access_of, cost_model: CostModel) -> float:
        """Cost of the nested cross-product loops in the given order.

        Inner roots are re-evaluated once per outer combination; a rescan
        is free when the class's blocks fit comfortably in the buffer
        pool, else it pays its access cost again.
        """
        pool = self.store.design.pool_capacity
        total = 0.0
        multiplier = 1.0
        for root in order:
            access = access_of[root.var_name]
            blocks = cost_model.class_blocks(access.class_name)
            rescan = 0.0 if blocks <= pool // 2 else access.estimated_cost
            total += access.estimated_cost + max(multiplier - 1.0, 0.0) * rescan
            total += multiplier * self._subtree_cost(
                root, access.estimated_rows, cost_model)
            multiplier *= max(access.estimated_rows, 1.0)
        return total

    def _root_alternatives(self, query: RetrieveQuery, root: QTNode,
                           cost_model: CostModel,
                           hint: RootHint = None) -> List[AccessPath]:
        class_name = root.class_name
        if hint is not None and hint.empty_proof is not None:
            # Provably-empty short-circuit: no other alternative can beat
            # an empty domain, and the verifier re-derives the proof.
            return [AccessPath("empty", class_name,
                               estimated_cost=0.0, estimated_rows=0.0,
                               preserves_order=True,
                               proof=hint.empty_proof)]
        cardinality = cost_model.class_cardinality(class_name)
        alternatives = [AccessPath(
            "scan", class_name,
            estimated_cost=cost_model.scan_cost(class_name),
            estimated_rows=float(cardinality),
            preserves_order=True)]
        for attr_name, value in self._equality_conjuncts(query, root):
            if not self.store.has_index_on(class_name, attr_name):
                continue
            attr = self.schema.get_class(class_name).attribute(attr_name)
            lookup_cost, matches = cost_model.index_lookup_cost(
                class_name, attr_name, attr.options.unique, value)
            alternatives.append(AccessPath(
                "index", class_name, attr_name, value,
                estimated_cost=lookup_cost,
                estimated_rows=matches,
                preserves_order=False))
        if hint is not None and hint.subclass is not None:
            pruned = float(cost_model.class_cardinality(hint.subclass))
            alternatives.append(AccessPath(
                "subclass", class_name,
                estimated_cost=cost_model.subclass_scan_cost(
                    class_name, hint.subclass),
                estimated_rows=pruned,
                preserves_order=False,
                subclass=hint.subclass))
        if hint is not None:
            for flip in hint.flips:
                flip_attr = self.schema.get_class(
                    flip.target_class).attribute(flip.attr_name)
                lookup_cost, matches = cost_model.index_lookup_cost(
                    flip.target_class, flip.attr_name,
                    flip_attr.options.unique, flip.value)
                inverse = flip.eva.inverse
                back_cost = cost_model.traversal_cost(inverse, matches, False)
                fanout = max(cost_model.eva_fanout(inverse), 0.0)
                alternatives.append(AccessPath(
                    "eva_flip", class_name,
                    attr_name=flip.attr_name, value=flip.value,
                    estimated_cost=lookup_cost + back_cost,
                    estimated_rows=max(matches * fanout, 1.0),
                    preserves_order=False,
                    eva=flip.eva, flip_class=flip.target_class))
        return alternatives

    def _equality_conjuncts(self, query: RetrieveQuery, root: QTNode
                            ) -> List[Tuple[str, object]]:
        return equality_conjuncts(query.where, root)

    def _subtree_cost(self, node: QTNode, rows: float,
                      cost_model: CostModel) -> float:
        """Traversal cost of a root's subtree given ``rows`` source rows."""
        total = 0.0
        for child in node.children.values():
            existential = child.label == TYPE2
            if child.kind == "eva":
                total += cost_model.traversal_cost(child.eva, rows,
                                                   existential)
                fanout = max(cost_model.eva_fanout(child.eva), 0.0)
                child_rows = rows * (min(fanout, 1.0) if existential
                                     else fanout)
            else:
                # MV DVA: values come from the owner record (array) or a
                # dependent unit; charge one block per source visit.
                total += rows * 0.5
                child_rows = rows
            total += self._subtree_cost(child, child_rows, cost_model)
        return total
