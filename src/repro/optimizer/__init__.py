"""The Parser/Optimizer's optimization half (paper §5.1).

"SIM optimizes a query by building a query graph (whose nodes are LUC
objects), enumerating strategies, estimating the cost of processing for
each strategy and choosing the one with the least cost."

* :mod:`repro.optimizer.query_graph` — the query graph over LUC objects;
* :mod:`repro.optimizer.cost` — the cost model: LUC and relationship
  cardinalities, blocking factors, indexes, and the cost of accessing the
  first and subsequent instances of a relationship;
* :mod:`repro.optimizer.plan` — executable access plans;
* :mod:`repro.optimizer.strategies` — strategy enumeration and selection,
  including the semantics-preservation test for the perspective-implied
  output ordering.
"""

from repro.optimizer.query_graph import QueryGraph, build_query_graph
from repro.optimizer.cost import CostModel
from repro.optimizer.plan import AccessPath, Plan
from repro.optimizer.statistics import TableStatistics, analyze
from repro.optimizer.strategies import Optimizer

__all__ = [
    "QueryGraph",
    "build_query_graph",
    "CostModel",
    "AccessPath",
    "Plan",
    "Optimizer",
    "TableStatistics",
    "analyze",
]
