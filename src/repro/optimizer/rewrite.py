"""The semantic rewrite phase (between qualification and plan selection).

The optimizer's strategy enumeration picks *how* domains are produced;
this pass exploits what the schema's semantics prove about *which*
domains need producing at all:

* **Subclass-extent pruning** — a top-level ``root ISA S`` conjunct with
  ``S`` in the root class's generalization hierarchy narrows the root
  domain to ``S``'s extent (role-filtered back to the root class), which
  is usually a far smaller unit to scan.
* **Provably-empty extents** — contradictory ISA conjuncts (a class from
  a different hierarchy, or ``x isa S and not x isa A`` with ``A`` an
  ancestor of ``S``) prove the answer empty before touching storage
  (diagnostic SIM400).
* **EVA-inverse direction flips** — ``attr of (eva of root) = literal``
  with an index on the target class's ``attr`` is answered backwards:
  index-probe the targets, traverse the EVA's *inverse* to candidate
  roots.
* **Quantifier/semijoin reordering** — independent TYPE 2 existential
  siblings are probed cheapest-fanout-first (witness search order is
  semantics-free).
* **Common-traversal factoring** — structurally equivalent traversal
  nodes (same EVA / transitive chain, same parent-instance shape) share
  one accessor domain memo key, so the traversal is computed once per
  parent instance across the whole statement (and across statements
  while the store epoch holds).

Every rewrite is *domain-safe*: it only ever shrinks a root domain to a
provable superset of the qualifying entities (still a subset of the
root's extent) or permutes work whose order is unobservable.  The full
WHERE clause always runs afterwards, so a loose rewrite can never add or
drop rows — and the plan verifier re-derives each proof independently
(SIM401) before the plan may run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.dml.ast import (
    Aggregate,
    Binary,
    IsaTest,
    Literal,
    Path,
    Quantified,
    RetrieveQuery,
    Unary,
)
from repro.dml.query_tree import MAIN_SCOPE, TYPE2, QTNode, QueryTree


@dataclass
class FlipHint:
    """One EVA-inverse flip candidate for a root variable."""

    eva: object                 # the EVA traversed root -> target
    target_class: str           # the chain node's (possibly converted) class
    attr_name: str              # indexed DVA on the target class
    value: object               # the literal compared against

    def describe(self) -> str:
        return (f"flip({self.eva.name}<-{self.target_class}."
                f"{self.attr_name})")


@dataclass
class RootHint:
    """Rewrite facts about one perspective root."""

    var_name: str
    class_name: str
    #: narrow the domain to this class's extent (role-filtered)
    subclass: Optional[str] = None
    #: emptiness proof: ("disjoint", other_class) or
    #: ("contradiction", positive_class, negated_ancestor)
    empty_proof: Optional[Tuple] = None
    flips: List[FlipHint] = field(default_factory=list)


@dataclass
class RewriteResult:
    """Everything the rewrite pass decided for one statement."""

    hints: Dict[str, RootHint] = field(default_factory=dict)
    #: human-readable tags of tree-level rewrites actually applied
    applied: List[str] = field(default_factory=list)

    def describe(self) -> str:
        tags = list(self.applied)
        for hint in self.hints.values():
            if hint.empty_proof is not None:
                kind, *rest = hint.empty_proof
                tags.append(f"empty({hint.var_name}:{kind} "
                            + " ".join(rest) + ")")
            elif hint.subclass is not None:
                tags.append(f"subclass({hint.class_name}->{hint.subclass})")
            for flip in hint.flips:
                tags.append(flip.describe())
        return ",".join(tags) if tags else "none"


def _bare_root_path(path, root: QTNode) -> bool:
    """Is ``path`` the root variable itself (no traversal, no attribute)?"""
    return (isinstance(path, Path) and path.anchor_node is root
            and not path.chain_nodes and path.terminal_attr is None)


def _isa_conjuncts(where, root: QTNode) -> Tuple[List[str], List[str]]:
    """Positive and negated top-level ``root isa C`` conjunct classes."""
    positive: List[str] = []
    negative: List[str] = []

    def walk(expression):
        if isinstance(expression, Binary) and expression.op == "and":
            walk(expression.left)
            walk(expression.right)
            return
        if (isinstance(expression, IsaTest)
                and _bare_root_path(expression.entity, root)):
            positive.append(expression.class_name)
            return
        if (isinstance(expression, Unary) and expression.op == "not"
                and isinstance(expression.operand, IsaTest)
                and _bare_root_path(expression.operand.entity, root)):
            negative.append(expression.operand.class_name)

    if where is not None:
        walk(where)
    return positive, negative


def _flip_conjuncts(where, root: QTNode, store) -> List[FlipHint]:
    """Top-level ``attr of (eva of root) = literal`` conjuncts whose
    target class carries an index on ``attr``."""
    flips: List[FlipHint] = []

    def note(path, literal):
        if (not isinstance(path, Path) or path.anchor_node is not root
                or len(path.chain_nodes) != 1
                or path.terminal_attr is None):
            return
        node = path.chain_nodes[0]
        if (node.kind != "eva" or node.transitive
                or node.scope_id != MAIN_SCOPE
                or node.eva.inverse is None):
            return
        attr_name = path.terminal_attr.name
        if not store.has_index_on(node.class_name, attr_name):
            return
        flips.append(FlipHint(node.eva, node.class_name, attr_name,
                              literal.value))

    def walk(expression):
        if isinstance(expression, Binary):
            if expression.op == "and":
                walk(expression.left)
                walk(expression.right)
            elif expression.op == "=":
                if isinstance(expression.right, Literal):
                    note(expression.left, expression.right)
                elif isinstance(expression.left, Literal):
                    note(expression.right, expression.left)

    if where is not None:
        walk(where)
    return flips


def _root_hint(store, schema, query: RetrieveQuery, root: QTNode) -> RootHint:
    graph = schema.graph
    hint = RootHint(root.var_name, root.class_name)
    positive, negative = _isa_conjuncts(query.where, root)

    for pos in positive:
        if not graph.same_hierarchy(root.class_name, pos):
            # ``x isa C`` with C outside the root's hierarchy: no entity
            # can hold both roles (single base-class ancestor rule).
            hint.empty_proof = ("disjoint", pos)
            return hint
        for neg in negative:
            if neg == pos or graph.is_ancestor(neg, pos):
                # ``x isa S and not x isa A`` with A above S: membership
                # in S implies membership in A.
                hint.empty_proof = ("contradiction", pos, neg)
                return hint

    candidates = [pos for pos in positive
                  if pos != root.class_name
                  and not graph.is_ancestor(pos, root.class_name)]
    if candidates:
        # The smallest qualifying extent wins; the access path re-checks
        # root-class membership per candidate entity, so any same-
        # hierarchy class is sound (cross-branch classes like a TA's
        # second superclass included).
        hint.subclass = min(candidates, key=store.class_count)
    hint.flips = _flip_conjuncts(query.where, root, store)
    return hint


# -- Quantifier / semijoin reordering ------------------------------------------


def _reorder_existentials(tree: QueryTree, store, applied: List[str]) -> None:
    """Probe independent TYPE 2 sibling subtrees cheapest-fanout-first.

    Only the TYPE 2 children of a node are permuted (among themselves, in
    place): the TYPE 1/TYPE 3 loop order — which the binding and
    physical-spine contracts depend on — is untouched, and existential
    witness search order is unobservable in the result.
    """

    def fanout(node: QTNode) -> float:
        if node.kind == "eva":
            return max(store.avg_fanout(node.eva), 0.0)
        return 1.0

    def visit(node: QTNode) -> None:
        items = list(node.children.items())
        t2_positions = [i for i, (_, child) in enumerate(items)
                        if child.label == TYPE2]
        if len(t2_positions) >= 2:
            existing = [items[i] for i in t2_positions]
            ranked = sorted(existing, key=lambda kv: fanout(kv[1]))
            if ranked != existing:
                for position, pair in zip(t2_positions, ranked):
                    items[position] = pair
                node.children.clear()
                node.children.update(items)
                applied.append(f"exists-reorder({node.describe()})")
        for child in node.children.values():
            visit(child)

    for root in tree.roots:
        visit(root)


# -- Common-traversal factoring ------------------------------------------------


def _domain_signature(node: QTNode) -> Optional[tuple]:
    """A key such that equal-signature nodes have equal domains for equal
    parent instances.  ``None`` for nodes whose domain is not shareable.

    The accessor's domain enumeration depends only on (the EVA or MV DVA
    traversed, the transitive hop chain, and whether the parent's
    instances need unwrapping from (value, level) pairs) — never on the
    node identity, the AS conversion, or the TYPE label.
    """
    parent = node.parent
    unwraps = bool(parent is not None and parent.kind == "eva"
                   and parent.transitive)
    if node.kind == "eva":
        if node.transitive:
            chain = tuple(id(e) for e in (node.transitive_evas or [node.eva]))
            return ("tc", chain, unwraps)
        return ("eva", id(node.eva), unwraps)
    if node.kind == "mvdva":
        return ("mv", id(node.mv_attr), unwraps)
    return None


def _collect_nodes(query: RetrieveQuery, tree: QueryTree) -> List[QTNode]:
    """Main-scope nodes plus every scoped (aggregate/quantifier) subtree."""
    nodes: List[QTNode] = []
    seen = set()

    def add_subtree(node: QTNode) -> None:
        if id(node) in seen:
            return
        seen.add(id(node))
        nodes.append(node)
        for child in node.children.values():
            add_subtree(child)

    def walk_expr(expression) -> None:
        if isinstance(expression, (Quantified, Aggregate)):
            for scoped in getattr(expression, "scope_nodes", []):
                add_subtree(scoped)
            walk_expr(expression.argument)
            return
        if isinstance(expression, Binary):
            walk_expr(expression.left)
            walk_expr(expression.right)
        elif isinstance(expression, Unary):
            walk_expr(expression.operand)

    for root in tree.roots:
        add_subtree(root)
    if query.where is not None:
        walk_expr(query.where)
    for item in getattr(query, "targets", []) or []:
        walk_expr(getattr(item, "expression", None) or item)
    return nodes


def _factor_traversals(query: RetrieveQuery, tree: QueryTree,
                       applied: List[str]) -> None:
    """Give equivalent traversal nodes a shared ``domain_key``.

    The accessor memoizes domains by ``(domain_key, parent instance)``
    (falling back to the per-query node id), so equal keys make repeated
    qualification paths — ``advisor of student`` in the target list and
    the WHERE clause, say — enumerate once.  Signatures are built from
    schema-object identities, which are stable for the life of the
    database, so the sharing also spans statements while the store epoch
    holds.
    """
    groups: Dict[tuple, List[QTNode]] = {}
    for node in _collect_nodes(query, tree):
        signature = _domain_signature(node)
        if signature is not None:
            groups.setdefault(signature, []).append(node)
    shared = 0
    for signature, members in groups.items():
        key = ("dk",) + signature
        for node in members:
            node.domain_key = key
        if len(members) > 1:
            shared += 1
    if shared:
        applied.append(f"factor({shared})")


# -- The pass ------------------------------------------------------------------


def rewrite_query(store, schema, query: RetrieveQuery,
                  tree: QueryTree) -> RewriteResult:
    """Run every rewrite over one qualified statement.

    Mutates the tree in place (existential reordering, domain keys) and
    returns per-root hints for the strategy enumerator.  Idempotent: a
    second pass over the same tree changes nothing.
    """
    result = RewriteResult()
    for root in tree.roots:
        hint = _root_hint(store, schema, query, root)
        if (hint.subclass is not None or hint.empty_proof is not None
                or hint.flips):
            result.hints[root.var_name] = hint
    _reorder_existentials(tree, store, result.applied)
    _factor_traversals(query, tree, result.applied)
    return result
