"""The query graph: LUC objects touched by a query (paper §5.1).

Nodes are LUCs (class LUCs and MV-DVA LUCs); edges are the LUC
relationships the query traverses (subclass links implied by inherited-
attribute access, MV-DVA links, EVA links).  The optimizer costs
strategies against this graph, which "enables the Optimizer to do its job
without considering physical mapping details".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.dml.query_tree import QueryTree, QTNode


@dataclass
class QueryGraphNode:
    luc_name: str
    qt_node_id: int
    kind: str                      # "class" | "mvdva"
    label: Optional[int] = None    # the QT node's TYPE label


@dataclass
class QueryGraphEdge:
    source: str
    target: str
    flavor: str                    # "eva" | "mvdva" | "subclass"
    eva_name: Optional[str] = None
    transitive: bool = False


class QueryGraph:
    """LUC-level view of one query."""

    def __init__(self):
        self.nodes: List[QueryGraphNode] = []
        self.edges: List[QueryGraphEdge] = []

    def add_node(self, node: QueryGraphNode) -> None:
        self.nodes.append(node)

    def add_edge(self, edge: QueryGraphEdge) -> None:
        self.edges.append(edge)

    def describe(self) -> str:
        lines = ["query graph:"]
        for node in self.nodes:
            label = f"TYPE{node.label}" if node.label else "-"
            lines.append(f"  luc {node.luc_name} [{node.kind}, {label}]")
        for edge in self.edges:
            extra = " transitive" if edge.transitive else ""
            lines.append(f"  edge {edge.source} -> {edge.target} "
                         f"({edge.flavor}{extra})")
        return "\n".join(lines)


def build_query_graph(tree: QueryTree) -> QueryGraph:
    """Translate the labelled query tree into its LUC query graph."""
    graph = QueryGraph()

    def visit(node: QTNode):
        if node.kind in ("root", "eva"):
            graph.add_node(QueryGraphNode(
                node.class_name, node.id, "class", node.label))
        else:
            luc_name = f"{node.mv_attr.owner_name}--{node.mv_attr.name}"
            graph.add_node(QueryGraphNode(
                luc_name, node.id, "mvdva", node.label))
        for child in node.children.values():
            if child.kind == "eva":
                graph.add_edge(QueryGraphEdge(
                    node.class_name or "value", child.class_name, "eva",
                    eva_name=child.eva.name, transitive=child.transitive))
            else:
                luc_name = (f"{child.mv_attr.owner_name}--"
                            f"{child.mv_attr.name}")
                graph.add_edge(QueryGraphEdge(
                    node.class_name or "value", luc_name, "mvdva"))
            visit(child)

    for root in tree.roots:
        visit(root)
    return graph
