"""Executable access plans chosen by the optimizer.

A plan decides, per perspective root, how its domain is produced: a full
extent scan (the canonical strategy, which preserves the surrogate
ordering the DML implies) or an equality index lookup (results re-sorted
by surrogate so the perspective-implied ordering is preserved — the
semantics-preservation rule of §5.1 with its sort cost).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.dml.query_tree import QTNode


@dataclass
class AccessPath:
    """How one root variable's domain is produced."""

    kind: str                       # "scan" | "index"
    class_name: str
    attr_name: Optional[str] = None
    value: object = None
    estimated_cost: float = 0.0
    estimated_rows: float = 0.0
    preserves_order: bool = True

    def describe(self) -> str:
        if self.kind == "scan":
            return (f"scan {self.class_name} "
                    f"(cost {self.estimated_cost:.1f})")
        return (f"index {self.class_name}.{self.attr_name} = "
                f"{self.value!r} (cost {self.estimated_cost:.1f})")


@dataclass
class Plan:
    """A full strategy: one access path per root plus bookkeeping.

    ``root_order`` — evaluation order of the perspective variables.  When
    it differs from the FROM-list order, the transformation is not
    semantics-preserving (§5.1): the executor re-sorts the output into the
    perspective-implied order, and the optimizer charges that sort to the
    strategy.
    """

    root_access: Dict[str, AccessPath] = field(default_factory=dict)
    root_order: Optional[List[str]] = None
    estimated_cost: float = 0.0
    description: str = "canonical nested loops"
    #: node id -> estimated instance count (EXPLAIN ANALYZE's "est" column;
    #: filled in by Optimizer.choose_plan for the winning strategy)
    node_estimates: Dict[int, float] = field(default_factory=dict)

    def root_iterator(self, node: QTNode, executor):
        """Domain iterator for a root node, or None for the default scan."""
        access = self.root_access.get(node.var_name)
        if access is None or access.kind == "scan":
            return None
        store = executor.store
        surrogates = store.find_by_dva(access.class_name, access.attr_name,
                                       access.value)
        # Re-sort by surrogate: preserves the perspective-implied ordering
        # the index lookup broke (the plan's cost includes this sort).
        return iter(sorted(surrogates))

    def describe(self) -> str:
        lines = [f"plan: {self.description} "
                 f"(estimated cost {self.estimated_cost:.1f})"]
        if self.root_order is not None:
            lines.append("  loop order: " + " > ".join(self.root_order)
                         + "  [re-sorted to perspective order]")
        for var, access in self.root_access.items():
            lines.append(f"  {var}: {access.describe()}")
        return "\n".join(lines)
