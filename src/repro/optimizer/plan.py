"""Executable access plans chosen by the optimizer.

A plan decides, per perspective root, how its domain is produced: a full
extent scan (the canonical strategy, which preserves the surrogate
ordering the DML implies), an equality index lookup, or one of the
semantic-rewrite shapes — a pruned subclass extent, a provably-empty
domain, or an EVA-inverse flip.  Any non-scan path re-sorts its matches
by surrogate so the perspective-implied ordering is preserved (the
semantics-preservation rule of §5.1 with its sort cost).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.dml.query_tree import QTNode


@dataclass
class AccessPath:
    """How one root variable's domain is produced.

    ``kind``:

    * ``"scan"`` — full extent scan of ``class_name``;
    * ``"index"`` — equality lookup of ``attr_name = value``;
    * ``"subclass"`` — scan the pruned ``subclass`` extent, keep entities
      holding the ``class_name`` role (semantic rewrite);
    * ``"empty"`` — the domain is provably empty; ``proof`` carries the
      schema facts the verifier re-checks (semantic rewrite);
    * ``"eva_flip"`` — index-probe ``flip_class.attr_name = value`` on the
      far side of ``eva``, then traverse the EVA's inverse back to
      candidate roots (semantic rewrite).
    """

    kind: str       # "scan" | "index" | "subclass" | "empty" | "eva_flip"
    class_name: str
    attr_name: Optional[str] = None
    value: object = None
    estimated_cost: float = 0.0
    estimated_rows: float = 0.0
    preserves_order: bool = True
    #: for "subclass": the pruned extent's class
    subclass: Optional[str] = None
    #: for "eva_flip": the EVA traversed root -> target, and the target class
    eva: object = None
    flip_class: Optional[str] = None
    #: for "empty": ("disjoint", other) or ("contradiction", pos, neg)
    proof: Optional[Tuple] = None

    def describe(self) -> str:
        if self.kind == "scan":
            return (f"scan {self.class_name} "
                    f"(cost {self.estimated_cost:.1f})")
        if self.kind == "subclass":
            return (f"subclass-prune {self.class_name} -> {self.subclass} "
                    f"(cost {self.estimated_cost:.1f})")
        if self.kind == "empty":
            return (f"empty {self.class_name} "
                    f"[{' '.join(str(p) for p in self.proof or ())}] (cost 0.0)")
        if self.kind == "eva_flip":
            return (f"eva-flip {self.class_name} via inverse({self.eva.name}) "
                    f"from {self.flip_class}.{self.attr_name} = "
                    f"{self.value!r} (cost {self.estimated_cost:.1f})")
        return (f"index {self.class_name}.{self.attr_name} = "
                f"{self.value!r} (cost {self.estimated_cost:.1f})")


@dataclass
class Plan:
    """A full strategy: one access path per root plus bookkeeping.

    ``root_order`` — evaluation order of the perspective variables.  When
    it differs from the FROM-list order, the transformation is not
    semantics-preserving (§5.1): the executor re-sorts the output into the
    perspective-implied order, and the optimizer charges that sort to the
    strategy.
    """

    root_access: Dict[str, AccessPath] = field(default_factory=dict)
    root_order: Optional[List[str]] = None
    estimated_cost: float = 0.0
    description: str = "canonical nested loops"
    #: node id -> estimated instance count (EXPLAIN ANALYZE's "est" column;
    #: filled in by Optimizer.choose_plan for the winning strategy)
    node_estimates: Dict[int, float] = field(default_factory=dict)
    #: human-readable summary of the semantic rewrites applied to the
    #: statement ("none" when the rewrite phase ran but found nothing;
    #: None when the phase was disabled)
    rewrite: Optional[str] = None

    def root_iterator(self, node: QTNode, executor):
        """Domain iterator for a root node, or None for the default scan."""
        access = self.root_access.get(node.var_name)
        if access is None or access.kind == "scan":
            return None
        store = executor.store
        if access.kind == "empty":
            return iter(())
        if access.kind == "subclass":
            surrogates = [s for s in store.scan_class(access.subclass)
                          if store.has_role(s, access.class_name)]
            return iter(sorted(surrogates))
        if access.kind == "eva_flip":
            matches = store.find_by_dva(access.flip_class, access.attr_name,
                                        access.value)
            candidates = set()
            inverse = access.eva.inverse
            for target in matches:
                for source in store.eva_targets(target, inverse):
                    if store.has_role(source, access.class_name):
                        candidates.add(source)
            return iter(sorted(candidates))
        surrogates = store.find_by_dva(access.class_name, access.attr_name,
                                       access.value)
        # Re-sort by surrogate: preserves the perspective-implied ordering
        # the index lookup broke (the plan's cost includes this sort).
        return iter(sorted(surrogates))

    def describe(self) -> str:
        lines = [f"plan: {self.description} "
                 f"(estimated cost {self.estimated_cost:.1f})"]
        if self.rewrite is not None:
            lines.append(f"  rewrite: {self.rewrite}")
        if self.root_order is not None:
            lines.append("  loop order: " + " > ".join(self.root_order)
                         + "  [re-sorted to perspective order]")
        for var, access in self.root_access.items():
            lines.append(f"  {var}: {access.describe()}")
        return "\n".join(lines)
