"""Date and time values for SIM DVAs.

SIM declares DVAs of type ``date`` (e.g. BIRTHDATE in the UNIVERSITY
schema).  We implement a small immutable date/time pair on top of the
proleptic Gregorian calendar via :mod:`datetime`, with SIM-flavoured
parsing: ISO ``YYYY-MM-DD`` and US ``MM/DD/YYYY`` literals are accepted.
"""

from __future__ import annotations

import datetime
import functools
from typing import Union

from repro.errors import TypeMismatchError


@functools.total_ordering
class SimDate:
    """An immutable calendar date, totally ordered, hashable."""

    __slots__ = ("_date",)

    def __init__(self, year: int, month: int, day: int):
        try:
            self._date = datetime.date(year, month, day)
        except ValueError as exc:
            raise TypeMismatchError(
                f"invalid date {year}-{month}-{day}: {exc}") from exc

    @classmethod
    def parse(cls, text: str) -> "SimDate":
        """Parse ``YYYY-MM-DD`` or ``MM/DD/YYYY``."""
        text = text.strip()
        for fmt in ("%Y-%m-%d", "%m/%d/%Y"):
            try:
                d = datetime.datetime.strptime(text, fmt).date()
                return cls(d.year, d.month, d.day)
            except ValueError:
                continue
        raise TypeMismatchError(f"cannot parse date literal {text!r}")

    @classmethod
    def from_ordinal(cls, ordinal: int) -> "SimDate":
        d = datetime.date.fromordinal(ordinal)
        return cls(d.year, d.month, d.day)

    @property
    def year(self) -> int:
        return self._date.year

    @property
    def month(self) -> int:
        return self._date.month

    @property
    def day(self) -> int:
        return self._date.day

    def ordinal(self) -> int:
        """Days since 0001-01-01; the storage representation of a date."""
        return self._date.toordinal()

    def add_days(self, days: int) -> "SimDate":
        from repro.types.tvl import NULL, is_null
        if is_null(days):
            # 3VL: date arithmetic with a null offset is null.
            return NULL
        if isinstance(days, bool) or not isinstance(days, int):
            raise TypeMismatchError(
                f"date offset must be an integer day count, "
                f"got {type(days).__name__}")
        try:
            d = self._date + datetime.timedelta(days=days)
        except OverflowError as exc:
            raise TypeMismatchError(
                f"date out of range: {self} {days:+d} days leaves the "
                f"calendar (0001-01-01 .. 9999-12-31)") from exc
        return SimDate(d.year, d.month, d.day)

    def days_until(self, other: "SimDate") -> int:
        from repro.types.tvl import NULL, is_null
        if is_null(other):
            # 3VL: the distance to an unknown date is unknown.
            return NULL
        if not isinstance(other, SimDate):
            raise TypeMismatchError(
                f"days-until needs a date operand, "
                f"got {type(other).__name__}")
        return (other._date - self._date).days

    def __eq__(self, other):
        return isinstance(other, SimDate) and self._date == other._date

    def __lt__(self, other):
        if not isinstance(other, SimDate):
            raise TypeMismatchError(f"cannot compare date with {type(other).__name__}")
        return self._date < other._date

    def __hash__(self):
        return hash(("SimDate", self._date))

    def __repr__(self):
        return f"SimDate({self.year}, {self.month}, {self.day})"

    def __str__(self):
        return self._date.isoformat()


@functools.total_ordering
class SimTime:
    """An immutable time of day with second resolution."""

    __slots__ = ("_seconds",)

    def __init__(self, hour: int, minute: int = 0, second: int = 0):
        if not (0 <= hour < 24 and 0 <= minute < 60 and 0 <= second < 60):
            raise TypeMismatchError(
                f"invalid time {hour:02d}:{minute:02d}:{second:02d}")
        self._seconds = hour * 3600 + minute * 60 + second

    @classmethod
    def parse(cls, text: str) -> "SimTime":
        """Parse ``HH:MM`` or ``HH:MM:SS``."""
        parts = text.strip().split(":")
        if len(parts) not in (2, 3):
            raise TypeMismatchError(f"cannot parse time literal {text!r}")
        try:
            numbers = [int(p) for p in parts]
        except ValueError as exc:
            raise TypeMismatchError(f"cannot parse time literal {text!r}") from exc
        while len(numbers) < 3:
            numbers.append(0)
        return cls(*numbers)

    @classmethod
    def from_seconds(cls, seconds: int) -> "SimTime":
        seconds %= 86400
        return cls(seconds // 3600, (seconds % 3600) // 60, seconds % 60)

    @property
    def hour(self) -> int:
        return self._seconds // 3600

    @property
    def minute(self) -> int:
        return (self._seconds % 3600) // 60

    @property
    def second(self) -> int:
        return self._seconds % 60

    def seconds(self) -> int:
        """Seconds since midnight; the storage representation of a time."""
        return self._seconds

    def __eq__(self, other):
        return isinstance(other, SimTime) and self._seconds == other._seconds

    def __lt__(self, other):
        if not isinstance(other, SimTime):
            raise TypeMismatchError(f"cannot compare time with {type(other).__name__}")
        return self._seconds < other._seconds

    def __hash__(self):
        return hash(("SimTime", self._seconds))

    def __repr__(self):
        return f"SimTime({self.hour}, {self.minute}, {self.second})"

    def __str__(self):
        return f"{self.hour:02d}:{self.minute:02d}:{self.second:02d}"


DateLike = Union[SimDate, str]
