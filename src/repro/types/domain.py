"""Data types (value domains) for SIM DVAs.

Each :class:`DataType` can validate and coerce candidate values, compare
values, and render values for output.  Types are immutable and hashable so
they may be shared between attributes and stored in the catalog.

The paper's type constructs (§7 example schema):

* ``integer (1001..39999, 60001..99999)`` — integers with range conditions
  (:class:`IntegerType`);
* ``number[9,2]`` — fixed-point decimal with precision and scale
  (:class:`NumberType`);
* ``string[30]`` — bounded strings (:class:`StringType`);
* ``date`` — calendar dates (:class:`DateType`);
* ``symbolic (BS, MBA, MS, PHD)`` — enumerations (:class:`SymbolicType`);
* ``subrole (student, instructor)`` — system-maintained role enumerations
  (:class:`SubroleType`).

Named types (``Type id-number = ...``) live in a :class:`TypeRegistry`.
"""

from __future__ import annotations

from decimal import Decimal, InvalidOperation, ROUND_HALF_UP
from typing import Iterable, Optional, Sequence, Tuple

from repro.errors import TypeDefinitionError, TypeMismatchError
from repro.types.dates import SimDate, SimTime
from repro.types.tvl import NULL, is_null


class DataType:
    """Abstract base for all SIM data types."""

    #: short family keyword used in DDL rendering ("integer", "string", ...)
    family = "abstract"

    def validate(self, value):
        """Coerce ``value`` into this domain or raise :class:`TypeMismatchError`.

        NULL passes through every type; REQUIRED is an attribute option, not
        a type property.
        """
        if is_null(value):
            return NULL
        return self._coerce(value)

    def _coerce(self, value):
        raise NotImplementedError

    def contains(self, value) -> bool:
        """True when ``value`` (non-null) is a member of this domain."""
        try:
            self.validate(value)
            return True
        except TypeMismatchError:
            return False

    def render(self, value) -> str:
        """Human-readable rendering used by tabular output."""
        if is_null(value):
            return "?"
        return str(value)

    def ddl(self) -> str:
        """Render the type in DDL syntax."""
        raise NotImplementedError

    def __repr__(self):
        return f"<{type(self).__name__} {self.ddl()}>"

    def __eq__(self, other):
        return type(self) is type(other) and self._key() == other._key()

    def __hash__(self):
        return hash((type(self).__name__,) + self._key())

    def _key(self) -> tuple:
        return ()


class IntegerType(DataType):
    """Integers, optionally restricted to a union of inclusive ranges."""

    family = "integer"

    def __init__(self, ranges: Optional[Sequence[Tuple[int, int]]] = None):
        normalized = []
        for low, high in ranges or ():
            if low > high:
                raise TypeDefinitionError(f"empty integer range {low}..{high}")
            normalized.append((int(low), int(high)))
        self.ranges: Tuple[Tuple[int, int], ...] = tuple(sorted(normalized))

    def _coerce(self, value):
        if isinstance(value, bool):
            raise TypeMismatchError("boolean is not an integer")
        if isinstance(value, int):
            result = value
        elif isinstance(value, float) and value.is_integer():
            result = int(value)
        elif isinstance(value, str):
            try:
                result = int(value.strip())
            except ValueError as exc:
                raise TypeMismatchError(f"{value!r} is not an integer") from exc
        else:
            raise TypeMismatchError(f"{value!r} is not an integer")
        if self.ranges and not any(low <= result <= high for low, high in self.ranges):
            ranges = ", ".join(f"{lo}..{hi}" for lo, hi in self.ranges)
            raise TypeMismatchError(f"{result} outside integer ranges ({ranges})")
        return result

    def ddl(self) -> str:
        if not self.ranges:
            return "integer"
        spec = ", ".join(f"{lo}..{hi}" for lo, hi in self.ranges)
        return f"integer ({spec})"

    def _key(self):
        return (self.ranges,)


class NumberType(DataType):
    """Fixed-point decimal ``number[precision, scale]`` (paper: number[9,2])."""

    family = "number"

    def __init__(self, precision: int = 11, scale: int = 0):
        if precision <= 0 or scale < 0 or scale > precision:
            raise TypeDefinitionError(f"invalid number[{precision},{scale}]")
        self.precision = precision
        self.scale = scale
        self._quantum = Decimal(1).scaleb(-scale)
        self._limit = Decimal(10) ** (precision - scale)

    def _coerce(self, value):
        if isinstance(value, bool):
            raise TypeMismatchError("boolean is not a number")
        if isinstance(value, Decimal):
            candidate = value
        elif isinstance(value, (int, str)):
            try:
                candidate = Decimal(str(value).strip())
            except InvalidOperation as exc:
                raise TypeMismatchError(f"{value!r} is not a number") from exc
        elif isinstance(value, float):
            candidate = Decimal(repr(value))
        else:
            raise TypeMismatchError(f"{value!r} is not a number")
        quantized = candidate.quantize(self._quantum, rounding=ROUND_HALF_UP)
        if abs(quantized) >= self._limit:
            raise TypeMismatchError(
                f"{value} exceeds number[{self.precision},{self.scale}]"
            )
        return quantized

    def render(self, value) -> str:
        if is_null(value):
            return "?"
        return f"{value:.{self.scale}f}" if self.scale else str(value)

    def ddl(self) -> str:
        return f"number[{self.precision},{self.scale}]"

    def _key(self):
        return (self.precision, self.scale)


class RealType(DataType):
    """Floating-point reals (host-language doubles)."""

    family = "real"

    def _coerce(self, value):
        if isinstance(value, bool):
            raise TypeMismatchError("boolean is not a real")
        if isinstance(value, (int, float, Decimal)):
            return float(value)
        if isinstance(value, str):
            try:
                return float(value.strip())
            except ValueError as exc:
                raise TypeMismatchError(f"{value!r} is not a real") from exc
        raise TypeMismatchError(f"{value!r} is not a real")

    def ddl(self) -> str:
        return "real"


class StringType(DataType):
    """Bounded strings ``string[maxlen]``; unbounded when maxlen is None."""

    family = "string"

    def __init__(self, max_length: Optional[int] = None):
        if max_length is not None and max_length <= 0:
            raise TypeDefinitionError(f"invalid string length {max_length}")
        self.max_length = max_length

    def _coerce(self, value):
        if not isinstance(value, str):
            raise TypeMismatchError(f"{value!r} is not a string")
        if self.max_length is not None and len(value) > self.max_length:
            raise TypeMismatchError(
                f"string of length {len(value)} exceeds string[{self.max_length}]"
            )
        return value

    def ddl(self) -> str:
        if self.max_length is None:
            return "string"
        return f"string[{self.max_length}]"

    def _key(self):
        return (self.max_length,)


class BooleanType(DataType):
    """Booleans; participate in 3-valued logic when null."""

    family = "boolean"

    def _coerce(self, value):
        if isinstance(value, bool):
            return value
        if isinstance(value, str):
            lowered = value.strip().lower()
            if lowered in ("true", "t", "yes"):
                return True
            if lowered in ("false", "f", "no"):
                return False
        raise TypeMismatchError(f"{value!r} is not a boolean")

    def ddl(self) -> str:
        return "boolean"


class DateType(DataType):
    """Calendar dates (see :class:`repro.types.dates.SimDate`)."""

    family = "date"

    def _coerce(self, value):
        if isinstance(value, SimDate):
            return value
        if isinstance(value, str):
            return SimDate.parse(value)
        raise TypeMismatchError(f"{value!r} is not a date")

    def ddl(self) -> str:
        return "date"


class TimeType(DataType):
    """Times of day (see :class:`repro.types.dates.SimTime`)."""

    family = "time"

    def _coerce(self, value):
        if isinstance(value, SimTime):
            return value
        if isinstance(value, str):
            return SimTime.parse(value)
        raise TypeMismatchError(f"{value!r} is not a time")

    def ddl(self) -> str:
        return "time"


class SymbolicType(DataType):
    """Enumerated types: ``symbolic (BS, MBA, MS, PHD)``.

    Values are case-insensitive symbols stored in canonical (declared) form.
    """

    family = "symbolic"

    def __init__(self, values: Iterable[str]):
        canonical = tuple(values)
        if not canonical:
            raise TypeDefinitionError("symbolic type needs at least one value")
        lowered = [v.lower() for v in canonical]
        if len(set(lowered)) != len(lowered):
            raise TypeDefinitionError(f"duplicate symbolic values in {canonical}")
        self.values = canonical
        self._by_lower = {v.lower(): v for v in canonical}

    def _coerce(self, value):
        if isinstance(value, str):
            canonical = self._by_lower.get(value.strip().lower())
            if canonical is not None:
                return canonical
        raise TypeMismatchError(
            f"{value!r} is not one of symbolic values {self.values}"
        )

    def ddl(self) -> str:
        return f"symbolic ({', '.join(self.values)})"

    def _key(self):
        return (self.values,)


class SubroleType(DataType):
    """System-maintained role enumeration (paper §3.2).

    A subrole attribute of class C enumerates the names of C's immediate
    subclasses; its value for an entity is the (multi)set of roles the
    entity currently holds.  Subrole attributes are read-only to users; the
    engine writes them when roles are acquired or dropped.
    """

    family = "subrole"

    def __init__(self, subclass_names: Iterable[str]):
        canonical = tuple(subclass_names)
        if not canonical:
            raise TypeDefinitionError("subrole type needs at least one subclass")
        self.subclass_names = canonical
        self._by_lower = {v.lower(): v for v in canonical}

    def _coerce(self, value):
        if isinstance(value, str):
            canonical = self._by_lower.get(value.strip().lower())
            if canonical is not None:
                return canonical
        raise TypeMismatchError(
            f"{value!r} is not one of subroles {self.subclass_names}"
        )

    def ddl(self) -> str:
        return f"subrole ({', '.join(self.subclass_names)})"

    def _key(self):
        return (self.subclass_names,)


class SurrogateType(DataType):
    """System-defined entity identifiers (paper §3.1).

    Surrogates are opaque, unique, non-null, immutable integers assigned by
    the system when a base-class entity is created.
    """

    family = "surrogate"

    def _coerce(self, value):
        if isinstance(value, bool) or not isinstance(value, int):
            raise TypeMismatchError(f"{value!r} is not a surrogate")
        if value < 0:
            raise TypeMismatchError(f"surrogate {value} is negative")
        return value

    def ddl(self) -> str:
        return "surrogate"


def _normalize_type_name(name: str) -> str:
    return name.strip().lower().replace("_", "-")


class TypeRegistry:
    """Registry of named types (``Type id-number = integer (...)``).

    Lookup is case-insensitive and hyphen/underscore-insensitive, matching
    SIM identifier conventions.
    """

    def __init__(self):
        self._types = {}

    def define(self, name: str, data_type: DataType) -> None:
        key = _normalize_type_name(name)
        if key in self._types:
            raise TypeDefinitionError(f"type {name!r} already defined")
        self._types[key] = data_type

    def lookup(self, name: str) -> DataType:
        key = _normalize_type_name(name)
        try:
            return self._types[key]
        except KeyError:
            raise TypeDefinitionError(f"unknown type {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return _normalize_type_name(name) in self._types

    def names(self):
        return sorted(self._types)


#: The built-in (unparameterized) types available in every schema.
STANDARD_TYPES = {
    "integer": IntegerType(),
    "number": NumberType(),
    "real": RealType(),
    "string": StringType(),
    "boolean": BooleanType(),
    "date": DateType(),
    "time": TimeType(),
}
