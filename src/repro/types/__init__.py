"""SIM type system: data types, nulls and three-valued logic.

SIM is strongly typed (paper §2, §3.2): every DVA has a declared data type
drawn from integers with range conditions, fixed-point numbers, strings,
dates, times, booleans, symbolic (enumerated) types and system-maintained
subrole types.  Named types may be declared once (``Type id-number =
integer (1001..39999, 60001..99999)``) and reused.

Null values represent both "unknown" and "inapplicable" (paper §3.2.1) and
expression evaluation follows three-valued logic (paper §4.9), provided by
:mod:`repro.types.tvl`.
"""

from repro.types.tvl import (
    NULL,
    UNKNOWN,
    Null,
    Unknown,
    is_null,
    tvl_and,
    tvl_or,
    tvl_not,
    tvl_from_bool,
    tvl_is_true,
)
from repro.types.dates import SimDate, SimTime
from repro.types.domain import (
    DataType,
    IntegerType,
    NumberType,
    RealType,
    StringType,
    BooleanType,
    DateType,
    TimeType,
    SymbolicType,
    SubroleType,
    TypeRegistry,
    STANDARD_TYPES,
)

__all__ = [
    "NULL",
    "UNKNOWN",
    "Null",
    "Unknown",
    "is_null",
    "tvl_and",
    "tvl_or",
    "tvl_not",
    "tvl_from_bool",
    "tvl_is_true",
    "SimDate",
    "SimTime",
    "DataType",
    "IntegerType",
    "NumberType",
    "RealType",
    "StringType",
    "BooleanType",
    "DateType",
    "TimeType",
    "SymbolicType",
    "SubroleType",
    "TypeRegistry",
    "STANDARD_TYPES",
]
