"""Null values and three-valued logic.

The paper (§4.9): "Null values are treated uniformly in expression
evaluation, and SIM follows the 3-valued logic."  A null stands for both
"unknown" and "inapplicable" (§3.2.1).

We model the null *value* with the singleton :data:`NULL` and the unknown
*truth value* with the singleton :data:`UNKNOWN`.  Boolean connectives over
{True, False, UNKNOWN} follow Kleene logic:

====== ======= =========
 AND    OR      NOT
====== ======= =========
T∧U=U   T∨U=T   ¬U=U
F∧U=F   F∨U=U
U∧U=U   U∨U=U
====== ======= =========

A WHERE clause selects a row only when its selection expression evaluates
to *true* — UNKNOWN rows are rejected, exactly as in the paper's semantics
program (§4.5: "if <selection expression> is true then print").
"""

from __future__ import annotations


class Null:
    """Singleton null value.  Use the module-level :data:`NULL` instance.

    NULL is not equal to anything, including itself, under SIM comparison
    semantics; Python-level ``==`` is identity-based so that NULL can live
    in dicts and sets (e.g. grouping keys treat nulls as one group, as SQL
    and SIM output formatting do).
    """

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self):
        return "NULL"

    def __bool__(self):
        return False

    def __deepcopy__(self, memo):
        return self

    def __copy__(self):
        return self

    def __reduce__(self):
        return (Null, ())


class Unknown:
    """Singleton unknown truth value.  Use the module-level :data:`UNKNOWN`."""

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self):
        return "UNKNOWN"

    def __bool__(self):
        # Truthiness follows the WHERE-clause rule: only TRUE selects.
        return False

    def __deepcopy__(self, memo):
        return self

    def __copy__(self):
        return self

    def __reduce__(self):
        return (Unknown, ())


NULL = Null()
UNKNOWN = Unknown()


def is_null(value) -> bool:
    """True when ``value`` is the SIM null (or Python ``None`` from hosts)."""
    return value is NULL or value is None


def tvl_from_bool(value):
    """Lift a Python bool (or UNKNOWN) into the 3-valued domain."""
    if value is UNKNOWN:
        return UNKNOWN
    return bool(value)


def tvl_and(left, right):
    """Kleene conjunction over {True, False, UNKNOWN}."""
    if left is False or right is False:
        return False
    if left is UNKNOWN or right is UNKNOWN:
        return UNKNOWN
    return True


def tvl_or(left, right):
    """Kleene disjunction over {True, False, UNKNOWN}."""
    if left is True or right is True:
        return True
    if left is UNKNOWN or right is UNKNOWN:
        return UNKNOWN
    return False


def tvl_not(value):
    """Kleene negation."""
    if value is UNKNOWN:
        return UNKNOWN
    return not value


def tvl_is_true(value) -> bool:
    """The WHERE-clause test: selects only definite truth."""
    return value is True
