"""Read-path performance counters.

One :class:`PerfCounters` instance lives on each
:class:`~repro.mapper.store.MapperStore` and is shared by every layer of
the read path: the Mapper's decoded-record / role / EVA fan-out caches
(:mod:`repro.mapper.read_cache`), the engine's query-scoped memoization
(:mod:`repro.engine.access`), and the executor's existential-loop
hoisting.  The counters make speedups *attributable*: a benchmark that
claims a cache win can report the hit rate that produced it, and the
optimizer's cost model reads the observed hit rate to discount
cached-access costs (its "learned" §5.1 parameter).

Counters are plain integers; ``snapshot``/``delta`` support per-query
accounting (the executor attaches a delta to every ``ResultSet``).
"""

from __future__ import annotations

from typing import Dict

#: every counter, in reporting order
COUNTER_FIELDS = (
    "record_cache_hits",      # decoded-record cache
    "record_cache_misses",
    "role_cache_hits",        # has_role / surrogate-rid cache
    "role_cache_misses",
    "fanout_cache_hits",      # EVA fan-out cache
    "fanout_cache_misses",
    "memo_hits",              # engine-level query-scoped memoization
    "memo_misses",
    "records_decoded",        # physical records decoded into dicts
    "domain_enumerations",    # node domains actually enumerated
    "index_selections",       # update/VERIFY selections served by an index
    "invalidations",          # cache invalidation events (incl. undo paths)
    "transient_retries",      # transient I/O faults absorbed by retry
    "transient_giveups",      # transient faults that exhausted the policy
)


class PerfCounters:
    """Counters for one store's read path."""

    __slots__ = COUNTER_FIELDS

    def __init__(self, **initial: int):
        for name in COUNTER_FIELDS:
            setattr(self, name, initial.get(name, 0))

    # -- Arithmetic -------------------------------------------------------------

    def snapshot(self) -> "PerfCounters":
        return PerfCounters(**self.as_dict())

    def delta(self, earlier: "PerfCounters") -> "PerfCounters":
        return PerfCounters(**{
            name: getattr(self, name) - getattr(earlier, name)
            for name in COUNTER_FIELDS})

    def reset(self) -> None:
        for name in COUNTER_FIELDS:
            setattr(self, name, 0)

    def as_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in COUNTER_FIELDS}

    # -- Derived rates ----------------------------------------------------------

    def read_hit_rate(self) -> float:
        """Fraction of Mapper-level cached reads (records + fan-out)
        served from cache; 0.0 before any lookups."""
        hits = self.record_cache_hits + self.fanout_cache_hits
        total = (hits + self.record_cache_misses
                 + self.fanout_cache_misses)
        return hits / total if total else 0.0

    def overall_hit_rate(self) -> float:
        """Hit rate across every cache layer, memoization included."""
        hits = (self.record_cache_hits + self.role_cache_hits
                + self.fanout_cache_hits + self.memo_hits)
        total = hits + (self.record_cache_misses + self.role_cache_misses
                        + self.fanout_cache_misses + self.memo_misses)
        return hits / total if total else 0.0

    def describe(self) -> str:
        lines = [f"  {name}: {getattr(self, name)}"
                 for name in COUNTER_FIELDS]
        lines.append(f"  read_hit_rate: {self.read_hit_rate():.3f}")
        lines.append(f"  overall_hit_rate: {self.overall_hit_rate():.3f}")
        return "\n".join(lines)

    def __repr__(self):
        inner = ", ".join(f"{name}={getattr(self, name)}"
                          for name in COUNTER_FIELDS
                          if getattr(self, name))
        return f"PerfCounters({inner})"
