"""Read-path performance counters and trace histograms.

One :class:`PerfCounters` instance lives on each
:class:`~repro.mapper.store.MapperStore` and is shared by every layer of
the read path: the Mapper's decoded-record / role / EVA fan-out caches
(:mod:`repro.mapper.read_cache`), the engine's query-scoped memoization
(:mod:`repro.engine.access`), and the executor's existential-loop
hoisting.  The counters make speedups *attributable*: a benchmark that
claims a cache win can report the hit rate that produced it, and the
optimizer's cost model reads the observed hit rate to discount
cached-access costs (its "learned" §5.1 parameter).

Increments go through :meth:`PerfCounters.bump`, which holds a lock: the
2PL lock manager (:mod:`repro.engine.sessions`) allows statements from
several sessions to interleave, and nothing stops a host program from
driving those sessions from threads — a bare read-modify-write of a
counter attribute would lose updates.  ``snapshot``/``delta`` (taken
under the same lock) support per-query accounting: the executor attaches
a delta to every ``ResultSet``.

:class:`TraceHistograms` aggregates the tracing subsystem's distribution
metrics — latency per Figure-1 layer and rows per query-tree node — in
power-of-two buckets (see :mod:`repro.trace`).
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, Tuple

#: every counter, in reporting order
COUNTER_FIELDS = (
    "record_cache_hits",      # decoded-record cache
    "record_cache_misses",
    "role_cache_hits",        # has_role / surrogate-rid cache
    "role_cache_misses",
    "fanout_cache_hits",      # EVA fan-out cache
    "fanout_cache_misses",
    "memo_hits",              # engine-level query-scoped memoization
    "memo_misses",
    "records_decoded",        # physical records decoded into dicts
    "domain_enumerations",    # node domains actually enumerated
    "index_selections",       # update/VERIFY selections served by an index
    "invalidations",          # cache invalidation events (incl. undo paths)
    "transient_retries",      # transient I/O faults absorbed by retry
    "transient_giveups",      # transient faults that exhausted the policy
    "batches_dispatched",     # operator batches that flowed between operators
    "batch_rows",             # slot rows carried by those batches
    "rewrite_statements",     # statements run through the semantic rewriter
    "rewrite_subclass_prunes",  # subclass-extent prunings offered
    "rewrite_empty_extents",  # provably-empty short-circuits (SIM400)
    "rewrite_eva_flips",      # EVA-inverse direction flips offered
    "rewrite_exists_reorders",  # TYPE 2 sibling reorderings applied
    "rewrite_traversal_factorings",  # shared-domain-key groups assigned
    "materialized_hits",      # traversals served from a materialization
    "materialized_misses",    # probes that found a stale/uncovered mat
)


class PerfCounters:
    """Counters for one store's read path.  Increment via :meth:`bump`;
    all reads and writes of the counter set are lock-protected so
    concurrently driven sessions cannot lose updates."""

    __slots__ = COUNTER_FIELDS + ("_lock",)

    def __init__(self, **initial: int):
        self._lock = threading.Lock()
        for name in COUNTER_FIELDS:
            setattr(self, name, initial.get(name, 0))

    def bump(self, name: str, amount: int = 1) -> None:
        """Atomically add ``amount`` to one counter."""
        with self._lock:
            setattr(self, name, getattr(self, name) + amount)

    # -- Arithmetic -------------------------------------------------------------

    def snapshot(self) -> "PerfCounters":
        return PerfCounters(**self.as_dict())

    def delta(self, earlier: "PerfCounters") -> "PerfCounters":
        mine = self.as_dict()
        theirs = earlier.as_dict()
        return PerfCounters(**{
            name: mine[name] - theirs[name] for name in COUNTER_FIELDS})

    def reset(self) -> None:
        with self._lock:
            for name in COUNTER_FIELDS:
                setattr(self, name, 0)

    def as_dict(self) -> Dict[str, int]:
        with self._lock:
            return {name: getattr(self, name) for name in COUNTER_FIELDS}

    # -- Derived rates ----------------------------------------------------------

    def read_hit_rate(self) -> float:
        """Fraction of Mapper-level cached reads (records + fan-out)
        served from cache; 0.0 before any lookups."""
        counts = self.as_dict()
        hits = counts["record_cache_hits"] + counts["fanout_cache_hits"]
        total = (hits + counts["record_cache_misses"]
                 + counts["fanout_cache_misses"])
        return hits / total if total else 0.0

    def overall_hit_rate(self) -> float:
        """Hit rate across every cache layer, memoization included."""
        counts = self.as_dict()
        hits = (counts["record_cache_hits"] + counts["role_cache_hits"]
                + counts["fanout_cache_hits"] + counts["memo_hits"])
        total = hits + (counts["record_cache_misses"]
                        + counts["role_cache_misses"]
                        + counts["fanout_cache_misses"]
                        + counts["memo_misses"])
        return hits / total if total else 0.0

    def describe(self) -> str:
        counts = self.as_dict()
        lines = [f"  {name}: {counts[name]}" for name in COUNTER_FIELDS]
        lines.append(f"  read_hit_rate: {self.read_hit_rate():.3f}")
        lines.append(f"  overall_hit_rate: {self.overall_hit_rate():.3f}")
        return "\n".join(lines)

    def __repr__(self):
        counts = self.as_dict()
        inner = ", ".join(f"{name}={counts[name]}"
                          for name in COUNTER_FIELDS if counts[name])
        return f"PerfCounters({inner})"


class PowerOfTwoHistogram:
    """A sparse histogram over non-negative values with power-of-two
    bucket boundaries: bucket ``i`` holds values in ``[2**(i-1), 2**i)``
    (bucket 0 holds values < 1)."""

    __slots__ = ("buckets", "count", "total")

    def __init__(self):
        self.buckets: Dict[int, int] = {}
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        bucket = int(value).bit_length() if value >= 1 else 0
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1
        self.count += 1
        self.total += value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def items(self) -> Iterable[Tuple[int, int]]:
        return sorted(self.buckets.items())

    def as_dict(self) -> Dict[str, object]:
        return {"count": self.count,
                "mean": round(self.mean, 4),
                "buckets": {str(2 ** b if b else 0): n
                            for b, n in self.items()}}

    def __repr__(self):
        return f"<PowerOfTwoHistogram n={self.count} mean={self.mean:.2f}>"


class TraceHistograms:
    """Distribution metrics the tracing subsystem aggregates:

    * ``latency`` — per-layer span latency in microseconds, keyed by the
      Figure-1 layer name (``parser``, ``qualifier``, ``optimizer``,
      ``executor``, ``engine``, ``driver``...);
    * ``rows`` — rows produced per query-tree node, keyed by the node's
      §4.5 TYPE label.
    """

    __slots__ = ("latency", "rows")

    def __init__(self):
        self.latency: Dict[str, PowerOfTwoHistogram] = {}
        self.rows: Dict[str, PowerOfTwoHistogram] = {}

    def observe_latency(self, layer: str, milliseconds: float) -> None:
        histogram = self.latency.get(layer)
        if histogram is None:
            histogram = self.latency[layer] = PowerOfTwoHistogram()
        histogram.observe(milliseconds * 1000.0)   # microsecond buckets

    def observe_rows(self, label: str, rows: int) -> None:
        histogram = self.rows.get(label)
        if histogram is None:
            histogram = self.rows[label] = PowerOfTwoHistogram()
        histogram.observe(rows)

    def reset(self) -> None:
        self.latency.clear()
        self.rows.clear()

    def as_dict(self) -> Dict[str, object]:
        return {
            "latency_us": {layer: h.as_dict()
                           for layer, h in sorted(self.latency.items())},
            "rows_per_node": {label: h.as_dict()
                              for label, h in sorted(self.rows.items())},
        }

    def describe(self) -> str:
        lines = ["  latency per layer (µs):"]
        for layer, histogram in sorted(self.latency.items()):
            lines.append(f"    {layer:<12} n={histogram.count:<6} "
                         f"mean={histogram.mean:.1f}")
        lines.append("  rows per node:")
        for label, histogram in sorted(self.rows.items()):
            lines.append(f"    {label:<12} n={histogram.count:<6} "
                         f"mean={histogram.mean:.1f}")
        return "\n".join(lines)
