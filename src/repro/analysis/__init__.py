"""simcheck: compile-time diagnostics for SIM schemas, DML and plans.

Three analyzers share one diagnostics framework
(:mod:`repro.analysis.diagnostics`):

* :func:`lint_schema` — structural DDL lint (generalization DAG, inverse
  symmetry, subroles, VERIFY assertions, unused types);
* :func:`lint_retrieve` / :func:`lint_update` — type checking and update
  preconditions over the DML AST, before execution;
* :func:`verify_plan` — the post-optimization structural contract between
  the labelled query tree and the optimizer's plan (fail closed);
* :func:`lint_concurrency_paths` — SIM3xx lock-discipline lint over the
  engine's own Python source, driven by the declared rank hierarchy in
  :mod:`repro.analysis.lock_order`.

``python -m repro lint <schema.ddl> [queries.dml ...]`` runs them from the
command line (:mod:`repro.analysis.cli`);
``python -m repro lint --concurrency`` runs the concurrency pass.
"""

from repro.analysis.diagnostics import (
    Diagnostic,
    DiagnosticSink,
    ERROR,
    INFO,
    RULES,
    Rule,
    WARNING,
    exception_for,
    raise_for_errors,
)
from repro.analysis.concurrency import (
    lint_concurrency_paths,
    lint_concurrency_source,
)
from repro.analysis.lock_order import LOCK_RANKS
from repro.analysis.plan_verify import verify_physical, verify_plan
from repro.analysis.query_lint import lint_retrieve, lint_update
from repro.analysis.schema_lint import lint_schema

__all__ = [
    "Diagnostic",
    "DiagnosticSink",
    "ERROR",
    "INFO",
    "RULES",
    "Rule",
    "WARNING",
    "LOCK_RANKS",
    "exception_for",
    "lint_concurrency_paths",
    "lint_concurrency_source",
    "lint_retrieve",
    "lint_schema",
    "lint_update",
    "raise_for_errors",
    "verify_physical",
    "verify_plan",
]
