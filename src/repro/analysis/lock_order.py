"""The declared lock-rank hierarchy and lint site tables.

This is the single source of truth for lock discipline across the
engine, shared by two consumers:

* the **static layer** (:mod:`repro.analysis.concurrency`) reads the
  tables below to flag SIM3xx violations lexically, and
* the **dynamic layer** (:mod:`repro.engine.lockdep`) reads
  :data:`LOCK_RANKS` at runtime to validate actual acquisition order.

The hierarchy (low rank = innermost / leaf, high rank = outermost)::

    storage.wal           ( 6)   WriteAheadLog._mutex
      < storage.buffer    (10)   BufferPool._lock
      < mapper.read_cache (20)   ReadCache._lock
      < mapper.materialized (22)  MaterializationManager._lock
      < mapper.writes     (24)   WriteNotifier._lock
      < mapper.versions   (30)   VersionManager._mutex
      < store.commit_latch (36)  MapperStore.commit_latch
      < store.surrogates  (38)   MapperStore._surrogate_mutex
      < store.unit_latch  (42)   RecordFile.latch (one per storage unit)
      < sessions.class_locks (50)  LockManager._mutex/_cond
      < storage.transactions (60)  TransactionManager._mutex
      < server.connections (70)  SimServer._conn_lock/_drained
      < server.gate        (75)  _AdmissionGate._mutex
      < server.client      (80)  SimClient._lock

The rule enforced at runtime is **descending acquisition**: a thread
holding a ranked lock may only acquire locks of *strictly lower* rank
(re-entrant re-acquisition of the same lock object is exempt).  Notes
that keep the runtime edge set acyclic:

* ``Session._execute_locked`` finishes all class/entity-lock traffic
  (rank 50, condition released between grants) *before* any store
  mutation acquires a unit latch (rank 42), so 50 is never held across
  42's acquisition;
* unit latches are **leaf-per-operation**: a store mutator latches the
  single storage unit it writes and releases before the next mutator
  runs, so two unit latches (same rank 42) are never nested — equal
  rank would trip lockdep, which is exactly the guard we want;
* the commit latch (36) is only taken by ``Session.commit`` with no
  unit latch held; inside it the commit path reaches versions (30),
  the pool (10) and the WAL (6) — all strictly descending;
* ``TransactionManager`` only takes its mutex (rank 60) in
  ``begin``/``begin_detached`` with an empty stack; commit bodies are
  serialized by ``store.commit_latch`` and abort/undo replay by the
  session's exclusive locks plus per-unit latches.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

# -- The declared hierarchy ----------------------------------------------------

#: lock-class name -> rank.  A thread holding rank R may only acquire
#: locks of rank strictly below R (descending acquisition).
LOCK_RANKS: Dict[str, int] = {
    "storage.wal": 6,
    "storage.buffer": 10,
    "mapper.read_cache": 20,
    "mapper.materialized": 22,
    "mapper.writes": 24,
    "mapper.versions": 30,
    "store.commit_latch": 36,
    "store.surrogates": 38,
    "store.unit_latch": 42,
    "sessions.class_locks": 50,
    "storage.transactions": 60,
    "server.connections": 70,
    "server.gate": 75,
    "server.client": 80,
}


def rank_of(name: str) -> Optional[int]:
    """Rank for a lock-class name; None for unranked (graph-only) locks."""
    return LOCK_RANKS.get(name)


# -- Static-lint site tables ---------------------------------------------------

#: module basename -> {attribute expression suffix -> lock-class name}.
#: The static linter resolves ``with self._lock:`` in buffer.py to the
#: ``storage.buffer`` rank via this table; attribute expressions are
#: matched on their dotted suffix (``self._lock``, ``store.commit_latch``).
LOCK_SITES: Dict[str, Dict[str, str]] = {
    "wal.py": {"self._mutex": "storage.wal"},
    "buffer.py": {"self._lock": "storage.buffer"},
    "read_cache.py": {"self._lock": "mapper.read_cache"},
    "materialized.py": {"self._lock": "mapper.materialized"},
    "writes.py": {"self._lock": "mapper.writes"},
    "versions.py": {"self._mutex": "mapper.versions"},
    "store.py": {"self.commit_latch": "store.commit_latch",
                 "self._surrogate_mutex": "store.surrogates"},
    "sessions.py": {"self._mutex": "sessions.class_locks",
                    "self._cond": "sessions.class_locks"},
    "transactions.py": {"self._mutex": "storage.transactions"},
    "server.py": {"self._conn_lock": "server.connections",
                  "self._drained": "server.connections",
                  "self._mutex": "server.gate",
                  "self._lock": "server.client"},
}

#: attribute suffixes that resolve to a lock class from ANY module
#: (cross-module references like ``with store.commit_latch:`` or a
#: record file's ``with unit.latch:``).
GLOBAL_LOCK_SITES: Dict[str, str] = {
    "commit_latch": "store.commit_latch",
    "latch": "store.unit_latch",
}

#: classes whose instances are mutated from multiple threads: SIM303
#: flags writes to their instance state outside a guarding ``with`` on a
#: lock (``__init__`` is exempt — instances are published after
#: construction).  TransactionManager and Disk are deliberately absent:
#: their mutation paths are serialized by the commit latch / exclusive
#: session locks / ``BufferPool._lock`` above them rather than by their
#: own mutexes.
THREADED_CLASSES = frozenset({
    "LockManager",
    "BufferPool",
    "ReadCache",
    "MaterializationManager",
    "WriteNotifier",
    "VersionManager",
    "SimServer",
    "_AdmissionGate",
})

#: module basenames whose module-level ``global`` writes SIM303 checks.
THREADED_MODULES = frozenset({
    "sessions.py", "buffer.py", "read_cache.py", "materialized.py",
    "writes.py", "versions.py", "server.py", "transactions.py",
    "store.py", "parallel.py", "wal.py",
})

#: blocking-call table for SIM302: method name -> substrings that mark a
#: receiver as the blocking kind (socket I/O, futures, WAL force).  A
#: call ``recv.<method>(...)`` lexically inside a ``with <lock>:`` body
#: is flagged when any hint appears in the receiver's dotted name.
BLOCKING_CALLS: Dict[str, Tuple[str, ...]] = {
    "force": ("wal",),
    "result": ("future", "fut"),
    "sendall": ("sock", "client", "conn"),
    "recv": ("sock", "conn"),
    "accept": ("sock", "server"),
    "connect": ("sock",),
    "readline": ("reader", "sock", "rfile"),
    "makefile": ("sock",),
}

#: attribute suffixes treated as condition variables for SIM302/SIM304
#: (a ``.wait()`` with no timeout on one of these blocks indefinitely
#: while holding the underlying lock).
CONDITION_HINTS: Tuple[str, ...] = ("cond", "_drained")

#: name endings treated as lock-like for SIM300/SIM301/SIM303 scoping.
LOCK_NAME_SUFFIXES: Tuple[str, ...] = (
    "lock", "mutex", "cond", "latch", "_drained",
)

#: lock-like-looking names that are NOT locks (semaphores, internals).
LOCK_NAME_EXCLUDE: Tuple[str, ...] = ("_slots", "_raw", "deadlock")


def is_lock_name(dotted: str) -> bool:
    """Heuristic: does a dotted attribute expression name a lock?"""
    leaf = dotted.rsplit(".", 1)[-1]
    low = leaf.lower()
    if any(low.endswith(bad) or bad in low for bad in LOCK_NAME_EXCLUDE):
        return False
    return any(low.endswith(suffix) for suffix in LOCK_NAME_SUFFIXES)


def site_rank(module_basename: str, dotted: str) -> Optional[str]:
    """Resolve a ``with``-target attribute expression to a lock-class
    name using the per-module table, then the global table."""
    sites = LOCK_SITES.get(module_basename, {})
    for suffix, lock_class in sites.items():
        if dotted == suffix or dotted.endswith("." + suffix):
            return lock_class
    leaf = dotted.rsplit(".", 1)[-1]
    return GLOBAL_LOCK_SITES.get(leaf)


def describe_hierarchy() -> str:
    """Human-readable one-line-per-rank rendering (used by docs/CLI)."""
    lines = []
    for name, rank in sorted(LOCK_RANKS.items(), key=lambda kv: kv[1]):
        lines.append(f"{rank:>3}  {name}")
    return "\n".join(lines)
