"""The simcheck command line: ``python -m repro lint``.

Usage::

    python -m repro lint schema.ddl [queries.dml ...] [--strict]
    python -m repro lint --concurrency [paths ...] [--strict]

Lints the schema first; when it is error-free, each DML file is split
into statements (terminated by ``;`` or a blank line, the same convention
the IQF scripts use) and every statement is taken through the full static
pipeline — parse, qualification, type check, plan verification — without
executing anything.

Diagnostics print one per line in the compiler-standard form::

    schema.ddl:12:3: SIM013 error: inverse pair is not mutual ... [hint: ...]

The exit status is 1 when any error was reported (or any warning, with
``--strict``), 0 otherwise — suitable for CI lanes.

``--concurrency`` switches to the SIM3xx lock-discipline lint
(:mod:`repro.analysis.concurrency`) over Python source paths (default:
``src/repro``), same output format and exit semantics.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, TextIO, Tuple

from repro.analysis.diagnostics import Diagnostic, ERROR, INFO, WARNING
from repro.analysis.schema_lint import lint_schema
from repro.errors import (
    DMLSyntaxError,
    QualificationError,
    SimError,
    StaticAnalysisError,
)
from repro.lexer import Span


def split_statements(text: str) -> List[Tuple[str, Span]]:
    """Split a DML script into statements with their starting positions.

    A statement ends at a line ending in ``;`` or at a blank line — the
    convention of :mod:`repro.interfaces.iqf` scripts.  Dot-command lines
    are skipped (they are session directives, not DML).
    """
    statements: List[Tuple[str, Span]] = []
    buffered: List[str] = []
    start_line = 0

    def flush():
        nonlocal buffered, start_line
        statement = "\n".join(buffered).strip()
        if statement:
            statements.append((statement, Span(start_line, 1)))
        buffered = []
        start_line = 0

    for number, line in enumerate(text.splitlines(), start=1):
        stripped = line.strip()
        if not buffered and stripped.startswith("."):
            continue
        if not stripped:
            flush()
            continue
        if not buffered:
            start_line = number
        buffered.append(line)
        if stripped.endswith(";"):
            flush()
    flush()
    return statements


def lint_statement(database, statement: str, base: Span
                   ) -> List[Diagnostic]:
    """Run one DML statement through the static pipeline; every failure
    mode comes back as diagnostics rebased onto the file position."""
    try:
        compiled = database.compile(statement)
    except DMLSyntaxError as exc:
        span = Span(exc.line, exc.column).offset(base)
        return [Diagnostic("SIM100", ERROR, str(exc), span)]
    except StaticAnalysisError as exc:
        return [d.offset(base) for d in exc.diagnostics]
    except QualificationError as exc:
        code = exc.diagnostic_code or "SIM101"
        return [Diagnostic(code, ERROR, str(exc), base)]
    except SimError as exc:
        # Anything else the front end rejects statically (binding errors,
        # catalog misses) — report, keep linting the rest of the file.
        return [Diagnostic(exc.diagnostic_code or "SIM101", ERROR,
                           str(exc), base)]
    return [d.offset(base) for d in compiled.diagnostics]


def lint_files(schema_path: str, dml_paths: List[str],
               out: Optional[TextIO] = None
               ) -> List[Tuple[str, Diagnostic]]:
    """Lint a schema and optional DML files; returns (path, diagnostic)
    pairs in report order."""
    out = out or sys.stdout
    with open(schema_path) as handle:
        ddl_text = handle.read()
    reported: List[Tuple[str, Diagnostic]] = []
    schema_diagnostics = lint_schema(ddl_text)
    reported.extend((schema_path, d) for d in schema_diagnostics)

    schema_broken = any(d.severity == ERROR for d in schema_diagnostics)
    if dml_paths and schema_broken:
        print(f"{schema_path}: schema has errors; DML files not checked",
              file=out)
    elif dml_paths:
        from repro.database import Database
        database = Database(ddl_text)
        for path in dml_paths:
            with open(path) as handle:
                script = handle.read()
            for statement, base in split_statements(script):
                reported.extend(
                    (path, d) for d in lint_statement(database, statement,
                                                      base))
    return reported


def concurrency_main(argv: List[str]) -> int:
    """``python -m repro lint --concurrency [paths ...]``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro lint --concurrency",
        description="simcheck concurrency lint: SIM3xx lock-discipline "
                    "diagnostics over Python source")
    parser.add_argument("paths", nargs="*", default=None,
                        help="files or directories to sweep "
                             "(default: src/repro)")
    parser.add_argument("--strict", action="store_true",
                        help="exit non-zero on warnings too")
    parser.add_argument("--no-notes", action="store_true",
                        help="suppress info-severity notes")
    args = parser.parse_args([a for a in argv if a != "--concurrency"])
    paths = args.paths or ["src/repro"]

    from repro.analysis.concurrency import lint_concurrency_paths
    try:
        reported = lint_concurrency_paths(paths)
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    counts = {ERROR: 0, WARNING: 0, INFO: 0}
    for path, diagnostic in reported:
        counts[diagnostic.severity] += 1
        if diagnostic.severity == INFO and args.no_notes:
            continue
        print(diagnostic.describe(path))
    print(f"{counts[ERROR]} error(s), {counts[WARNING]} warning(s), "
          f"{counts[INFO]} note(s)")
    if counts[ERROR]:
        return 1
    if args.strict and counts[WARNING]:
        return 1
    return 0


def main(argv=None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if "--concurrency" in argv:
        return concurrency_main(list(argv))
    parser = argparse.ArgumentParser(
        prog="python -m repro lint",
        description="simcheck: compile-time diagnostics for SIM schemas, "
                    "DML and query plans")
    parser.add_argument("schema", help="DDL file to lint")
    parser.add_argument("dml", nargs="*",
                        help="DML script files to check against the schema")
    parser.add_argument("--strict", action="store_true",
                        help="exit non-zero on warnings too")
    parser.add_argument("--no-notes", action="store_true",
                        help="suppress info-severity notes")
    args = parser.parse_args(argv)

    try:
        reported = lint_files(args.schema, args.dml)
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    counts = {ERROR: 0, WARNING: 0, INFO: 0}
    for path, diagnostic in reported:
        counts[diagnostic.severity] += 1
        if diagnostic.severity == INFO and args.no_notes:
            continue
        print(diagnostic.describe(path))

    print(f"{counts[ERROR]} error(s), {counts[WARNING]} warning(s), "
          f"{counts[INFO]} note(s)")
    if counts[ERROR]:
        return 1
    if args.strict and counts[WARNING]:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
