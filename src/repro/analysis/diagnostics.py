"""Shared diagnostics framework for simcheck (the static analyzers).

Every rule has a stable ``SIM***`` code, a default severity, and a short
title.  Analyzers emit :class:`Diagnostic` records — code, severity,
message, source span (reusing the lexer's token positions) and an optional
fix-it hint — into a :class:`DiagnosticSink`.  The database front end turns
error-severity diagnostics into typed exceptions (see
:func:`raise_for_errors`); warnings and notes ride along on result sets
and the lint CLI.

Code ranges:

* ``SIM0xx`` — schema lint (:mod:`repro.analysis.schema_lint`)
* ``SIM1xx`` — query/update lint (:mod:`repro.analysis.query_lint`);
  ``SIM10x`` qualification, ``SIM11x`` type checking, ``SIM12x`` updates
* ``SIM2xx`` — plan verification (:mod:`repro.analysis.plan_verify`)
* ``SIM3xx`` — concurrency lint (:mod:`repro.analysis.concurrency`):
  lock-discipline checks over the engine's own source, driven by the
  declared rank hierarchy in :mod:`repro.analysis.lock_order`
* ``SIM4xx`` — semantic rewrite verification
  (:mod:`repro.analysis.plan_verify` re-deriving the proofs of
  :mod:`repro.optimizer.rewrite`)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional

from repro.errors import (
    PlanVerificationError,
    StaticAnalysisError,
    StaticTypeError,
    StaticUpdateError,
)
from repro.lexer import Span

ERROR = "error"
WARNING = "warning"
INFO = "info"

_SEVERITY_RANK = {ERROR: 0, WARNING: 1, INFO: 2}


@dataclass(frozen=True)
class Rule:
    """One entry of the rule catalog."""

    code: str
    severity: str
    title: str


def _catalog(*rules) -> dict:
    table = {}
    for code, severity, title in rules:
        table[code] = Rule(code, severity, title)
    return table


#: The full simcheck rule catalog.  Codes are stable: never renumber.
RULES = _catalog(
    # -- Schema lint (SIM0xx) ------------------------------------------------
    ("SIM000", ERROR, "DDL syntax error"),
    ("SIM001", ERROR, "unknown superclass"),
    ("SIM002", ERROR, "generalization cycle"),
    ("SIM003", ERROR, "multiple base-class ancestors"),
    ("SIM010", ERROR, "EVA names unknown range class"),
    ("SIM011", INFO, "EVA has no declared inverse"),
    ("SIM012", WARNING, "one-sided inverse declaration"),
    ("SIM013", ERROR, "inverse pair is not mutual"),
    ("SIM014", ERROR, "inverse pair disagrees on range"),
    ("SIM015", ERROR, "declared inverse is not an EVA"),
    ("SIM016", ERROR, "REQUIRED on both EVA directions"),
    ("SIM020", ERROR, "attribute shadows an inherited attribute"),
    ("SIM021", ERROR, "subrole value set does not match subclasses"),
    ("SIM022", ERROR, "more than one subrole attribute"),
    ("SIM030", WARNING, "vacuous VERIFY assertion"),
    ("SIM031", ERROR, "VERIFY references an undeclared attribute"),
    ("SIM032", ERROR, "VERIFY on unknown class"),
    ("SIM033", ERROR, "VERIFY assertion does not parse"),
    ("SIM040", INFO, "named type is never used"),
    # -- Query lint (SIM10x qualification, SIM11x types) ---------------------
    ("SIM100", ERROR, "DML syntax error"),
    ("SIM101", ERROR, "qualification cannot be resolved"),
    ("SIM102", ERROR, "ambiguous shorthand qualification"),
    ("SIM103", ERROR, "invalid AS role conversion"),
    ("SIM104", ERROR, "unknown perspective class"),
    ("SIM110", ERROR, "entity/value misuse"),
    ("SIM111", WARNING, "multi-valued attribute in scalar position"),
    ("SIM112", ERROR, "incomparable operand types"),
    ("SIM113", WARNING, "comparison is statically UNKNOWN or false"),
    ("SIM114", ERROR, "aggregate over a non-aggregable argument"),
    ("SIM115", WARNING, "quantifier target cannot vary"),
    ("SIM116", WARNING, "aggregate over a constant"),
    ("SIM117", ERROR, "selection expression is not boolean"),
    # -- Update lint (SIM12x) ------------------------------------------------
    ("SIM120", ERROR, "assignment to unknown attribute"),
    ("SIM121", ERROR, "assignment to a system-maintained attribute"),
    ("SIM122", ERROR, "INCLUDE/EXCLUDE on a single-valued attribute"),
    ("SIM123", ERROR, "entity/value mismatch in assignment"),
    ("SIM124", ERROR, "selector class outside the EVA's range"),
    ("SIM125", ERROR, "update statement targets a view"),
    ("SIM126", ERROR, "update statement names an unknown class"),
    ("SIM127", WARNING, "assigned literal outside the declared domain"),
    # -- Plan verification (SIM2xx) ------------------------------------------
    ("SIM200", ERROR, "plan/tree label mismatch"),
    ("SIM201", ERROR, "range variable not bound exactly once"),
    ("SIM202", ERROR, "TYPE 2 existential subtree on the enumeration spine"),
    ("SIM203", ERROR, "TYPE 3 outer-join direction not preserved"),
    ("SIM204", ERROR, "plan access path references an unknown object"),
    ("SIM205", ERROR, "physical spine does not cover the loop nodes"),
    ("SIM206", ERROR, "existential node enumerated by the physical spine"),
    ("SIM207", ERROR, "traversal operator kind contradicts the TYPE label"),
    ("SIM208", ERROR, "morsel barrier misplaced in the physical pipeline"),
    # -- Concurrency lint (SIM3xx) -------------------------------------------
    ("SIM300", WARNING, "lock acquired outside a with block"),
    ("SIM301", ERROR, "nested lock acquisition inverts the declared order"),
    ("SIM302", WARNING, "blocking call while holding a lock"),
    ("SIM303", WARNING, "unguarded shared-state write in threaded code"),
    ("SIM304", WARNING, "condition wait outside a predicate loop"),
    # -- Semantic rewrite verification (SIM4xx) --------------------------------
    ("SIM400", INFO, "provably-empty subclass extent"),
    ("SIM401", ERROR, "rewrite/verifier mismatch"),
)


@dataclass(frozen=True)
class Diagnostic:
    """One finding: a coded, severity-ranked message anchored to a span."""

    code: str
    severity: str
    message: str
    span: Span = field(default_factory=Span)
    hint: Optional[str] = None
    #: which analyzer produced it: "schema" | "query" | "plan"
    source: str = "query"

    @property
    def rule(self) -> Rule:
        return RULES[self.code]

    def describe(self, path: Optional[str] = None) -> str:
        """``path:line:col: SIM013 error: message [hint: ...]``"""
        prefix = f"{path}:" if path else ""
        text = (f"{prefix}{self.span.describe()}: {self.code} "
                f"{self.severity}: {self.message}")
        if self.hint:
            text += f" [hint: {self.hint}]"
        return text

    def offset(self, base: Span) -> "Diagnostic":
        """Rebase a relative span (e.g. inside a VERIFY assertion) onto the
        enclosing declaration's position."""
        return Diagnostic(self.code, self.severity, self.message,
                          self.span.offset(base), self.hint, self.source)


class DiagnosticSink:
    """Accumulates diagnostics for one analysis run."""

    def __init__(self, source: str = "query"):
        self.source = source
        self.items: List[Diagnostic] = []

    def emit(self, code: str, message: str, span: Span = Span(),
             hint: Optional[str] = None,
             severity: Optional[str] = None) -> Diagnostic:
        """Record one diagnostic; severity defaults from the catalog."""
        rule = RULES[code]
        diagnostic = Diagnostic(code, severity or rule.severity, message,
                                span, hint, self.source)
        self.items.append(diagnostic)
        return diagnostic

    def extend(self, diagnostics: Iterable[Diagnostic]) -> None:
        self.items.extend(diagnostics)

    def errors(self) -> List[Diagnostic]:
        return [d for d in self.items if d.severity == ERROR]

    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.items if d.severity == WARNING]

    def infos(self) -> List[Diagnostic]:
        return [d for d in self.items if d.severity == INFO]

    def sorted(self) -> List[Diagnostic]:
        """Severity-major, then source order."""
        return sorted(self.items,
                      key=lambda d: (_SEVERITY_RANK[d.severity],
                                     d.span.line, d.span.column, d.code))

    def __bool__(self) -> bool:
        return bool(self.items)

    def __len__(self) -> int:
        return len(self.items)


#: exception class per code range, so existing ``except`` clauses keep
#: working when enforcement moves from runtime to compile time
_TYPE_CODES = frozenset(("SIM110", "SIM112", "SIM114", "SIM117"))
_UPDATE_PREFIX = "SIM12"
_PLAN_PREFIX = "SIM2"
_REWRITE_PREFIX = "SIM4"


def exception_for(diagnostic: Diagnostic) -> type:
    """The exception class a given error diagnostic should raise as."""
    if diagnostic.code in _TYPE_CODES:
        return StaticTypeError
    if diagnostic.code.startswith(_UPDATE_PREFIX):
        return StaticUpdateError
    if diagnostic.code.startswith((_PLAN_PREFIX, _REWRITE_PREFIX)):
        return PlanVerificationError
    return StaticAnalysisError


def raise_for_errors(diagnostics: Iterable[Diagnostic]) -> None:
    """Raise the first error-severity diagnostic as a typed exception.

    The exception message is the diagnostic's message (with the code
    appended) and ``diagnostics`` carries the full list, warnings
    included, for programmatic consumers.
    """
    items = list(diagnostics)
    errors = [d for d in items if d.severity == ERROR]
    if not errors:
        return
    first = errors[0]
    exc_class = exception_for(first)
    raise exc_class(f"{first.message} [{first.code}]",
                    diagnostics=items).with_code(first.code)
