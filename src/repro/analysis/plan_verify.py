"""Plan verification: the post-optimization structural contract (SIM2xx).

The optimizer may only choose *how* domains are produced (scan vs index)
and *in which order* the perspective roots are enumerated; it must never
change what the labelled query tree means.  :func:`verify_plan` re-derives
the TYPE 1/2/3 labels from the usage flags and checks the chosen plan
against them, failing closed before execution:

* every main-scope range variable is bound exactly once (the root order is
  a permutation of the perspective variables; no loop node appears twice);
* TYPE 2 existential subtrees stay off the enumeration spine (they are
  checked by EXISTS probes, not enumerated);
* TYPE 3 target-only branches keep their outer-join direction (they may
  not feed the selection expression — that is what makes the dummy-entity
  semantics of §4.5 sound);
* access paths reference real roots, attributes and index keys.
"""

from __future__ import annotations

from typing import List

from repro.analysis.diagnostics import Diagnostic, DiagnosticSink
from repro.dml.query_tree import MAIN_SCOPE, TYPE1, TYPE2, TYPE3, QueryTree
from repro.schema.schema import Schema


def verify_plan(schema: Schema, tree: QueryTree,
                plan=None) -> List[Diagnostic]:
    """Check a labelled query tree (and the optimizer's plan, when one was
    chosen) against the structural contract.  Returns diagnostics; any
    error means the plan must not run."""
    sink = DiagnosticSink(source="plan")
    _verify_labels(tree, sink)
    _verify_binding(tree, plan, sink)
    _verify_type2_off_spine(tree, sink)
    _verify_type3_direction(tree, sink)
    if plan is not None:
        _verify_access_paths(schema, tree, plan, sink)
    return sink.sorted()


def _verify_labels(tree: QueryTree, sink: DiagnosticSink) -> None:
    """SIM200: stored labels must match a recomputation from usage flags."""
    expected = {}

    def compute(node, is_root):
        target = node.used_in_target
        selection = node.used_in_selection
        for child in node.children.values():
            child_target, child_selection = compute(child, False)
            target = target or child_target
            selection = selection or child_selection
        if is_root:
            expected[id(node)] = TYPE1
        elif target and not selection:
            expected[id(node)] = TYPE3
        elif selection and not target:
            expected[id(node)] = TYPE2
        else:
            expected[id(node)] = TYPE1
        return target, selection

    for root in tree.roots:
        compute(root, True)
    for node in tree.all_nodes():
        want = expected.get(id(node))
        if node.label is None:
            sink.emit("SIM200",
                      f"node {node.describe()} was never labelled")
        elif node.label != want:
            sink.emit("SIM200",
                      f"node {node.describe()} is labelled TYPE{node.label} "
                      f"but its usage implies TYPE{want}",
                      hint="labels must be recomputed after any tree "
                           "rewrite")


def _verify_binding(tree: QueryTree, plan,
                    sink: DiagnosticSink) -> None:
    """SIM201: each range variable bound exactly once."""
    root_vars = [root.var_name for root in tree.roots]
    if plan is not None and plan.root_order is not None:
        if sorted(plan.root_order) != sorted(root_vars):
            sink.emit("SIM201",
                      f"plan root order {plan.root_order} is not a "
                      f"permutation of the perspective variables "
                      f"{root_vars}")
    seen = set()
    for root in tree.roots:
        for node in tree.loop_nodes(root):
            if node.id in seen:
                sink.emit("SIM201",
                          f"range variable {node.describe()} appears more "
                          f"than once on the enumeration spine")
            seen.add(node.id)
            if node.scope_id != MAIN_SCOPE:
                sink.emit("SIM201",
                          f"scoped node {node.describe()} (scope "
                          f"{node.scope_id}) leaked onto the main "
                          f"enumeration spine")


def _verify_type2_off_spine(tree: QueryTree, sink: DiagnosticSink) -> None:
    """SIM202: existential subtrees must not be enumerated."""
    for root in tree.roots:
        spine = {node.id for node in tree.loop_nodes(root)}
        for node in _subtree(root):
            if node.label == TYPE2 and node.id in spine:
                sink.emit("SIM202",
                          f"TYPE 2 node {node.describe()} was flattened "
                          f"into the enumeration spine",
                          hint="existential subtrees are evaluated by "
                               "EXISTS probes, never enumerated")
            if node.label == TYPE2:
                # Everything below an existential root must stay TYPE 2.
                for child in node.children.values():
                    if child.label in (TYPE1, TYPE3):
                        sink.emit("SIM202",
                                  f"node {child.describe()} under the "
                                  f"TYPE 2 subtree of {node.describe()} is "
                                  f"labelled TYPE{child.label}")


def _verify_type3_direction(tree: QueryTree, sink: DiagnosticSink) -> None:
    """SIM203: target-only branches must not feed the selection."""
    for root in tree.roots:
        for node in _subtree(root):
            if node.label != TYPE3:
                continue
            for member in _subtree(node):
                if member.used_in_selection:
                    sink.emit("SIM203",
                              f"TYPE 3 node {member.describe()} is used in "
                              f"the selection expression; the outer-join "
                              f"(dummy entity) direction would be broken")


def _verify_access_paths(schema: Schema, tree: QueryTree, plan,
                         sink: DiagnosticSink) -> None:
    """SIM204: access paths must reference real roots and attributes."""
    roots = {root.var_name: root for root in tree.roots}
    for var_name, access in plan.root_access.items():
        root = roots.get(var_name)
        if root is None:
            sink.emit("SIM204",
                      f"plan access path targets unknown root variable "
                      f"{var_name!r}")
            continue
        if not schema.has_class(access.class_name):
            sink.emit("SIM204",
                      f"access path for {var_name!r} scans unknown class "
                      f"{access.class_name!r}")
            continue
        if access.kind == "index":
            sim_class = schema.get_class(access.class_name)
            if (access.attr_name is None
                    or not sim_class.has_attribute(access.attr_name)):
                sink.emit("SIM204",
                          f"index access for {var_name!r} uses unknown "
                          f"attribute {access.attr_name!r} of "
                          f"{access.class_name!r}")
        elif access.kind != "scan":
            sink.emit("SIM204",
                      f"access path for {var_name!r} has unknown kind "
                      f"{access.kind!r}")


def _subtree(node):
    yield node
    for child in node.children.values():
        yield from _subtree(child)
