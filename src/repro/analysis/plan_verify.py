"""Plan verification: the post-optimization structural contract (SIM2xx).

The optimizer may only choose *how* domains are produced (scan vs index)
and *in which order* the perspective roots are enumerated; it must never
change what the labelled query tree means.  :func:`verify_plan` re-derives
the TYPE 1/2/3 labels from the usage flags and checks the chosen plan
against them, failing closed before execution:

* every main-scope range variable is bound exactly once (the root order is
  a permutation of the perspective variables; no loop node appears twice);
* TYPE 2 existential subtrees stay off the enumeration spine (they are
  checked by EXISTS probes, not enumerated);
* TYPE 3 target-only branches keep their outer-join direction (they may
  not feed the selection expression — that is what makes the dummy-entity
  semantics of §4.5 sound);
* access paths reference real roots, attributes and index keys.

:func:`verify_physical` extends the contract to the lowered operator DAG
(:mod:`repro.optimizer.physical_plan`): the enumeration spine must bind
every TYPE 1/TYPE 3 loop node exactly once, parents before children
(SIM205); TYPE 2 existential nodes may only appear behind Semi/AntiSemi
probes, never on the spine (SIM206); each traversal operator's kind
must agree with its node's TYPE label — OuterTraverse exactly for TYPE 3,
EVATraverse for inner TYPE 1, Scan for roots (SIM207); and at most one
Parallel barrier may appear, with only order-insensitive segment
operators below it and only order-sensitive consumers above it (SIM208)
— that placement is what makes the morsel-order merge row-identical to
serial execution.
"""

from __future__ import annotations

from typing import List

from repro.analysis.diagnostics import Diagnostic, DiagnosticSink
from repro.dml.query_tree import MAIN_SCOPE, TYPE1, TYPE2, TYPE3, QueryTree
from repro.schema.schema import Schema


def verify_plan(schema: Schema, tree: QueryTree,
                plan=None) -> List[Diagnostic]:
    """Check a labelled query tree (and the optimizer's plan, when one was
    chosen) against the structural contract.  Returns diagnostics; any
    error means the plan must not run."""
    sink = DiagnosticSink(source="plan")
    _verify_labels(tree, sink)
    _verify_binding(tree, plan, sink)
    _verify_type2_off_spine(tree, sink)
    _verify_type3_direction(tree, sink)
    if plan is not None:
        _verify_access_paths(schema, tree, plan, sink)
    return sink.sorted()


#: operator names that bind a spine node to a slot
_SPINE_OPS = ("Scan", "EVATraverse", "OuterTraverse")
#: operator names that probe existential subtrees
_PROBE_OPS = ("Semi", "AntiSemi")
#: operator names allowed below a Parallel barrier (order-insensitive)
_PARALLEL_SEGMENT_OPS = _SPINE_OPS + _PROBE_OPS + ("Filter",)
#: operator names allowed above a Parallel barrier (the serial consumers)
_PARALLEL_CONSUMER_OPS = ("Aggregate", "Project", "Sort", "Distinct")


def verify_physical(schema: Schema, tree: QueryTree,
                    physical) -> List[Diagnostic]:
    """Check a lowered physical operator DAG against the labelled tree
    (SIM205-SIM207).  Returns diagnostics; any error means the DAG must
    not run."""
    sink = DiagnosticSink(source="plan")
    operators = physical.root.chain()
    spine_ops = [op for op in operators
                 if op.name in _SPINE_OPS and op.node is not None]

    expected = {}
    for root in tree.roots:
        for node in tree.loop_nodes(root):
            expected[node.id] = node

    bound: List[int] = []
    for operator in spine_ops:
        node = operator.node
        if node.id in bound:
            sink.emit("SIM205",
                      f"node {node.describe()} is bound by more than one "
                      f"spine operator")
        elif node.id not in expected:
            if node.label == TYPE2:
                sink.emit("SIM206",
                          f"TYPE 2 node {node.describe()} is enumerated by "
                          f"{operator.describe()}",
                          hint="existential subtrees are evaluated by "
                               "Semi/AntiSemi probes, never enumerated")
            else:
                sink.emit("SIM205",
                          f"spine operator {operator.describe()} binds "
                          f"{node.describe()}, which is not a loop node")
        elif node.kind != "root" and node.parent.id not in bound:
            sink.emit("SIM205",
                      f"node {node.describe()} is enumerated before its "
                      f"parent {node.parent.describe()}")
        bound.append(node.id)
        if operator.name == "Scan" and node.kind != "root":
            sink.emit("SIM207",
                      f"Scan may only enumerate perspective roots, not "
                      f"{node.describe()}")
        elif operator.name == "OuterTraverse" and node.label != TYPE3:
            sink.emit("SIM207",
                      f"OuterTraverse on {node.describe()} "
                      f"(TYPE{node.label}); the dummy-entity padding is "
                      f"only sound for TYPE 3 branches")
        elif operator.name == "EVATraverse" and node.label == TYPE3:
            sink.emit("SIM207",
                      f"TYPE 3 node {node.describe()} lowered to an inner "
                      f"EVATraverse; its dummy-entity padding is lost")

    for node_id, node in expected.items():
        if node_id not in bound:
            sink.emit("SIM205",
                      f"loop node {node.describe()} is never bound by the "
                      f"physical spine")

    for operator in operators:
        if operator.name not in _PROBE_OPS:
            continue
        for node in operator.nodes:
            if node.label != TYPE2 and node.scope_id == MAIN_SCOPE:
                sink.emit("SIM206",
                          f"{operator.name} probe enumerates main-scope "
                          f"node {node.describe()} (TYPE{node.label})")

    _verify_parallel_barrier(operators, sink)
    return sink.sorted()


def _verify_parallel_barrier(operators, sink: DiagnosticSink) -> None:
    """SIM208: at most one Parallel barrier; only order-insensitive
    segment operators below it, only serial consumers above it."""
    barriers = [i for i, op in enumerate(operators)
                if op.name == "Parallel"]
    if not barriers:
        return
    if len(barriers) > 1:
        sink.emit("SIM208",
                  f"{len(barriers)} Parallel barriers in one pipeline; "
                  f"morsel dispatch must have a single merge point")
    barrier = barriers[0]
    # operators is innermost-first: indices below the barrier are the
    # parallel segment, indices above it the serial consumers.
    for operator in operators[:barrier]:
        if operator.name not in _PARALLEL_SEGMENT_OPS:
            sink.emit("SIM208",
                      f"{operator.describe()} runs below the Parallel "
                      f"barrier but is not order-insensitive",
                      hint="only Scan/EVATraverse/OuterTraverse/Filter/"
                           "Semi/AntiSemi may run on morsel workers")
    for operator in operators[barrier + 1:]:
        if operator.name not in _PARALLEL_CONSUMER_OPS:
            sink.emit("SIM208",
                      f"{operator.describe()} runs above the Parallel "
                      f"barrier; only the serial consumers "
                      f"(Aggregate/Project/Sort/Distinct) may")


def _verify_labels(tree: QueryTree, sink: DiagnosticSink) -> None:
    """SIM200: stored labels must match a recomputation from usage flags."""
    expected = {}

    def compute(node, is_root):
        target = node.used_in_target
        selection = node.used_in_selection
        for child in node.children.values():
            child_target, child_selection = compute(child, False)
            target = target or child_target
            selection = selection or child_selection
        if is_root:
            expected[id(node)] = TYPE1
        elif target and not selection:
            expected[id(node)] = TYPE3
        elif selection and not target:
            expected[id(node)] = TYPE2
        else:
            expected[id(node)] = TYPE1
        return target, selection

    for root in tree.roots:
        compute(root, True)
    for node in tree.all_nodes():
        want = expected.get(id(node))
        if node.label is None:
            sink.emit("SIM200",
                      f"node {node.describe()} was never labelled")
        elif node.label != want:
            sink.emit("SIM200",
                      f"node {node.describe()} is labelled TYPE{node.label} "
                      f"but its usage implies TYPE{want}",
                      hint="labels must be recomputed after any tree "
                           "rewrite")


def _verify_binding(tree: QueryTree, plan,
                    sink: DiagnosticSink) -> None:
    """SIM201: each range variable bound exactly once."""
    root_vars = [root.var_name for root in tree.roots]
    if plan is not None and plan.root_order is not None:
        if sorted(plan.root_order) != sorted(root_vars):
            sink.emit("SIM201",
                      f"plan root order {plan.root_order} is not a "
                      f"permutation of the perspective variables "
                      f"{root_vars}")
    seen = set()
    for root in tree.roots:
        for node in tree.loop_nodes(root):
            if node.id in seen:
                sink.emit("SIM201",
                          f"range variable {node.describe()} appears more "
                          f"than once on the enumeration spine")
            seen.add(node.id)
            if node.scope_id != MAIN_SCOPE:
                sink.emit("SIM201",
                          f"scoped node {node.describe()} (scope "
                          f"{node.scope_id}) leaked onto the main "
                          f"enumeration spine")


def _verify_type2_off_spine(tree: QueryTree, sink: DiagnosticSink) -> None:
    """SIM202: existential subtrees must not be enumerated."""
    for root in tree.roots:
        spine = {node.id for node in tree.loop_nodes(root)}
        for node in _subtree(root):
            if node.label == TYPE2 and node.id in spine:
                sink.emit("SIM202",
                          f"TYPE 2 node {node.describe()} was flattened "
                          f"into the enumeration spine",
                          hint="existential subtrees are evaluated by "
                               "EXISTS probes, never enumerated")
            if node.label == TYPE2:
                # Everything below an existential root must stay TYPE 2.
                for child in node.children.values():
                    if child.label in (TYPE1, TYPE3):
                        sink.emit("SIM202",
                                  f"node {child.describe()} under the "
                                  f"TYPE 2 subtree of {node.describe()} is "
                                  f"labelled TYPE{child.label}")


def _verify_type3_direction(tree: QueryTree, sink: DiagnosticSink) -> None:
    """SIM203: target-only branches must not feed the selection."""
    for root in tree.roots:
        for node in _subtree(root):
            if node.label != TYPE3:
                continue
            for member in _subtree(node):
                if member.used_in_selection:
                    sink.emit("SIM203",
                              f"TYPE 3 node {member.describe()} is used in "
                              f"the selection expression; the outer-join "
                              f"(dummy entity) direction would be broken")


def _verify_access_paths(schema: Schema, tree: QueryTree, plan,
                         sink: DiagnosticSink) -> None:
    """SIM204: access paths must reference real roots and attributes."""
    roots = {root.var_name: root for root in tree.roots}
    for var_name, access in plan.root_access.items():
        root = roots.get(var_name)
        if root is None:
            sink.emit("SIM204",
                      f"plan access path targets unknown root variable "
                      f"{var_name!r}")
            continue
        if not schema.has_class(access.class_name):
            sink.emit("SIM204",
                      f"access path for {var_name!r} scans unknown class "
                      f"{access.class_name!r}")
            continue
        if access.kind == "index":
            sim_class = schema.get_class(access.class_name)
            if (access.attr_name is None
                    or not sim_class.has_attribute(access.attr_name)):
                sink.emit("SIM204",
                          f"index access for {var_name!r} uses unknown "
                          f"attribute {access.attr_name!r} of "
                          f"{access.class_name!r}")
        elif access.kind == "subclass":
            _verify_subclass_path(schema, var_name, access, sink)
        elif access.kind == "empty":
            _verify_empty_path(schema, var_name, access, sink)
        elif access.kind == "eva_flip":
            _verify_flip_path(schema, var_name, access, sink)
        elif access.kind != "scan":
            sink.emit("SIM204",
                      f"access path for {var_name!r} has unknown kind "
                      f"{access.kind!r}")


def _verify_subclass_path(schema: Schema, var_name, access,
                          sink: DiagnosticSink) -> None:
    """SIM401: a pruned extent must be a class of the root's hierarchy
    whose entities can actually hold the root role."""
    if access.subclass is None or not schema.has_class(access.subclass):
        sink.emit("SIM401",
                  f"subclass-pruned access for {var_name!r} names unknown "
                  f"class {access.subclass!r}")
        return
    graph = schema.graph
    if not graph.same_hierarchy(access.class_name, access.subclass):
        sink.emit("SIM401",
                  f"subclass-pruned access for {var_name!r} scans "
                  f"{access.subclass!r}, which shares no hierarchy with "
                  f"{access.class_name!r}",
                  hint="pruning is only sound inside one generalization "
                       "hierarchy (single base-class ancestor rule)")
    elif graph.is_ancestor(access.subclass, access.class_name):
        sink.emit("SIM401",
                  f"subclass-pruned access for {var_name!r} scans "
                  f"{access.subclass!r}, an ancestor of "
                  f"{access.class_name!r} — the pruning is vacuous and "
                  f"the extent may be larger than the root's")


def _verify_empty_path(schema: Schema, var_name, access,
                       sink: DiagnosticSink) -> None:
    """Re-derive the emptiness proof from the generalization DAG:
    SIM400 (info) when it holds, SIM401 when the schema contradicts it."""
    graph = schema.graph
    proof = access.proof or ()
    holds = False
    if len(proof) == 2 and proof[0] == "disjoint":
        other = proof[1]
        holds = (schema.has_class(other)
                 and not graph.same_hierarchy(access.class_name, other))
    elif len(proof) == 3 and proof[0] == "contradiction":
        positive, negated = proof[1], proof[2]
        holds = (schema.has_class(positive) and schema.has_class(negated)
                 and (negated == positive
                      or graph.is_ancestor(negated, positive)))
    if holds:
        sink.emit("SIM400",
                  f"domain of {var_name!r} is provably empty "
                  f"({' '.join(str(p) for p in proof)}); storage untouched")
    else:
        sink.emit("SIM401",
                  f"empty-extent access for {var_name!r} claims proof "
                  f"{proof!r}, which the generalization DAG does not "
                  f"support")


def _verify_flip_path(schema: Schema, var_name, access,
                      sink: DiagnosticSink) -> None:
    """SIM401: an EVA-inverse flip needs a real EVA with an inverse and a
    real attribute on the far-side class."""
    if access.eva is None or getattr(access.eva, "inverse", None) is None:
        sink.emit("SIM401",
                  f"eva-flip access for {var_name!r} traverses an EVA "
                  f"without a resolved inverse")
        return
    if access.flip_class is None or not schema.has_class(access.flip_class):
        sink.emit("SIM401",
                  f"eva-flip access for {var_name!r} probes unknown class "
                  f"{access.flip_class!r}")
        return
    far_class = schema.get_class(access.flip_class)
    if (access.attr_name is None
            or not far_class.has_attribute(access.attr_name)):
        sink.emit("SIM401",
                  f"eva-flip access for {var_name!r} probes unknown "
                  f"attribute {access.attr_name!r} of "
                  f"{access.flip_class!r}")


def _subtree(node):
    yield node
    for child in node.children.values():
        yield from _subtree(child)
