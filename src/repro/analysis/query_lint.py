"""Query and update lint: static type checks over the DML AST (SIM1xx).

:func:`lint_retrieve` runs *after* qualification, so paths carry their
resolution annotations (terminal attribute, chain nodes) and the type of
every subexpression can be inferred from the catalog.  :func:`lint_update`
runs before the update engine touches any data and mirrors its static
preconditions (assignable attributes, value kinds, selector ranges).

Severity policy: a rule is an error only when the statement can never
succeed; anything data-dependent is at most a warning, so warnings never
change runtime behaviour.
"""

from __future__ import annotations

from decimal import Decimal
from typing import List, Optional, Union

from repro.errors import TypeMismatchError
from repro.lexer import Span
from repro.analysis.diagnostics import Diagnostic, DiagnosticSink
from repro.dml.ast import (
    Aggregate,
    Binary,
    DeleteStatement,
    EntitySelector,
    FunctionCall,
    InsertStatement,
    IsaTest,
    Literal,
    ModifyStatement,
    Path,
    Quantified,
    RetrieveQuery,
    Unary,
)
from repro.schema.schema import Schema

_NUMERIC = frozenset(("integer", "number", "real", "surrogate"))
_TEXT = frozenset(("string", "symbolic", "subrole"))
_ARITHMETIC = frozenset(("+", "-", "*", "/"))
_COMPARISONS = frozenset(("=", "neq", "<", "<=", ">", ">="))


class _Type:
    """Inferred static type of a subexpression."""

    __slots__ = ("kind", "family", "data_type", "label")

    def __init__(self, kind: str, family: Optional[str] = None,
                 data_type=None, label: str = "expression"):
        self.kind = kind          # "value" | "entity" | "boolean" | "unknown"
        self.family = family      # value family, when known
        self.data_type = data_type
        self.label = label        # how to name it in messages

    def describe(self) -> str:
        if self.kind == "entity":
            return f"entity-valued {self.label}"
        if self.family:
            return f"{self.family} {self.label}"
        return self.label


_UNKNOWN = _Type("unknown")
_BOOLEAN = _Type("boolean", "boolean")


def _span_of(expression) -> Span:
    """Best source anchor for an expression (lexer token positions)."""
    if isinstance(expression, Path) and expression.steps:
        step = expression.steps[0]
        return Span(step.line, step.column)
    if isinstance(expression, Literal):
        return Span(expression.line, expression.column)
    if isinstance(expression, Binary):
        span = _span_of(expression.left)
        return span if span else _span_of(expression.right)
    if isinstance(expression, Unary):
        return _span_of(expression.operand)
    if isinstance(expression, (Aggregate, Quantified)):
        return _span_of(expression.argument)
    if isinstance(expression, IsaTest):
        return _span_of(expression.entity)
    if isinstance(expression, FunctionCall) and expression.args:
        return _span_of(expression.args[0])
    return Span()


def _families_comparable(left: str, right: str) -> bool:
    if left == right:
        return True
    if left in _NUMERIC and right in _NUMERIC:
        return True
    if left in _TEXT and right in _TEXT:
        return True
    # Dates and times coerce from strings (DateType/TimeType.validate).
    if {left, right} <= (_TEXT | {"date"}) or {left, right} <= (_TEXT | {"time"}):
        return True
    return False


class _QueryLinter:
    def __init__(self, schema: Schema):
        self.schema = schema
        self.sink = DiagnosticSink(source="query")

    # -- Entry points -------------------------------------------------------

    def lint_retrieve(self, query: RetrieveQuery) -> List[Diagnostic]:
        for item in query.targets:
            self._infer(item.expression)
        if query.where is not None:
            self._require_boolean(query.where)
        for order in query.order_by:
            self._infer(order.expression)
        return self.sink.sorted()

    # -- Inference ----------------------------------------------------------

    def _infer(self, expression) -> _Type:
        if isinstance(expression, Literal):
            return self._literal_type(expression)
        if isinstance(expression, Path):
            return self._path_type(expression)
        if isinstance(expression, Binary):
            return self._binary_type(expression)
        if isinstance(expression, Unary):
            if expression.op == "not":
                self._require_boolean(expression.operand)
                return _BOOLEAN
            return self._require_numeric(expression.operand, "unary '-'")
        if isinstance(expression, IsaTest):
            return _BOOLEAN
        if isinstance(expression, Aggregate):
            return self._aggregate_type(expression)
        if isinstance(expression, Quantified):
            return self._quantified_type(expression)
        if isinstance(expression, FunctionCall):
            return self._function_type(expression)
        return _UNKNOWN

    def _literal_type(self, literal: Literal) -> _Type:
        value = literal.value
        if isinstance(value, bool):
            return _Type("boolean", "boolean", label="literal")
        if isinstance(value, int):
            return _Type("value", "integer", label="literal")
        if isinstance(value, (Decimal, float)):
            return _Type("value", "number", label="literal")
        if isinstance(value, str):
            return _Type("value", "string", label="literal")
        return _UNKNOWN

    def _path_type(self, path: Path) -> _Type:
        label = f"{path.describe()!r}"
        if getattr(path, "derived", None) is not None:
            return _Type("unknown", label=label)
        attr = path.terminal_attr
        if attr is None and path.chain_nodes:
            last = path.chain_nodes[-1]
            if last.kind == "mvdva":
                attr = last.mv_attr
        if attr is not None:
            family = attr.data_type.family
            kind = "boolean" if family == "boolean" else "value"
            return _Type(kind, family, attr.data_type, label=label)
        if path.anchor_node is not None:
            return _Type("entity", label=label)
        return _Type("unknown", label=label)

    def _binary_type(self, binary: Binary) -> _Type:
        op = binary.op
        if op in ("and", "or"):
            self._require_boolean(binary.left)
            self._require_boolean(binary.right)
            return _BOOLEAN
        if op == "like":
            left = self._infer(binary.left)
            right = self._infer(binary.right)
            for side in (left, right):
                if (side.kind == "entity"
                        or (side.kind in ("value", "boolean")
                            and side.family is not None
                            and side.family not in _TEXT)):
                    self.sink.emit(
                        "SIM112",
                        f"LIKE needs string operands; {side.describe()} "
                        f"is not a string", _span_of(binary),
                        hint="LIKE applies to string-valued attributes")
            return _BOOLEAN
        if op in _COMPARISONS:
            self._check_comparison(binary)
            return _BOOLEAN
        if op in _ARITHMETIC:
            self._require_numeric(binary.left, f"operator {op!r}")
            self._require_numeric(binary.right, f"operator {op!r}")
            return _Type("value", "number", label="arithmetic result")
        return _UNKNOWN

    def _check_comparison(self, binary: Binary) -> None:
        left_expr, right_expr = binary.left, binary.right
        # Quantified operands compare against each element of their scope.
        if isinstance(right_expr, Quantified):
            self._quantified_type(right_expr)
            right_expr = right_expr.argument
        if isinstance(left_expr, Quantified):
            self._quantified_type(left_expr)
            left_expr = left_expr.argument
        left = self._infer(left_expr)
        right = self._infer(right_expr)

        for entity_side, value_side, value_expr in (
                (left, right, right_expr), (right, left, left_expr)):
            if entity_side.kind == "entity" and value_side.kind in (
                    "value", "boolean"):
                self.sink.emit(
                    "SIM110",
                    f"cannot compare {entity_side.describe()} with "
                    f"{value_side.describe()}; an EVA denotes entities, "
                    f"not data values", _span_of(binary),
                    hint="compare entities with entities, or qualify "
                         "through to a data-valued attribute")
                return
        if (left.kind in ("value", "boolean")
                and right.kind in ("value", "boolean")
                and left.family is not None and right.family is not None
                and not _families_comparable(left.family, right.family)):
            self.sink.emit(
                "SIM112",
                f"cannot compare {left.describe()} with "
                f"{right.describe()}; the value families are "
                f"incomparable", _span_of(binary))
            return
        # Domain check: a literal compared against a typed attribute that
        # can never hold it makes the comparison statically false/UNKNOWN.
        for attr_side, literal_expr in ((left, right_expr),
                                        (right, left_expr)):
            if (attr_side.data_type is not None
                    and isinstance(literal_expr, Literal)
                    and not isinstance(literal_expr.value, bool)):
                try:
                    attr_side.data_type.validate(literal_expr.value)
                except TypeMismatchError:
                    self.sink.emit(
                        "SIM113",
                        f"literal {literal_expr.describe()} is outside the "
                        f"declared domain of {attr_side.describe()}; the "
                        f"comparison can never be true",
                        _span_of(literal_expr))

    def _require_boolean(self, expression) -> None:
        inferred = self._infer(expression)
        if inferred.kind == "boolean" or inferred.kind == "unknown":
            return
        if inferred.kind == "value" and inferred.family is None:
            return
        described = (expression.describe()
                     if hasattr(expression, "describe") else repr(expression))
        self.sink.emit(
            "SIM117",
            f"expression {described!r} is not boolean "
            f"({inferred.describe()})", _span_of(expression),
            hint="selection expressions must be predicates")

    def _require_numeric(self, expression, where: str) -> _Type:
        inferred = self._infer(expression)
        if inferred.kind == "entity":
            self.sink.emit(
                "SIM110",
                f"{inferred.describe()} cannot be used with {where}; "
                f"entities are not numbers", _span_of(expression))
        elif (inferred.kind in ("value", "boolean")
              and inferred.family is not None
              and inferred.family not in _NUMERIC):
            self.sink.emit(
                "SIM112",
                f"{where} needs numeric operands, not "
                f"{inferred.describe()}", _span_of(expression))
        if self._is_mv_terminal(expression):
            self.sink.emit(
                "SIM111",
                f"multi-valued attribute in scalar arithmetic "
                f"({inferred.describe()}); each value is combined "
                f"independently", _span_of(expression))
        return _Type("value", "number", label="arithmetic result")

    def _is_mv_terminal(self, expression) -> bool:
        return (isinstance(expression, Path)
                and expression.terminal_attr is None
                and bool(expression.chain_nodes)
                and expression.chain_nodes[-1].kind == "mvdva")

    def _aggregate_type(self, aggregate: Aggregate) -> _Type:
        argument = self._infer(aggregate.argument)
        if not aggregate.scope_nodes and not _varies(aggregate.argument):
            self.sink.emit(
                "SIM116",
                f"aggregate {aggregate.func}({aggregate.argument.describe()})"
                f" ranges over a constant", _span_of(aggregate),
                hint="the aggregate's argument never varies")
        if aggregate.func in ("sum", "avg"):
            if argument.kind == "entity":
                self.sink.emit(
                    "SIM114",
                    f"{aggregate.func} needs a data-valued argument, not "
                    f"{argument.describe()}", _span_of(aggregate),
                    hint="use COUNT to count entities")
            elif (argument.kind in ("value", "boolean")
                  and argument.family is not None
                  and argument.family not in _NUMERIC):
                self.sink.emit(
                    "SIM114",
                    f"{aggregate.func} needs numeric values, not "
                    f"{argument.describe()}", _span_of(aggregate))
            return _Type("value", "number", label=f"{aggregate.func}(...)")
        if aggregate.func in ("min", "max"):
            if argument.kind == "entity":
                self.sink.emit(
                    "SIM114",
                    f"{aggregate.func} needs a data-valued argument, not "
                    f"{argument.describe()}", _span_of(aggregate),
                    hint="use COUNT to count entities")
            return _Type("value", argument.family, argument.data_type,
                         label=f"{aggregate.func}(...)")
        # count
        return _Type("value", "integer", label="count(...)")

    def _quantified_type(self, quantified: Quantified) -> _Type:
        inferred = self._infer(quantified.argument)
        if not quantified.scope_nodes and not _varies(quantified.argument):
            self.sink.emit(
                "SIM115",
                f"quantifier {quantified.quantifier}"
                f"({quantified.argument.describe()}) ranges over a single "
                f"constant value; the quantification is vacuous",
                _span_of(quantified),
                hint="quantify over a multi-valued qualification")
        return inferred

    def _function_type(self, call: FunctionCall) -> _Type:
        for arg in call.args:
            inferred = self._infer(arg)
            if inferred.kind == "entity":
                self.sink.emit(
                    "SIM110",
                    f"function {call.name} cannot be applied to "
                    f"{inferred.describe()}", _span_of(call))
            elif inferred.family is not None:
                if (call.name in ("length", "upper", "lower")
                        and inferred.family not in _TEXT):
                    self.sink.emit(
                        "SIM112",
                        f"function {call.name} needs a string argument, not "
                        f"{inferred.describe()}", _span_of(call))
                elif (call.name in ("year", "month", "day")
                      and inferred.family not in ("date", "string")):
                    self.sink.emit(
                        "SIM112",
                        f"function {call.name} needs a date argument, not "
                        f"{inferred.describe()}", _span_of(call))
                elif call.name == "abs" and inferred.family not in _NUMERIC:
                    self.sink.emit(
                        "SIM112",
                        f"function {call.name} needs a numeric argument, "
                        f"not {inferred.describe()}", _span_of(call))
        if call.name in ("length", "year", "month", "day"):
            return _Type("value", "integer", label=f"{call.name}(...)")
        if call.name in ("upper", "lower"):
            return _Type("value", "string", label=f"{call.name}(...)")
        return _Type("value", "number", label=f"{call.name}(...)")


def _varies(expression) -> bool:
    """Does the expression reference anything that varies per entity?"""
    if isinstance(expression, Path):
        return True
    if isinstance(expression, Binary):
        return _varies(expression.left) or _varies(expression.right)
    if isinstance(expression, Unary):
        return _varies(expression.operand)
    if isinstance(expression, (Aggregate, Quantified)):
        return True
    if isinstance(expression, (IsaTest, FunctionCall)):
        return True
    return False


def lint_retrieve(schema: Schema,
                  query: RetrieveQuery) -> List[Diagnostic]:
    """Type-check a *resolved* Retrieve statement (annotated by the
    qualifier).  Returns diagnostics; error severity means the query can
    never evaluate."""
    return _QueryLinter(schema).lint_retrieve(query)


# -- Update statements --------------------------------------------------------

_Update = Union[InsertStatement, ModifyStatement, DeleteStatement]


def lint_update(schema: Schema, statement: _Update) -> List[Diagnostic]:
    """Static preconditions for INSERT/MODIFY/DELETE (rules SIM12x)."""
    sink = DiagnosticSink(source="query")
    class_name = statement.class_name
    if schema.view(class_name) is not None:
        sink.emit("SIM125",
                  f"cannot {statement.kind} through view {class_name!r}; "
                  f"views are read-only",
                  hint="run the update against the view's class")
        return sink.sorted()
    if not schema.has_class(class_name):
        sink.emit("SIM126",
                  f"unknown class {class_name!r} in {statement.kind} "
                  f"statement")
        return sink.sorted()
    sim_class = schema.get_class(class_name)
    if (isinstance(statement, InsertStatement)
            and statement.from_class is not None
            and schema.has_class(statement.from_class)
            and not schema.graph.is_ancestor(statement.from_class,
                                             class_name)):
        sink.emit("SIM126",
                  f"{statement.from_class!r} is not an ancestor of "
                  f"{class_name!r}; INSERT ... FROM extends an existing "
                  f"entity's roles downward")
    for assignment in getattr(statement, "assignments", []):
        _lint_assignment(schema, sim_class, assignment, sink)
    return sink.sorted()


def _lint_assignment(schema: Schema, sim_class, assignment, sink) -> None:
    span = Span(assignment.line, assignment.column)
    name = assignment.attribute
    if not sim_class.has_attribute(name):
        derived = schema.find_derived(sim_class.name, name)
        if derived is not None:
            sink.emit("SIM121",
                      f"derived attribute {name!r} is computed, never "
                      f"assigned", span)
        else:
            sink.emit("SIM120",
                      f"attribute {name!r} is not an attribute of "
                      f"{sim_class.name!r} or its superclasses", span,
                      hint="check the spelling against the class "
                           "declaration")
        return
    attr = sim_class.attribute(name)
    if attr.system_maintained:
        sink.emit("SIM121",
                  f"attribute {attr.name!r} is system-maintained and "
                  f"cannot be assigned", span,
                  hint="subrole, surrogate and inverse maintenance is "
                       "automatic")
        return
    if (assignment.op in ("include", "exclude") and not attr.multi_valued
            and not attr.is_eva):
        # Single-valued EVAs accept both: EXCLUDE clears the reference and
        # INCLUDE is checked against the cardinality bound at runtime.
        sink.emit("SIM122",
                  f"INCLUDE/EXCLUDE need a multi-valued attribute, not "
                  f"{attr.name!r}", span)
    value = assignment.value
    if attr.is_eva:
        if isinstance(value, EntitySelector):
            _check_selector_range(schema, attr, value, span, sink)
        elif isinstance(value, Literal):
            sink.emit("SIM123",
                      f"EVA {attr.name!r} assignment needs a WITH selector, "
                      f"not the literal {value.describe()}", span,
                      hint=f"write {attr.name} := "
                           f"{attr.range_class_name} with (<predicate>)")
    else:
        if isinstance(value, EntitySelector):
            sink.emit("SIM123",
                      f"{attr.name!r} is data-valued; WITH selectors apply "
                      f"to EVAs", span)
        elif (isinstance(value, Literal) and assignment.op == "set"
              and getattr(attr, "data_type", None) is not None
              and not isinstance(value.value, bool)):
            try:
                attr.data_type.validate(value.value)
            except TypeMismatchError as exc:
                sink.emit("SIM127",
                          f"literal {value.describe()} is outside the "
                          f"declared domain of {sim_class.name}."
                          f"{attr.name}: {exc}",
                          Span(value.line, value.column) or span)


def _check_selector_range(schema: Schema, eva, selector, span, sink) -> None:
    name = selector.name
    if name == eva.name:
        return                        # EXCLUDE from the EVA's own targets
    if not schema.has_class(name):
        if schema.view(name) is not None:
            return                    # views-as-selectors resolve at runtime
        sink.emit("SIM124",
                  f"selector class {name!r} is not the range class of EVA "
                  f"{eva.name!r} ({eva.range_class_name!r})", span)
        return
    if not schema.graph.same_hierarchy(name, eva.range_class_name):
        sink.emit("SIM124",
                  f"selector class {name!r} is not the range class of EVA "
                  f"{eva.name!r} ({eva.range_class_name!r}); the classes "
                  f"share no hierarchy", span,
                  hint=f"select from {eva.range_class_name!r} or one of its "
                       f"subclasses")
