"""Concurrency lint: SIM3xx lock-discipline checks over Python source.

PR 3's simcheck turned *query* correctness rules into stable, mechanical
diagnostics; this module does the same for the engine's *concurrency*
rules, so the move to finer-grained locking has a gate.  The checks run
over the engine's own source with ``ast`` — no imports, no execution —
driven by the declared lock hierarchy in :mod:`repro.analysis.lock_order`:

``SIM300``
    a ``.acquire()`` call on a lock-like attribute outside a ``with``
    statement (manual acquire/release pairs leak on exceptions).
``SIM301``
    a ``with`` on a ranked lock lexically nested inside a ``with`` on a
    lower-or-equal-ranked lock — an inversion of the declared
    descending-acquisition order that runtime lockdep would reject.
``SIM302``
    a blocking call (socket I/O, ``Future.result``, ``WAL.force``,
    ``Condition.wait`` without a timeout) lexically inside a ``with``
    on a lock — the classic latency/deadlock amplifier.
``SIM303``
    an assignment to instance state of a known-threaded class (or a
    ``global`` write in a known-threaded module) with no guarding
    ``with <lock>:`` in scope; ``__init__`` is exempt.
``SIM304``
    a ``Condition.wait``/``wait_for``-less bare ``wait`` call not
    enclosed in a ``while`` predicate loop — spurious wakeups fall
    through to stale state.

Findings are ordinary :class:`~repro.analysis.diagnostics.Diagnostic`
records (``source="concurrency"``), so the CLI, CI lanes, and the E15
lint benchmark all consume them unchanged.  Suppression: a trailing
``# noqa: SIM30x`` on the offending line; for SIM303 the ``def`` line
of the enclosing function also works (one escape hatch per
caller-holds-the-lock helper, not per statement).
"""

from __future__ import annotations

import ast
import os
import re
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.diagnostics import Diagnostic, DiagnosticSink
from repro.analysis.lock_order import (
    BLOCKING_CALLS,
    CONDITION_HINTS,
    LOCK_RANKS,
    THREADED_CLASSES,
    THREADED_MODULES,
    is_lock_name,
    site_rank,
)
from repro.lexer import Span

_NOQA_RE = re.compile(r"#\s*noqa:\s*([A-Z0-9, ]+)")


def _noqa_lines(source: str) -> Dict[int, Set[str]]:
    """line number -> set of SIM codes suppressed on that line."""
    table: Dict[int, Set[str]] = {}
    for number, line in enumerate(source.splitlines(), start=1):
        match = _NOQA_RE.search(line)
        if match:
            codes = {c.strip() for c in match.group(1).split(",")}
            table[number] = {c for c in codes if c}
    return table


def _dotted(node: ast.AST) -> Optional[str]:
    """``self._lock`` / ``store.commit_latch`` as a dotted string, else
    None for anything that is not a simple attribute chain."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class _HeldLock:
    """One lexically-entered ``with <lock>:`` scope."""

    __slots__ = ("dotted", "lock_class", "rank", "line")

    def __init__(self, dotted: str, lock_class: Optional[str], line: int):
        self.dotted = dotted
        self.lock_class = lock_class
        self.rank = LOCK_RANKS.get(lock_class) if lock_class else None
        self.line = line


class _ConcurrencyVisitor(ast.NodeVisitor):
    def __init__(self, module_basename: str, sink: DiagnosticSink):
        self.module = module_basename
        self.sink = sink
        self.held: List[_HeldLock] = []
        #: stack of (function node, enclosing class name or None)
        self.functions: List[Tuple[ast.AST, Optional[str]]] = []
        self.class_stack: List[str] = []
        self.while_depth = 0

    # -- helpers -------------------------------------------------------

    def _emit(self, code: str, message: str, node: ast.AST,
              hint: Optional[str] = None) -> None:
        span = Span(getattr(node, "lineno", 0),
                    getattr(node, "col_offset", 0) + 1)
        self.sink.emit(code, message, span, hint)

    def _in_init(self) -> bool:
        return bool(self.functions) and isinstance(
            self.functions[-1][0],
            (ast.FunctionDef, ast.AsyncFunctionDef)) \
            and self.functions[-1][0].name == "__init__"

    def _def_line(self) -> Optional[int]:
        if self.functions:
            return self.functions[-1][0].lineno
        return None

    # -- structure -----------------------------------------------------

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self.class_stack.append(node.name)
        self.generic_visit(node)
        self.class_stack.pop()

    def _visit_function(self, node) -> None:
        enclosing = self.class_stack[-1] if self.class_stack else None
        self.functions.append((node, enclosing))
        # A nested function body does not inherit the lexical lock scope:
        # it usually runs later, on another thread or after release.
        saved_held, self.held = self.held, []
        saved_while, self.while_depth = self.while_depth, 0
        self.generic_visit(node)
        self.held = saved_held
        self.while_depth = saved_while
        self.functions.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def visit_While(self, node: ast.While) -> None:
        self.while_depth += 1
        self.generic_visit(node)
        self.while_depth -= 1

    def visit_With(self, node: ast.With) -> None:
        entered: List[_HeldLock] = []
        for item in node.items:
            expr = item.context_expr
            dotted = _dotted(expr)
            if dotted is None or not is_lock_name(dotted):
                continue
            lock_class = site_rank(self.module, dotted)
            held = _HeldLock(dotted, lock_class, node.lineno)
            self._check_inversion(held, expr)
            entered.append(held)
        self.held.extend(entered)
        self.generic_visit(node)
        for _ in entered:
            self.held.pop()

    def _check_inversion(self, new: _HeldLock, node: ast.AST) -> None:
        if new.rank is None:
            return
        for outer in self.held:
            if outer.rank is None or outer.dotted == new.dotted:
                continue
            if new.rank >= outer.rank:
                self._emit(
                    "SIM301",
                    f"acquiring {new.lock_class!r} (rank {new.rank}) "
                    f"inside {outer.lock_class!r} (rank {outer.rank}) "
                    f"inverts the declared order",
                    node,
                    hint="acquire in descending rank: see "
                         "analysis/lock_order.py")

    # -- calls (SIM300, SIM302, SIM304) --------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            receiver = _dotted(func.value)
            method = func.attr
            if method == "acquire" and receiver \
                    and is_lock_name(receiver):
                self._emit(
                    "SIM300",
                    f"{receiver}.acquire() outside a with block leaks "
                    f"the lock on any exception before release",
                    node,
                    hint=f"use `with {receiver}:`")
            if method in ("wait", "wait_for") and receiver \
                    and self._is_condition(receiver):
                self._check_wait(node, receiver, method)
            if self.held and method in BLOCKING_CALLS and receiver:
                hints = BLOCKING_CALLS[method]
                low = receiver.lower()
                if any(h in low for h in hints):
                    holder = self.held[-1]
                    self._emit(
                        "SIM302",
                        f"{receiver}.{method}() may block while "
                        f"{holder.dotted} (entered line {holder.line}) "
                        f"is held",
                        node,
                        hint="move the blocking call outside the lock "
                             "or bound it with a timeout")
        self.generic_visit(node)

    def _is_condition(self, receiver: str) -> bool:
        leaf = receiver.rsplit(".", 1)[-1].lower()
        return any(h in leaf for h in CONDITION_HINTS)

    def _check_wait(self, node: ast.Call, receiver: str,
                    method: str) -> None:
        has_timeout = bool(node.keywords) or (
            method == "wait" and len(node.args) >= 1) or (
            method == "wait_for" and len(node.args) >= 2)
        if method == "wait" and not has_timeout:
            self._emit(
                "SIM302",
                f"{receiver}.wait() without a timeout blocks "
                f"indefinitely while holding the condition's lock",
                node,
                hint="pass a timeout slice, or use wait_for with one")
        if method == "wait" and self.while_depth == 0:
            self._emit(
                "SIM304",
                f"{receiver}.wait() outside a while predicate loop: a "
                f"spurious wakeup falls through with stale state",
                node,
                hint="loop `while not predicate: wait(...)`, or use "
                     "wait_for")

    # -- shared-state writes (SIM303) ----------------------------------

    def _current_threaded_class(self) -> Optional[str]:
        if not self.functions:
            return None
        enclosing = self.functions[-1][1]
        if enclosing in THREADED_CLASSES:
            return enclosing
        return None

    def _check_self_write(self, target: ast.AST, node: ast.AST) -> None:
        owner = self._current_threaded_class()
        if owner is None or self._in_init() or self.held:
            return
        dotted = _dotted(target)
        if dotted is None or not dotted.startswith("self."):
            return
        if is_lock_name(dotted):
            return  # installing the lock itself
        self._emit(
            "SIM303",
            f"write to {dotted} in threaded class {owner} with no "
            f"guarding lock in scope",
            node,
            hint="wrap in `with <lock>:` or mark the helper "
                 "`# noqa: SIM303` if the caller holds it")

    def _check_global_write(self, name: str, node: ast.AST) -> None:
        if self.module not in THREADED_MODULES or self.held:
            return
        if not self.functions:
            return  # module top level runs at import, single-threaded
        declared_global = any(
            isinstance(stmt, ast.Global) and name in stmt.names
            for stmt in ast.walk(self.functions[-1][0]))
        if declared_global:
            self._emit(
                "SIM303",
                f"write to module global {name!r} in threaded module "
                f"{self.module} with no guarding lock in scope",
                node)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            for leaf in self._assign_leaves(target):
                if isinstance(leaf, ast.Attribute):
                    self._check_self_write(leaf, node)
                elif isinstance(leaf, ast.Name):
                    self._check_global_write(leaf.id, node)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if isinstance(node.target, ast.Attribute):
            self._check_self_write(node.target, node)
        elif isinstance(node.target, ast.Name):
            self._check_global_write(node.target.id, node)
        self.generic_visit(node)

    def _assign_leaves(self, target: ast.AST) -> Iterable[ast.AST]:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                yield from self._assign_leaves(element)
        else:
            yield target


def _suppressed(diagnostic: Diagnostic, noqa: Dict[int, Set[str]],
                def_lines: Dict[int, int]) -> bool:
    line = diagnostic.span.line
    if diagnostic.code in noqa.get(line, ()):
        return True
    if diagnostic.code == "SIM303":
        def_line = def_lines.get(line)
        if def_line is not None and diagnostic.code in noqa.get(
                def_line, ()):
            return True
    return False


def _function_lines(tree: ast.Module) -> Dict[int, int]:
    """Finding line -> innermost enclosing ``def`` line (for def-level
    SIM303 suppression)."""
    table: Dict[int, int] = {}
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            end = getattr(node, "end_lineno", node.lineno)
            for line in range(node.lineno, end + 1):
                # Innermost wins: later (nested) defs overwrite.
                table[line] = node.lineno
    return table


def lint_concurrency_source(source: str,
                            path: str = "<memory>") -> List[Diagnostic]:
    """SIM3xx diagnostics for one Python source text."""
    sink = DiagnosticSink(source="concurrency")
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        sink.emit("SIM300",
                  f"cannot parse {path}: {exc}",
                  Span(exc.lineno or 0, (exc.offset or 0) or 1),
                  severity="error")
        return sink.items
    visitor = _ConcurrencyVisitor(os.path.basename(path), sink)
    visitor.visit(tree)
    noqa = _noqa_lines(source)
    def_lines = _function_lines(tree)
    return [d for d in sink.sorted()
            if not _suppressed(d, noqa, def_lines)]


def _python_files(paths: Iterable[str]) -> List[str]:
    files: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for root, _dirs, names in os.walk(path):
                for name in sorted(names):
                    if name.endswith(".py"):
                        files.append(os.path.join(root, name))
        elif path.endswith(".py"):
            files.append(path)
    return files


def lint_concurrency_paths(paths: Iterable[str]
                           ) -> List[Tuple[str, Diagnostic]]:
    """Sweep files/directories; returns (path, diagnostic) pairs."""
    reported: List[Tuple[str, Diagnostic]] = []
    for file_path in _python_files(paths):
        with open(file_path) as handle:
            source = handle.read()
        reported.extend((file_path, d)
                        for d in lint_concurrency_source(source, file_path))
    return reported
