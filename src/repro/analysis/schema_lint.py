"""Schema lint: structural diagnostics for SIM DDL (rules SIM0xx).

Works on an *unresolved* schema so one run can report many problems —
:meth:`Schema.resolve` stops at the first.  The checks mirror resolution
(generalization DAG, inverse pairing, subrole declarations, inherited
attribute computation) but collect :class:`Diagnostic` records instead of
raising, then re-run the resolver + qualifier on a clean schema for the
deep checks (VERIFY assertions, derived attributes, views).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Union

from repro.errors import (
    DDLSyntaxError,
    DMLSyntaxError,
    QualificationError,
    SchemaError,
)
from repro.lexer import Span
from repro.naming import canon
from repro.analysis.diagnostics import Diagnostic, DiagnosticSink
from repro.dml.ast import (
    Aggregate,
    Binary,
    FunctionCall,
    IsaTest,
    Path,
    Quantified,
    Unary,
)
from repro.dml.parser import parse_expression
from repro.schema.ddl_parser import parse_ddl
from repro.schema.schema import Schema


def lint_schema(source: Union[str, Schema]) -> List[Diagnostic]:
    """Lint DDL text (or a Schema object) and return all diagnostics.

    A resolved Schema is re-rendered to DDL and re-parsed, since several
    checks need the pre-resolution declaration shape (synthesized inverses
    and subroles are indistinguishable from declared ones afterwards).
    """
    sink = DiagnosticSink(source="schema")
    if isinstance(source, Schema):
        if source.resolved:
            source = source.ddl()
        else:
            _lint_unresolved(source, sink)
            return sink.sorted()
    try:
        schema = parse_ddl(source, resolve=False)
    except DDLSyntaxError as exc:
        sink.emit("SIM000", str(exc), Span(exc.line, exc.column))
        return sink.sorted()
    _lint_unresolved(schema, sink)
    if not sink.errors():
        _lint_resolved(source, sink)
    return sink.sorted()


# -- Structural pass (unresolved schema) --------------------------------------

def _lint_unresolved(schema: Schema, sink: DiagnosticSink) -> None:
    _check_generalization(schema, sink)
    _check_evas(schema, sink)
    _check_subroles(schema, sink)
    _check_shadowing(schema, sink)
    _check_constraint_classes(schema, sink)
    _check_unused_types(schema, sink)


def _check_generalization(schema: Schema, sink: DiagnosticSink) -> None:
    """SIM001 unknown superclass, SIM002 cycles, SIM003 >1 base ancestor."""
    known: Dict[str, List[str]] = {}
    for sim_class in schema.classes():
        supers = []
        for name in sim_class.superclass_names:
            if name == sim_class.name:
                sink.emit("SIM002",
                          f"class {sim_class.name!r} is its own superclass",
                          sim_class.span)
            elif not schema.has_class(name):
                sink.emit("SIM001",
                          f"class {sim_class.name!r} names unknown "
                          f"superclass {name!r}", sim_class.span,
                          hint="declare the superclass or fix the spelling")
            else:
                supers.append(name)
        known[sim_class.name] = supers

    # Kahn's algorithm over the known edges finds cycles.
    indegree = {name: len(supers) for name, supers in known.items()}
    queue = [name for name, degree in indegree.items() if degree == 0]
    seen = 0
    while queue:
        name = queue.pop()
        seen += 1
        for other, supers in known.items():
            if name in supers:
                indegree[other] -= 1
                if indegree[other] == 0:
                    queue.append(other)
    if seen != len(known):
        cyclic = sorted(n for n, d in indegree.items() if d > 0)
        for name in cyclic:
            sink.emit("SIM002",
                      f"generalization cycle through class {name!r}",
                      schema.get_class(name).span)
        return

    # Base-class ancestors, memoized bottom-up.
    bases: Dict[str, Set[str]] = {}

    def base_ancestors(name: str) -> Set[str]:
        if name not in bases:
            supers = known[name]
            if not supers:
                bases[name] = {name}
            else:
                merged: Set[str] = set()
                for super_name in supers:
                    merged |= base_ancestors(super_name)
                bases[name] = merged
        return bases[name]

    for sim_class in schema.classes():
        ancestors = base_ancestors(sim_class.name)
        if len(ancestors) > 1:
            sink.emit("SIM003",
                      f"class {sim_class.name!r} has more than one "
                      f"base-class ancestor: {sorted(ancestors)}",
                      sim_class.span,
                      hint="a class's ancestors may contain at most one "
                           "base class (paper section 3.1)")


def _check_evas(schema: Schema, sink: DiagnosticSink) -> None:
    """SIM010-SIM016: range classes, inverse symmetry, REQUIRED pairs."""
    for sim_class in schema.classes():
        for eva in sim_class.immediate_attributes.values():
            if not eva.is_eva:
                continue
            if not schema.has_class(eva.range_class_name):
                sink.emit("SIM010",
                          f"EVA {sim_class.name}.{eva.name} names unknown "
                          f"range class {eva.range_class_name!r}", eva.span,
                          hint="declare the class, or declare a Type if a "
                               "data type was meant")
                continue
            range_class = schema.get_class(eva.range_class_name)
            if eva.inverse_name is None:
                sink.emit("SIM011",
                          f"EVA {sim_class.name}.{eva.name} has no declared "
                          f"inverse; the system will synthesize "
                          f"{'inverse-of-' + eva.name!r} on "
                          f"{range_class.name!r}", eva.span,
                          hint=f"declare '... inverse is <name>' and the "
                               f"matching EVA on {range_class.name!r}")
                continue
            # Reflexive self-inverse (spouse) is its own mutual pair.
            if (eva.inverse_name == eva.name
                    and range_class.name == sim_class.name):
                if eva.options.required:
                    sink.emit("SIM016",
                              f"reflexive EVA {sim_class.name}.{eva.name} is "
                              f"REQUIRED; no first entity could ever be "
                              f"inserted", eva.span)
                continue
            declared = range_class.immediate_attributes.get(eva.inverse_name)
            if declared is None:
                sink.emit("SIM012",
                          f"EVA {sim_class.name}.{eva.name} names inverse "
                          f"{eva.inverse_name!r}, but {range_class.name!r} "
                          f"does not declare it; the system will materialize "
                          f"a one-sided inverse", eva.span,
                          hint=f"declare {eva.inverse_name}: "
                               f"{sim_class.name} inverse is {eva.name} on "
                               f"{range_class.name!r}")
                continue
            if not declared.is_eva:
                sink.emit("SIM015",
                          f"inverse of {sim_class.name}.{eva.name} is "
                          f"{range_class.name}.{declared.name}, which is not "
                          f"an EVA", eva.span)
                continue
            if declared.range_class_name != sim_class.name:
                hierarchy_note = (
                    "" if _same_declared_hierarchy(
                        schema, declared.range_class_name, sim_class.name)
                    else "; the classes are in different hierarchies, so "
                         "this is also an illegal narrowing")
                sink.emit("SIM014",
                          f"inverse pair {sim_class.name}.{eva.name} / "
                          f"{range_class.name}.{declared.name} disagree on "
                          f"range ({declared.range_class_name!r} != "
                          f"{sim_class.name!r}){hierarchy_note}", eva.span)
            if (declared.inverse_name is not None
                    and declared.inverse_name != eva.name):
                sink.emit("SIM013",
                          f"{range_class.name}.{declared.name} names inverse "
                          f"{declared.inverse_name!r}, not {eva.name!r}",
                          eva.span,
                          hint="inverse declarations must name each other")
            if eva.options.required and declared.options.required:
                # Ordered pair emitted once (owner-name order breaks the tie).
                if (sim_class.name, eva.name) <= (range_class.name,
                                                  declared.name):
                    sink.emit("SIM016",
                              f"both {sim_class.name}.{eva.name} and its "
                              f"inverse {range_class.name}.{declared.name} "
                              f"are REQUIRED; neither class could ever "
                              f"receive its first entity", eva.span,
                              hint="drop REQUIRED from one direction")


def _same_declared_hierarchy(schema: Schema, a: str, b: str) -> bool:
    """Loose ancestor test usable before resolution (declared edges only)."""
    def ancestors(name: str, seen: Set[str]) -> Set[str]:
        if name in seen or not schema.has_class(name):
            return set()
        seen.add(name)
        result = {name}
        for super_name in schema.get_class(name).superclass_names:
            result |= ancestors(super_name, seen)
        return result
    return bool(ancestors(a, set()) & ancestors(b, set()))


def _check_subroles(schema: Schema, sink: DiagnosticSink) -> None:
    """SIM021 value-set mismatch, SIM022 multiple subrole attributes."""
    immediate_subs: Dict[str, List[str]] = {c.name: []
                                            for c in schema.classes()}
    for sim_class in schema.classes():
        for super_name in sim_class.superclass_names:
            if super_name in immediate_subs:
                immediate_subs[super_name].append(sim_class.name)
    for sim_class in schema.classes():
        declared = [a for a in sim_class.immediate_attributes.values()
                    if a.is_subrole]
        if len(declared) > 1:
            sink.emit("SIM022",
                      f"class {sim_class.name!r} declares more than one "
                      f"subrole attribute "
                      f"({', '.join(a.name for a in declared)})",
                      declared[1].span)
        if declared:
            subrole = declared[0]
            value_set = sorted(canon(n) for n in subrole.subclass_names)
            expected = sorted(immediate_subs[sim_class.name])
            if value_set != expected:
                sink.emit("SIM021",
                          f"subrole {sim_class.name}.{subrole.name} lists "
                          f"{value_set}, but the immediate subclasses are "
                          f"{expected}", subrole.span,
                          hint="the subrole value set must name exactly the "
                               "immediate subclasses")


def _check_shadowing(schema: Schema, sink: DiagnosticSink) -> None:
    """SIM020: immediate attributes clashing with inherited ones, and
    conflicting inheritance from multiple superclasses."""
    order = _safe_topological_order(schema)
    if order is None:        # graph is broken; SIM001/002 already emitted
        return
    visible: Dict[str, Dict[str, object]] = {}
    for name in order:
        sim_class = schema.get_class(name)
        merged: Dict[str, object] = {}
        for super_name in sim_class.superclass_names:
            for attr_name, attr in visible.get(super_name, {}).items():
                present = merged.get(attr_name)
                if present is not None and present is not attr:
                    sink.emit("SIM020",
                              f"class {name!r} inherits conflicting "
                              f"attributes named {attr_name!r} from multiple "
                              f"superclasses", sim_class.span,
                              hint="rename one of the superclass attributes")
                merged[attr_name] = attr
        for attr_name, attr in sim_class.immediate_attributes.items():
            if attr_name in merged:
                inherited = merged[attr_name]
                owner = getattr(inherited, "owner_name", None) or "a superclass"
                sink.emit("SIM020",
                          f"attribute {attr_name!r} of class {name!r} shadows "
                          f"the attribute inherited from {owner!r}; "
                          f"re-declaration (type narrowing) is illegal",
                          attr.span,
                          hint="inherited attributes are already visible; "
                               "remove the re-declaration")
            merged[attr_name] = attr
        visible[name] = merged


def _safe_topological_order(schema: Schema) -> Optional[List[str]]:
    known = {c.name: [s for s in c.superclass_names if schema.has_class(s)]
             for c in schema.classes()}
    order: List[str] = []
    placed: Set[str] = set()
    pending = dict(known)
    while pending:
        ready = [n for n, supers in pending.items()
                 if all(s in placed for s in supers)]
        if not ready:
            return None
        for name in sorted(ready):
            order.append(name)
            placed.add(name)
            del pending[name]
    return order


def _check_constraint_classes(schema: Schema, sink: DiagnosticSink) -> None:
    """SIM032: VERIFY (and derived/view) declarations on unknown classes."""
    for constraint in schema.constraints:
        if not schema.has_class(constraint.class_name):
            sink.emit("SIM032",
                      f"verify {constraint.name} is declared on unknown "
                      f"class {constraint.class_name!r}", constraint.span)
    for derived in schema.derived_attributes():
        if not schema.has_class(derived.class_name):
            sink.emit("SIM032",
                      f"derived attribute {derived.name!r} is declared on "
                      f"unknown class {derived.class_name!r}", derived.span)
    for view in schema.views():
        if not schema.has_class(view.class_name):
            sink.emit("SIM032",
                      f"view {view.name!r} is declared on unknown class "
                      f"{view.class_name!r}", view.span)


def _check_unused_types(schema: Schema, sink: DiagnosticSink) -> None:
    """SIM040: named types no attribute refers to."""
    used: Set[str] = set()
    for sim_class in schema.classes():
        for attr in sim_class.immediate_attributes.values():
            type_name = getattr(attr, "type_name", None)
            if type_name:
                used.add(type_name)
    for type_name, span in schema.type_spans.items():
        if type_name not in used:
            sink.emit("SIM040",
                      f"named type {type_name!r} is never used by any "
                      f"attribute", span,
                      hint="remove the declaration or use the type")


# -- Deep pass (resolved schema) ----------------------------------------------

def _lint_resolved(text: str, sink: DiagnosticSink) -> None:
    """SIM030/031/033 for VERIFY assertions, derived attributes and view
    predicates, using a freshly resolved schema and the real qualifier."""
    from repro.dml.qualification import Qualifier
    try:
        schema = parse_ddl(text)
    except SchemaError as exc:
        # Resolution found something the structural pass does not model;
        # surface it rather than silently passing a broken schema.
        sink.emit("SIM000", f"schema does not resolve: {exc}")
        return
    qualifier = Qualifier(schema)

    for constraint in schema.constraints:
        _lint_assertion(qualifier, sink,
                        f"verify {constraint.name}",
                        constraint.class_name, constraint.assertion_text,
                        constraint.span, constraint.assertion_span,
                        check_vacuous=True)
    for derived in schema.derived_attributes():
        _lint_assertion(qualifier, sink,
                        f"derived attribute {derived.name!r}",
                        derived.class_name, derived.expression_text,
                        derived.span, derived.span, check_vacuous=False)
    for view in schema.views():
        if view.where_text:
            _lint_assertion(qualifier, sink, f"view {view.name!r}",
                            view.class_name, view.where_text,
                            view.span, view.span, check_vacuous=True)


def _lint_assertion(qualifier, sink: DiagnosticSink, what: str,
                    class_name: str, text: str, decl_span: Span,
                    body_span: Span, check_vacuous: bool) -> None:
    try:
        expression = parse_expression(text)
    except DMLSyntaxError as exc:
        sink.emit("SIM033",
                  f"{what} on {class_name!r} does not parse: {exc}",
                  Span(exc.line, exc.column).offset(body_span))
        return
    if check_vacuous and not _references_attributes(expression):
        sink.emit("SIM030",
                  f"{what} on {class_name!r} does not reference any "
                  f"attribute; it is constant", decl_span,
                  hint="a constraint that never varies is either always "
                       "satisfied or always violated")
    try:
        qualifier.resolve_selection(class_name, expression)
    except QualificationError as exc:
        sink.emit("SIM031",
                  f"{what} on {class_name!r} does not resolve: {exc}",
                  body_span)


def _references_attributes(expression) -> bool:
    if isinstance(expression, Path):
        return True
    if isinstance(expression, Binary):
        return (_references_attributes(expression.left)
                or _references_attributes(expression.right))
    if isinstance(expression, Unary):
        return _references_attributes(expression.operand)
    if isinstance(expression, (Aggregate, Quantified)):
        if isinstance(expression, Aggregate) and expression.outer:
            return True
        return _references_attributes(expression.argument)
    if isinstance(expression, IsaTest):
        return True
    if isinstance(expression, FunctionCall):
        return any(_references_attributes(a) for a in expression.args)
    return False
