"""The catalog as a SIM database.

``META_DDL`` defines the meta-schema — classes describing classes,
attributes and constraints, with EVAs for ownership, inheritance, EVA
ranges and inverse pairing.  :func:`build_catalog` populates a meta
database from any resolved user schema; the result answers DML queries
like::

    From db-class Retrieve name Where is-base = true
    From db-attribute Retrieve name of owner, name
        Where kind = "eva" and mv = true
"""

from __future__ import annotations

from repro.database import Database
from repro.schema.schema import Schema

META_DDL = """
(* Meta-schema: the catalog is itself a SIM database (paper section 6). *)

Class Db-Class (
  name: string[60] unique required;
  is-base: boolean required;
  level: integer required;
  subclass-count: integer;
  superclasses: db-class inverse is subclasses mv;
  subclasses: db-class inverse is superclasses mv;
  attributes: db-attribute inverse is owner mv );

Class Db-Attribute (
  name: string[60] required;
  kind: string[10] required;          (* dva, eva, subrole, surrogate *)
  type-name: string[40];
  required-option: boolean;
  unique-option: boolean;
  mv: boolean;
  distinct-option: boolean;
  max-cardinality: integer;
  owner: db-class inverse is attributes;
  range: db-class inverse is range-of;
  inverse-attr: db-attribute inverse is inverse-attr );

Class Db-Constraint (
  name: string[60] unique required;
  assertion: string[400];
  message: string[200];
  on-class: db-class inverse is constraints );
"""


def build_catalog(schema: Schema) -> Database:
    """Populate a catalog database describing ``schema``."""
    if not schema.resolved:
        raise ValueError("catalog needs a resolved schema")
    catalog = Database(META_DDL, constraint_mode="off", use_optimizer=False)
    store = catalog.store
    meta = catalog.schema

    class_meta = meta.get_class("db-class")
    attr_meta = meta.get_class("db-attribute")
    constraint_meta = meta.get_class("db-constraint")
    superclasses_eva = class_meta.attribute("superclasses")
    attributes_eva = attr_meta.attribute("owner")
    range_eva = attr_meta.attribute("range")
    inverse_eva = attr_meta.attribute("inverse-attr")
    on_class_eva = constraint_meta.attribute("on-class")

    class_surrogate = {}
    for sim_class in schema.classes():
        class_surrogate[sim_class.name] = store.insert_entity("db-class", {
            "name": sim_class.name,
            "is-base": sim_class.is_base,
            "level": sim_class.level,
            "subclass-count": len(sim_class.subclass_names),
        })
    for sim_class in schema.classes():
        for super_name in sim_class.superclass_names:
            store.eva_include(class_surrogate[sim_class.name],
                              superclasses_eva,
                              class_surrogate[super_name])

    attr_surrogate = {}
    for sim_class in schema.classes():
        for attr in sim_class.immediate_attributes.values():
            if attr.is_eva:
                kind = "eva"
            elif attr.is_subrole:
                kind = "subrole"
            elif attr.is_surrogate:
                kind = "surrogate"
            else:
                kind = "dva"
            surrogate = store.insert_entity("db-attribute", {
                "name": attr.name,
                "kind": kind,
                "type-name": (None if attr.is_eva
                              else attr.data_type.ddl()[:40]),
                "required-option": attr.options.required,
                "unique-option": attr.options.unique,
                "mv": attr.options.mv,
                "distinct-option": attr.options.distinct,
                "max-cardinality": attr.options.max_cardinality,
            })
            attr_surrogate[(sim_class.name, attr.name)] = surrogate
            store.eva_include(surrogate, attributes_eva,
                              class_surrogate[sim_class.name])
            if attr.is_eva:
                store.eva_include(surrogate, range_eva,
                                  class_surrogate[attr.range_class_name])
    # Pair inverse attributes (second pass, both must exist).
    for sim_class in schema.classes():
        for attr in sim_class.immediate_evas():
            inverse = attr.inverse
            if inverse is attr:
                continue
            mine = attr_surrogate[(sim_class.name, attr.name)]
            theirs = attr_surrogate[(inverse.owner_name, inverse.name)]
            if mine < theirs:
                store.eva_include(mine, inverse_eva, theirs)

    for constraint in schema.constraints:
        surrogate = store.insert_entity("db-constraint", {
            "name": constraint.name,
            "assertion": constraint.assertion_text[:400],
            "message": constraint.else_message[:200],
        })
        store.eva_include(surrogate, on_class_eva,
                          class_surrogate[constraint.class_name])
    return catalog
