"""The Directory (catalog) Manager (paper Figure 1, §6).

The paper's data dictionary ADDS "is itself a SIM database"; in the same
spirit, :func:`repro.directory.catalog.build_catalog` renders any resolved
schema as a SIM database over a meta-schema, so the catalog can be queried
with ordinary SIM DML.
"""

from repro.directory.catalog import META_DDL, build_catalog

__all__ = ["META_DDL", "build_catalog"]
