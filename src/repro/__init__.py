"""repro — a from-scratch reproduction of SIM, the Semantic Information
Manager (Jagannathan et al., SIGMOD 1988).

Public API highlights:

* :class:`repro.Database` — open a schema (DDL text or a built
  :class:`repro.schema.Schema`) and run SIM DML;
* :func:`repro.parse_ddl` / :func:`repro.parse_dml` — the two languages;
* :class:`repro.PhysicalDesign` — the §5.2 physical mapping options;
* :mod:`repro.workloads` — the UNIVERSITY database of the paper's §7 and
  synthetic workload generators;
* :mod:`repro.baseline` — a small relational engine used as the
  comparison baseline in the benchmarks.
"""

from repro.database import Database
from repro.dml.parser import parse_dml, parse_expression
from repro.errors import (
    CardinalityViolation,
    ConstraintViolation,
    DDLSyntaxError,
    DMLSyntaxError,
    IntegrityError,
    QualificationError,
    RequiredViolation,
    SchemaError,
    SimError,
    UniquenessViolation,
)
from repro.mapper.physical import (
    EvaMapping,
    HierarchyMapping,
    MvDvaMapping,
    PhysicalDesign,
    SurrogateKeyKind,
)
from repro.engine.sessions import (DeadlockError, LockConflict, LockTimeout,
                                   Session)
from repro.schema.ddl_parser import parse_ddl
from repro.schema.schema import Schema
from repro.types.tvl import NULL, UNKNOWN

__version__ = "1.0.0"

__all__ = [
    "Database",
    "parse_dml",
    "parse_expression",
    "parse_ddl",
    "Schema",
    "PhysicalDesign",
    "EvaMapping",
    "HierarchyMapping",
    "MvDvaMapping",
    "SurrogateKeyKind",
    "Session",
    "LockConflict",
    "LockTimeout",
    "DeadlockError",
    "NULL",
    "UNKNOWN",
    "SimError",
    "SchemaError",
    "DDLSyntaxError",
    "DMLSyntaxError",
    "QualificationError",
    "IntegrityError",
    "ConstraintViolation",
    "UniquenessViolation",
    "RequiredViolation",
    "CardinalityViolation",
    "__version__",
]
