"""Semantic consistency checker — the crash-torture oracle.

SIM stores one entity's data split across base- and subclass records with
system-maintained EVA inverses (§5.1/§5.2; cf. Litwin's *Stored and
Inherited Relations*): a torn or lost block can break *semantic*
invariants — a subclass role without its base record, an EVA visible from
one side only, an index entry pointing at a ghost — that no page checksum
would notice.  :func:`check_store` sweeps the physical state and verifies:

* **surrogate indexes ↔ records** — every stored role record is indexed
  at its RID, and every index entry resolves to a live record;
* **hierarchy membership** — subclass-role ⊆ superclass-role, for every
  entity and every superclass edge;
* **EVA/inverse symmetry** — each relationship instance, however mapped
  (structure record, foreign key, pointer array), is reachable from both
  endpoints, both endpoints hold the participating roles, and the
  runtime ``instance_count`` matches the physical population;
* **secondary indexes** — unique/value/MV-DVA index entries agree
  exactly with record contents (and MV values have a living owner);
* **free-space accounting** — each block's used-width header and the
  file's free-space map match the slot directory, and record counts add
  up;
* **declared constraints** (optional) — REQUIRED attributes are
  non-null and UNIQUE attributes unduplicated *on disk*, independent of
  what the engine enforced on the way in.

The checker is deliberately white-box (it reads the Mapper's structures
directly) and runs with the read cache and any materialized derived
relations disabled — verdicts must come from physical state, never from
cached decodes or stored derivations.  It mutates nothing.
"""

from __future__ import annotations

import contextlib
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.mapper.physical import EvaMapping
from repro.naming import canon
from repro.storage.records import RID
from repro.types.tvl import is_null


@dataclass
class CheckReport:
    """Outcome of one consistency sweep.

    ``problems`` — human-readable findings, each tagged ``[category]``;
    ``checked`` — how much ground the sweep covered (records, index
    entries, EVA instances...), so an "all clear" is auditable."""

    problems: List[str] = field(default_factory=list)
    checked: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.problems

    def __bool__(self) -> bool:
        return self.ok

    def add(self, category: str, message: str) -> None:
        self.problems.append(f"[{category}] {message}")

    def bump(self, what: str, count: int = 1) -> None:
        self.checked[what] = self.checked.get(what, 0) + count

    def summary(self) -> str:
        ground = ", ".join(f"{k}={v}" for k, v in sorted(self.checked.items()))
        if self.ok:
            return f"consistent ({ground})"
        head = "; ".join(self.problems[:5])
        more = f" (+{len(self.problems) - 5} more)" if len(self.problems) > 5 \
            else ""
        return f"{len(self.problems)} problem(s): {head}{more} ({ground})"

    def __repr__(self):
        state = "ok" if self.ok else f"{len(self.problems)} problems"
        return f"<CheckReport {state}>"


def check_store(store, constraints: bool = True) -> CheckReport:
    """Sweep a :class:`~repro.mapper.store.MapperStore` for semantic
    consistency.  Read-only; returns a :class:`CheckReport`."""
    report = CheckReport()
    with contextlib.ExitStack() as stack:
        stack.enter_context(store.read_cache.disabled())
        if store.materialized is not None:
            stack.enter_context(store.materialized.disabled())
        scans = _scan_classes(store, report)
        _check_surrogate_indexes(store, scans, report)
        _check_hierarchy(store, scans, report)
        _check_secondary_indexes(store, scans, report)
        _check_mvdva(store, scans, report)
        _check_evas(store, scans, report)
        _check_free_space(store, report)
        if constraints:
            _check_constraints(store, scans, report)
    return report


# ------------------------------------------------------------------ scanning

def _scan_classes(store, report) -> Dict[str, Dict[int, Tuple[RID, dict]]]:
    """Physical scan of every class unit: class -> {surrogate: (rid,
    record)}.  Also flags surrogate duplication within one class."""
    scans: Dict[str, Dict[int, Tuple[RID, dict]]] = {}
    for class_name, record_file in store._class_file.items():
        format_id = store._class_format[class_name]
        members: Dict[int, Tuple[RID, dict]] = {}
        for rid, _, record in record_file.scan(format_id):
            surrogate = record["surrogate"]
            if surrogate in members:
                report.add("identity",
                           f"{class_name}: surrogate {surrogate} stored "
                           f"twice ({members[surrogate][0]} and {rid})")
            members[surrogate] = (rid, record)
        scans[class_name] = members
        report.bump("records", len(members))
    return scans


# ------------------------------------------------------------------- indexes

def _check_surrogate_indexes(store, scans, report) -> None:
    for class_name, members in scans.items():
        index = store._surrogate_index[class_name]
        for surrogate, (rid, _) in members.items():
            if index.lookup_one(surrogate) != rid:
                report.add("index",
                           f"surr--{class_name}: record {surrogate}@{rid} "
                           f"not indexed (or at wrong rid)")
        for surrogate, rid in index.items():
            entry = members.get(surrogate)
            if entry is None or entry[0] != rid:
                report.add("index",
                           f"surr--{class_name}: stale entry "
                           f"{surrogate} -> {rid}")
        report.bump("surrogate_index_entries", index.entries)


def _check_hierarchy(store, scans, report) -> None:
    """Subclass-role membership must be contained in every superclass."""
    for class_name, members in scans.items():
        sim_class = store.schema.get_class(class_name)
        for super_name in sim_class.superclass_names:
            super_members = scans.get(canon(super_name), {})
            for surrogate in members:
                report.bump("hierarchy_edges")
                if surrogate not in super_members:
                    report.add("hierarchy",
                               f"entity {surrogate} has role {class_name!r} "
                               f"but no {super_name!r} record")


def _check_secondary_indexes(store, scans, report) -> None:
    groups = (("unique", store._unique_index),
              ("value", store._value_index))
    for label, indexes in groups:
        for (class_name, attr_name), index in indexes.items():
            members = scans.get(class_name, {})
            expected = set()
            for surrogate, (rid, record) in members.items():
                value = record.get(attr_name)
                if not is_null(value):
                    expected.add((value, rid))
            actual = set(index.items())
            for value, rid in expected - actual:
                report.add("index",
                           f"{label} index {class_name}.{attr_name}: "
                           f"record value {value!r}@{rid} not indexed")
            for value, rid in actual - expected:
                report.add("index",
                           f"{label} index {class_name}.{attr_name}: "
                           f"stale entry {value!r} -> {rid}")
            report.bump("secondary_index_entries", len(actual))


def _check_mvdva(store, scans, report) -> None:
    for key, record_file in store._mvdva_file.items():
        class_name, attr_name = key
        index = store._mvdva_index[key]
        members = scans.get(class_name, {})
        expected = set()
        for rid, _, record in record_file.scan(store._mvdva_format[key]):
            owner = record["owner"]
            expected.add((owner, rid))
            if owner not in members:
                report.add("mvdva",
                           f"{class_name}.{attr_name}: value row {rid} "
                           f"owned by absent entity {owner}")
        actual = set(index.items())
        for owner, rid in expected - actual:
            report.add("index",
                       f"mv index {class_name}.{attr_name}: row {rid} of "
                       f"owner {owner} not indexed")
        for owner, rid in actual - expected:
            report.add("index",
                       f"mv index {class_name}.{attr_name}: stale entry "
                       f"{owner} -> {rid}")
        report.bump("mvdva_rows", len(expected))


# ---------------------------------------------------------------------- EVAs

def _check_evas(store, scans, report) -> None:
    for info in store._eva_info.values():
        canonical = info.canonical
        owner_class = canon(canonical.owner_name)
        range_class = canon(canonical.range_class_name)
        if info.mapping is EvaMapping.FOREIGN_KEY:
            count = _check_fk_eva(store, info, scans, report)
        elif info.mapping is EvaMapping.POINTER:
            count = _check_ptr_eva(store, info, scans, report)
        else:
            count = _check_structure_eva(store, info, scans, report,
                                         owner_class, range_class)
        if info.instance_count != count:
            report.add("eva",
                       f"{owner_class}.{canonical.name}: instance_count "
                       f"{info.instance_count} != physical {count}")
        report.bump("eva_instances", count)


def _check_structure_eva(store, info, scans, report, owner_class,
                         range_class) -> int:
    count = 0
    forward_expected, reverse_expected = set(), set()
    for rid, _, record in info.file.scan(info.format_id):
        if record["rel"] != info.rel_id:
            continue
        count += 1
        surr1, surr2 = record["surr1"], record["surr2"]
        name = f"{owner_class}.{info.canonical.name}"
        if surr1 not in scans.get(owner_class, {}):
            report.add("eva", f"{name}: instance ({surr1}, {surr2}) dangles "
                              f"— {surr1} has no {owner_class!r} role")
        if surr2 not in scans.get(range_class, {}):
            report.add("eva", f"{name}: instance ({surr1}, {surr2}) dangles "
                              f"— {surr2} has no {range_class!r} role")
        forward_expected.add(((info.rel_id, surr1), rid))
        reverse_expected.add(((info.rel_id, surr2), rid))
    _compare_index(info.forward, forward_expected,
                   f"fwd--{owner_class}--{info.canonical.name}", report)
    _compare_index(info.reverse, reverse_expected,
                   f"rev--{owner_class}--{info.canonical.name}", report)
    return count


def _check_fk_eva(store, info, scans, report) -> int:
    holder_class = canon(info.fk_eva.owner_name)
    target_class = canon(info.fk_eva.range_class_name)
    name = f"{holder_class}.{info.fk_eva.name}"
    count = 0
    reverse_expected = set()
    for surrogate, (rid, record) in scans.get(holder_class, {}).items():
        value = record.get(info.fk_field)
        if is_null(value):
            continue
        count += 1
        if value not in scans.get(target_class, {}):
            report.add("eva", f"{name}: entity {surrogate} references "
                              f"absent {target_class!r} entity {value}")
        reverse_expected.add((value, rid))
    _compare_index(info.fk_reverse, reverse_expected,
                   f"fkrev--{name}", report)
    return count


def _check_ptr_eva(store, info, scans, report) -> int:
    owner_class = canon(info.canonical.owner_name)
    range_class = canon(info.canonical.range_class_name)
    name = f"{owner_class}.{info.canonical.name}"
    count = 0
    reverse_expected = set()
    for surrogate, (rid, record) in scans.get(owner_class, {}).items():
        stored = record.get(info.ptr_field)
        if is_null(stored):
            continue
        for target_surr, block, slot in stored:
            count += 1
            target = scans.get(range_class, {}).get(target_surr)
            if target is None:
                report.add("eva", f"{name}: entity {surrogate} points at "
                                  f"absent {range_class!r} entity "
                                  f"{target_surr}")
            elif target[0] != RID(block, slot):
                report.add("eva", f"{name}: stale absolute address for "
                                  f"{target_surr} ({RID(block, slot)} vs "
                                  f"{target[0]})")
            reverse_expected.add((target_surr, rid))
    _compare_index(info.ptr_reverse, reverse_expected,
                   f"ptrrev--{name}", report)
    return count


def _compare_index(index, expected, name, report) -> None:
    actual = set(index.items())
    for key, rid in expected - actual:
        report.add("index", f"{name}: missing entry {key!r} -> {rid}")
    for key, rid in actual - expected:
        report.add("index", f"{name}: stale entry {key!r} -> {rid}")


# ----------------------------------------------------------------- substrate

def _check_free_space(store, report) -> None:
    for record_file in store._files.values():
        records_seen = 0
        for block_no in range(record_file.block_count):
            block = record_file.pool.get(record_file.file_id, block_no)
            used = 0
            for entry in block.slots:
                if entry is None:
                    continue
                format_id, _ = entry
                fmt = record_file.formats.get(format_id)
                if fmt is None:
                    report.add("free-space",
                               f"{record_file.name}: block {block_no} holds "
                               f"a record of unknown format #{format_id}")
                    continue
                used += fmt.width
                records_seen += 1
            if block.used != used:
                report.add("free-space",
                           f"{record_file.name}: block {block_no} header "
                           f"says used={block.used}, slots say {used}")
            free = record_file.free_space(block_no)
            if free != record_file.block_size - used:
                report.add("free-space",
                           f"{record_file.name}: free-space map says "
                           f"{free} free in block {block_no}, actual "
                           f"{record_file.block_size - used}")
            report.bump("blocks")
        if record_file.record_count != records_seen:
            report.add("free-space",
                       f"{record_file.name}: record_count "
                       f"{record_file.record_count} != scanned "
                       f"{records_seen}")


# --------------------------------------------------------------- constraints

def _check_constraints(store, scans, report) -> None:
    """REQUIRED / UNIQUE as stored on disk — the declarative subset of the
    schema the checker can verify without running VERIFY assertions."""
    for class_name, members in scans.items():
        sim_class = store.schema.get_class(class_name)
        for attr in sim_class.immediate_attributes.values():
            if attr.is_eva or attr.is_subrole or attr.is_surrogate:
                continue
            if attr.options.required and attr.single_valued:
                for surrogate, (_, record) in members.items():
                    report.bump("required_checks")
                    if is_null(record.get(attr.name)):
                        report.add("constraint",
                                   f"{class_name}.{attr.name} REQUIRED but "
                                   f"null for entity {surrogate}")
            if attr.options.unique and attr.single_valued:
                values = Counter(
                    record.get(attr.name)
                    for _, record in members.values()
                    if not is_null(record.get(attr.name)))
                report.bump("unique_checks", sum(values.values()))
                for value, occurrences in values.items():
                    if occurrences > 1:
                        report.add("constraint",
                                   f"{class_name}.{attr.name} UNIQUE but "
                                   f"{value!r} stored {occurrences} times")
