"""Simulated disk and LRU buffer pool with block-I/O accounting.

All physical I/O in the system flows through one :class:`BufferPool`; its
:class:`IOStats` are the measurements our benchmarks report.  This follows
the paper's own cost vocabulary (§5.1): "the I/O cost of accessing the
first instance of a relationship will be 0 if the relationship is
implemented by clustering and 1 block access if it is implemented by
absolute addresses".
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import StorageError
from repro.storage.latch import ranked_lock


@dataclass
class IOStats:
    """Counters for one disk/buffer-pool pair."""

    logical_reads: int = 0
    physical_reads: int = 0
    physical_writes: int = 0

    def snapshot(self) -> "IOStats":
        return IOStats(self.logical_reads, self.physical_reads,
                       self.physical_writes)

    def delta(self, earlier: "IOStats") -> "IOStats":
        return IOStats(self.logical_reads - earlier.logical_reads,
                       self.physical_reads - earlier.physical_reads,
                       self.physical_writes - earlier.physical_writes)

    def reset(self) -> None:
        self.logical_reads = 0
        self.physical_reads = 0
        self.physical_writes = 0

    def __repr__(self):
        return (f"IOStats(logical={self.logical_reads}, "
                f"physical_reads={self.physical_reads}, "
                f"physical_writes={self.physical_writes})")


class Block:
    """One disk block: a list of record slots.

    ``slots[i]`` is ``None`` for a deleted record, otherwise a tuple
    ``(format_id, values_dict)``.  ``used`` tracks occupied width so files
    can decide whether another record fits.
    """

    __slots__ = ("slots", "used")

    def __init__(self):
        self.slots: List[Optional[tuple]] = []
        self.used: int = 0

    def copy(self) -> "Block":
        clone = Block()
        for entry in self.slots:
            if entry is None:
                clone.slots.append(None)
            else:
                fmt, values = entry
                clone.slots.append((fmt, dict(values)))
        clone.used = self.used
        return clone


class Disk:
    """The simulated disk: a map from (file_id, block_no) to block images.

    Reading and writing a block each count one physical I/O.  Blocks are
    deep-copied across the "device boundary" so a buffered block and its
    disk image are genuinely distinct, as on real hardware.

    ``read_latency`` models the device's per-read service time in
    seconds (default 0.0: instantaneous, so every existing deterministic
    I/O-count measurement is unaffected).  The sleep happens outside any
    buffer-pool lock, so concurrent morsel workers overlap their reads
    exactly the way threads overlap real blocking I/O.
    """

    def __init__(self, read_latency: float = 0.0):
        self._blocks: Dict[Tuple[int, int], Block] = {}
        self.stats = IOStats()
        #: modeled per-read device service time, seconds (0.0 = off)
        self.read_latency = read_latency
        # Serializes the stats counters only: concurrent morsel workers
        # read through the buffer pool, and `n += 1` is not atomic.
        self._stats_lock = threading.Lock()
        #: optional :class:`~repro.storage.faults.FaultInjector`; consulted
        #: on every read and write (may raise, or tear the written image)
        self.faults = None

    def read(self, file_id: int, block_no: int) -> Block:
        key = (file_id, block_no)
        with self._stats_lock:
            self.stats.physical_reads += 1
        if self.faults is not None:
            self.faults.on_read(file_id, block_no)
        if self.read_latency > 0.0:
            time.sleep(self.read_latency)
        image = self._blocks.get(key)
        if image is None:
            return Block()
        return image.copy()

    def write(self, file_id: int, block_no: int, block: Block) -> None:
        with self._stats_lock:
            self.stats.physical_writes += 1
        if self.faults is not None:
            block = self.faults.on_write(file_id, block_no, block)
        self._blocks[(file_id, block_no)] = block.copy()

    def exists(self, file_id: int, block_no: int) -> bool:
        return (file_id, block_no) in self._blocks

    def block_count(self, file_id: int) -> int:
        return sum(1 for fid, _ in self._blocks if fid == file_id)

    def block_numbers(self, file_id: int) -> List[int]:
        """Sorted block numbers present on disk for one file — the public
        enumeration API recovery uses instead of touching ``_blocks``."""
        return sorted(no for fid, no in self._blocks if fid == file_id)

    def fingerprint(self) -> str:
        """A canonical rendering of the entire disk image, for asserting
        that two recovery paths converge to the same bytes."""
        parts = []
        for key in sorted(self._blocks):
            block = self._blocks[key]
            parts.append(f"{key}:used={block.used}:{block.slots!r}")
        return "\n".join(parts)


class BufferPool:
    """LRU cache of blocks in front of a :class:`Disk`.

    ``capacity`` is in blocks (minimum 1).  Cold-cache measurements call
    :meth:`invalidate` between runs instead of disabling buffering.

    Thread-safety: frame-map and dirty-set mutations run under one
    re-entrant lock, while actual device reads happen *outside* it —
    concurrent morsel workers therefore overlap their (possibly
    latency-modeled) misses instead of serializing on the pool.  A
    per-block single-flight table collapses a thundering herd of readers
    of the same block into one physical read.  Eviction is O(1): the
    frames are an :class:`~collections.OrderedDict` and the LRU victim
    pops from the cold end, regardless of pool size.
    """

    def __init__(self, disk: Disk, capacity: int = 256):
        if capacity < 1:
            raise StorageError(f"buffer pool capacity must be >= 1, got {capacity}")
        self.disk = disk
        self.capacity = capacity
        #: optional write-ahead log; forced before any data-block write
        self.wal = None
        #: optional :class:`~repro.storage.faults.RetryPolicy` applied to
        #: every disk access this pool makes (transient-fault absorption)
        self.retry = None
        #: optional trace recorder (repro.trace.attach_tracing)
        self.trace = None
        self._frames: "OrderedDict[Tuple[int,int], Block]" = OrderedDict()
        self._dirty: set = set()
        # Rank 10 — the leaf of the declared lock hierarchy
        # (analysis/lock_order.py): nothing else may be acquired while
        # this is held.
        self._lock = ranked_lock("storage.buffer")
        #: in-flight physical reads: key -> Event set once installed
        self._loading: Dict[Tuple[int, int], threading.Event] = {}
        self.stats = IOStats()

    # -- Device access (retry-wrapped) -------------------------------------------

    def _disk_read(self, file_id: int, block_no: int) -> Block:
        if self.retry is not None:
            return self.retry.call(self.disk.read, file_id, block_no)
        return self.disk.read(file_id, block_no)

    def _disk_write(self, file_id: int, block_no: int, block: Block) -> None:
        if self.retry is not None:
            self.retry.call(self.disk.write, file_id, block_no, block)
        else:
            self.disk.write(file_id, block_no, block)

    # -- Block access -----------------------------------------------------------

    def get(self, file_id: int, block_no: int) -> Block:
        """Fetch a block for reading or in-place mutation.

        The caller must call :meth:`mark_dirty` after mutating.

        On a miss, exactly one caller becomes the *loader* for the block
        and performs the device read outside the pool lock; every other
        concurrent caller waits on the loader's event and then re-probes
        the frame map (looping, because a tiny pool may have evicted the
        freshly installed block again before the waiter woke up).
        """
        key = (file_id, block_no)
        first_probe = True
        while True:
            with self._lock:
                if first_probe:
                    self.stats.logical_reads += 1
                    first_probe = False
                block = self._frames.get(key)
                if block is not None:
                    self._frames.move_to_end(key)
                    return block
                waiter = self._loading.get(key)
                if waiter is None:
                    waiter = threading.Event()
                    self._loading[key] = waiter
                    break               # this thread is the loader
            waiter.wait()
        try:
            block = self._disk_read(file_id, block_no)
        except BaseException:
            with self._lock:
                self._loading.pop(key, None)
            waiter.set()
            raise
        with self._lock:
            self.stats.physical_reads += 1
            trace = self.trace
            if trace is not None and trace.enabled:
                trace.count("storage.physical_reads")
            self._install(key, block)
            self._loading.pop(key, None)
        waiter.set()
        return block

    def mark_dirty(self, file_id: int, block_no: int,
                   block: Optional[Block] = None) -> None:
        """Flag a resident block as mutated.

        A writer's frame can be evicted by a concurrent reader between
        its ``get()`` and this call — the eviction would then write back
        the *pre-mutation* image and this method used to raise, losing
        the update.  Passing the mutated ``block`` closes that race: the
        caller's image is re-installed and dirtied.  Without ``block``
        a non-resident key still raises (the historical contract).
        """
        key = (file_id, block_no)
        with self._lock:
            if key not in self._frames:
                if block is None:
                    raise StorageError(
                        f"block {key} not resident; cannot dirty it")
                self._install(key, block)
            self._dirty.add(key)

    def _install(self, key: Tuple[int, int], block: Block) -> None:
        # Caller holds self._lock.
        self._frames[key] = block
        self._evict_down_to(self.capacity)

    def _evict_down_to(self, capacity: int) -> None:  # noqa: SIM303
        # Caller holds self._lock.
        while len(self._frames) > capacity:
            victim_key, victim = self._frames.popitem(last=False)
            if victim_key in self._dirty:
                if self.wal is not None:
                    self.wal.force()   # the WAL rule: log before data
                self._disk_write(*victim_key, victim)
                self.stats.physical_writes += 1
                trace = self.trace
                if trace is not None and trace.enabled:
                    trace.count("storage.physical_writes")
                self._dirty.discard(victim_key)

    # -- Maintenance --------------------------------------------------------------

    def flush(self) -> None:
        """Write all dirty blocks back to disk (keeps them resident)."""
        with self._lock:
            if self.wal is not None and self._dirty:
                # The WAL rule: log reaches disk before any data page it
                # covers.  Forcing under the pool lock is deliberate —
                # no page may be written (or redirtied) mid-force.
                self.wal.force()  # noqa: SIM302
            trace = self.trace
            tracing = trace is not None and trace.enabled
            for key in sorted(self._dirty):
                self._disk_write(*key, self._frames[key])
                self.stats.physical_writes += 1
                if tracing:
                    trace.count("storage.physical_writes")
                self._dirty.discard(key)

    def invalidate(self) -> None:
        """Drop every frame (flushing dirty ones) — a cold cache."""
        with self._lock:
            self.flush()
            self._frames.clear()

    def resize(self, capacity: int) -> None:
        if capacity < 1:
            raise StorageError(f"buffer pool capacity must be >= 1, got {capacity}")
        with self._lock:
            self.capacity = capacity
            self._evict_down_to(capacity)

    @property
    def resident_blocks(self) -> int:
        with self._lock:
            return len(self._frames)
