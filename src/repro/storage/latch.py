"""Construction-time indirection for ranked locks.

Storage and mapper modules cannot import :mod:`repro.engine.lockdep` at
module top level: importing any ``repro.engine`` submodule executes the
engine package ``__init__``, which imports ``engine.access``, which
imports ``repro.mapper.store`` — a cycle when the mapper/storage module
is itself mid-import.  This module has no imports of its own, so any
layer can import it; the lockdep import happens at *construction* time,
by which point the package graph is complete.
"""

from __future__ import annotations


def ranked_lock(name: str):
    """An ``RLock`` that participates in lockdep order checking."""
    from repro.engine.lockdep import RankedLock
    return RankedLock(name)


def ranked_condition(lock):
    """A condition variable over a :func:`ranked_lock` lock."""
    from repro.engine.lockdep import RankedCondition
    return RankedCondition(lock)
