"""Block-structured storage substrate (the DMSII stand-in).

The paper's SIM is built on DMSII, which supplies "transaction, cursor and
I/O management" (§1) on Unisys A-Series hardware.  We substitute a pure-
Python block-structured store with:

* a simulated disk and an LRU buffer pool that counts logical and physical
  block accesses (:mod:`repro.storage.buffer`) — the unit the paper's
  §5.1/§5.2 cost discussion is written in;
* record files with fixed-width, variable-format records, slotted blocks,
  free-space tracking and clustered placement (:mod:`repro.storage.files`);
* hash, ordered (index-sequential) and direct-key indexes
  (:mod:`repro.storage.index`);
* an undo-log transaction manager (:mod:`repro.storage.transactions`).
"""

from repro.storage.buffer import BufferPool, Disk, IOStats
from repro.storage.records import RecordFormat, RID
from repro.storage.files import RecordFile
from repro.storage.index import DirectIndex, HashIndex, OrderedIndex
from repro.storage.transactions import TransactionManager, Transaction

__all__ = [
    "BufferPool",
    "Disk",
    "IOStats",
    "RecordFormat",
    "RID",
    "RecordFile",
    "DirectIndex",
    "HashIndex",
    "OrderedIndex",
    "TransactionManager",
    "Transaction",
]
