"""Record formats and record identifiers.

§5.2 maps each generalization hierarchy into "a storage unit with
variable-format records based on record types": one file holds records of
several formats, each format corresponding to one node of the hierarchy
tree.  A :class:`RecordFormat` names its fields and carries a fixed width
(bytes) used to compute blocking factors; a :class:`RID` addresses a record
by (block number, slot).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True, order=True)
class RID:
    """Record identifier: position of a record within one file."""

    block: int
    slot: int

    def __repr__(self):
        return f"RID({self.block}:{self.slot})"


class RecordFormat:
    """A fixed-width record layout.

    ``fields`` maps field name → width in (simulated) bytes.  The format
    width is the sum of the field widths plus a small per-record header,
    mirroring how a record-based system computes blocking factors.
    """

    HEADER_WIDTH = 4

    def __init__(self, format_id: int, name: str, fields: Dict[str, int]):
        if not fields:
            raise ValueError(f"record format {name!r} has no fields")
        self.format_id = format_id
        self.name = name
        self.fields = dict(fields)
        self.width = self.HEADER_WIDTH + sum(self.fields.values())

    def field_names(self) -> Tuple[str, ...]:
        return tuple(self.fields)

    def __repr__(self):
        return (f"<RecordFormat #{self.format_id} {self.name} "
                f"width={self.width}>")


def field_width_for_type(data_type) -> int:
    """Estimated storage width of one value of ``data_type``.

    The absolute numbers only matter relative to the block size; they are
    chosen to resemble a record-oriented system of the paper's era.
    """
    family = getattr(data_type, "family", "abstract")
    if family == "integer" or family == "surrogate":
        return 6
    if family == "number":
        # packed decimal: two digits per byte plus sign
        return max(2, (data_type.precision + 2) // 2)
    if family == "real":
        return 8
    if family == "string":
        length = data_type.max_length if data_type.max_length else 64
        return length
    if family == "boolean":
        return 1
    if family == "date":
        return 4
    if family == "time":
        return 4
    if family == "symbolic":
        return 2
    if family == "subrole":
        return 2
    return 8
