"""Record files: slotted blocks of fixed-width, variable-format records.

A :class:`RecordFile` corresponds to one "storage unit" of §5.2.  It may
mix several record formats in one file (variable-format records), tracks
free space per block, and supports *clustered* insertion (place a record
in the same block as a related record when it fits) — the mapping option
whose first-instance access cost the paper quotes as 0 I/O.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import StorageError
from repro.storage.buffer import BufferPool
from repro.storage.latch import ranked_lock
from repro.storage.records import RecordFormat, RID


class RecordFile:
    """One storage unit: an extendable sequence of slotted blocks.

    Records are addressed by :class:`RID` and never move once inserted
    (no compaction), so RIDs are stable and can serve as "absolute
    addresses" (§5.2 pointer mapping) and "direct keys" (record numbers).
    """

    def __init__(self, file_id: int, name: str, pool: BufferPool,
                 block_size: int = 1024):
        if block_size < 64:
            raise StorageError(f"block size {block_size} too small")
        self.file_id = file_id
        self.name = name
        self.pool = pool
        self.block_size = block_size
        #: fraction of each block held back from ordinary inserts so that
        #: clustered (near=...) inserts still find room next to their
        #: anchor record (0.0 = no reservation)
        self.cluster_reserve = 0.0
        #: optional write-ahead log and transaction-context provider
        #: (callable returning (txn_id, rolling_back)); wired by the Mapper
        self.wal = None
        self.txn_context = None
        #: per-unit write latch (rank 42, ``store.unit_latch``): every
        #: Mapper mutator takes the latch of the single unit it writes
        #: for just that operation, so same-class writers to *different*
        #: entities interleave between operations instead of serializing
        #: per statement.  Latches are leaf-per-operation by design —
        #: two unit latches are never held at once (equal rank would
        #: trip lockdep, which is the enforcement).
        self.latch = ranked_lock("store.unit_latch")
        self.formats: Dict[int, RecordFormat] = {}
        # In-memory extent metadata (a real system keeps this in a file
        # header block; we charge no I/O for it).
        self._block_count = 0
        self._free_space: List[int] = []   # free bytes per block
        self._record_count = 0
        # Upper bound on the largest free-space value any non-tail block
        # can hold (the tail is probed directly).  The first-fit scan in
        # _choose_block is skipped entirely while the bound proves no
        # block can fit — without it, bulk loads at 10^5+ records pay an
        # O(blocks) scan per insert once the tail fills (O(n^2) total).
        # Deletes/undeletes raise the bound; a failed scan tightens it to
        # the exact maximum; placement is bit-identical to the plain scan.
        self._free_hint = 0

    # -- Format registry ----------------------------------------------------------

    def register_format(self, record_format: RecordFormat) -> RecordFormat:
        if record_format.format_id in self.formats:
            raise StorageError(
                f"format #{record_format.format_id} already registered in "
                f"{self.name!r}")
        if record_format.width > self.block_size:
            raise StorageError(
                f"record format {record_format.name!r} (width "
                f"{record_format.width}) exceeds block size {self.block_size}")
        self.formats[record_format.format_id] = record_format
        return record_format

    def blocking_factor(self, format_id: int) -> int:
        """Records of this format per block, if stored homogeneously."""
        return max(1, self.block_size // self.formats[format_id].width)

    # -- Insert / read / update / delete -------------------------------------------

    def insert(self, format_id: int, values: Dict[str, object],
               near: Optional[RID] = None) -> RID:
        """Insert a record; with ``near``, try to cluster next to that RID."""
        record_format = self._format(format_id)
        width = record_format.width
        block_no = self._choose_block(width, near)
        block = self.pool.get(self.file_id, block_no)
        block.slots.append((format_id, dict(values)))
        block.used += width
        self._free_space[block_no] = self.block_size - block.used
        self.pool.mark_dirty(self.file_id, block_no, block)
        self._record_count += 1
        rid = RID(block_no, len(block.slots) - 1)
        self._log(rid, None, (format_id, values))
        return rid

    def _choose_block(self, width: int, near: Optional[RID]) -> int:
        if near is not None and near.block < self._block_count:
            # Clustered inserts may dip into the reserved space.
            if self._free_space[near.block] >= width:
                return near.block
        # Ordinary inserts respect the cluster reservation.
        reserve = int(self.block_size * self.cluster_reserve)
        need = width + reserve
        # First fit over existing blocks, preferring the tail for locality.
        if self._block_count and self._free_space[self._block_count - 1] >= need:
            return self._block_count - 1
        if self._free_hint >= need:
            max_free = 0
            for block_no in range(self._block_count):
                free = self._free_space[block_no]
                if free >= need:
                    return block_no
                if free > max_free:
                    max_free = free
            self._free_hint = max_free
        if self._block_count:
            # The old tail joins the scannable region; fold its leftover
            # into the bound so mixed-width loads still first-fit into it.
            tail_free = self._free_space[self._block_count - 1]
            if tail_free > self._free_hint:
                self._free_hint = tail_free
        self._block_count += 1
        self._free_space.append(self.block_size)
        return self._block_count - 1

    def read(self, rid: RID) -> Tuple[int, Dict[str, object]]:
        """Read one record; returns (format_id, values copy)."""
        block = self._block_of(rid)
        entry = self._entry(block, rid)
        format_id, values = entry
        return format_id, dict(values)

    def update(self, rid: RID, values: Dict[str, object]) -> None:
        """Overwrite the named fields of a record.

        The slot is replaced with a fresh dict rather than mutated in
        place: a concurrent reader (MVCC double-check, another class's
        writer flushing this block) sees either the old or the new
        record, never a half-written one — and never a dict changing
        size under ``dict(values)`` during ``Block.copy``.
        """
        block = self._block_of(rid)
        entry = self._entry(block, rid)
        format_id, before = entry
        record_format = self._format(format_id)
        stored = dict(before)
        for name, value in values.items():
            if name not in record_format.fields:
                raise StorageError(
                    f"format {record_format.name!r} has no field {name!r}")
            stored[name] = value
        block.slots[rid.slot] = (format_id, stored)
        self.pool.mark_dirty(self.file_id, rid.block, block)
        self._log(rid, (format_id, before), (format_id, stored))

    def delete(self, rid: RID) -> Dict[str, object]:
        """Tombstone a record; returns its final values (for undo)."""
        block = self._block_of(rid)
        entry = self._entry(block, rid)
        format_id, values = entry
        block.slots[rid.slot] = None
        width = self._format(format_id).width
        block.used -= width
        freed = self.block_size - block.used
        self._free_space[rid.block] = freed
        if freed > self._free_hint:
            self._free_hint = freed
        self.pool.mark_dirty(self.file_id, rid.block, block)
        self._record_count -= 1
        self._log(rid, (format_id, values), None)
        return dict(values)

    def undelete(self, rid: RID, format_id: int,
                 values: Dict[str, object]) -> None:
        """Restore a tombstoned record (transaction undo path)."""
        block = self._block_of(rid)
        if rid.slot >= len(block.slots) or block.slots[rid.slot] is not None:
            raise StorageError(f"cannot undelete occupied slot {rid}")
        block.slots[rid.slot] = (format_id, dict(values))
        width = self._format(format_id).width
        block.used += width
        self._free_space[rid.block] = self.block_size - block.used
        self.pool.mark_dirty(self.file_id, rid.block, block)
        self._record_count += 1
        self._log(rid, None, (format_id, values))

    def exists(self, rid: RID) -> bool:
        if rid.block >= self._block_count:
            return False
        block = self.pool.get(self.file_id, rid.block)
        return (rid.slot < len(block.slots)
                and block.slots[rid.slot] is not None)

    def _log(self, rid: RID, before, after) -> None:
        """Write-ahead log hook for one slot mutation."""
        trace = self.pool.trace
        if trace is not None and trace.enabled:
            trace.count("storage.record_mutations")
            trace.count(f"storage.mutated[{self.name}]")
        if self.wal is None:
            return
        txn_id, rolling_back = (self.txn_context()
                                if self.txn_context else (None, False))
        self.wal.log_update(txn_id, self.file_id, rid.block, rid.slot,
                            before, after, compensation=rolling_back)

    # -- Rebuild after crash -------------------------------------------------------

    def rebuild_metadata(self, disk, retry=None) -> None:
        """Recompute block count, per-block used space and the free-space
        map from the disk image (after crash recovery's undo surgery).

        Goes through the disk's public block API only, is idempotent
        (pure function of the disk image), and skips the write-back when
        a block's used counter is already correct — so a re-run after a
        crash mid-rebuild converges without extra device writes."""
        if retry is not None:
            read = lambda b: retry.call(disk.read, self.file_id, b)
            write = lambda b, blk: retry.call(disk.write, self.file_id,
                                              b, blk)
        else:
            read = lambda b: disk.read(self.file_id, b)
            write = lambda b, blk: disk.write(self.file_id, b, blk)
        numbers = disk.block_numbers(self.file_id)
        self._block_count = (numbers[-1] + 1) if numbers else 0
        self._free_space = []
        self._record_count = 0
        for block_no in range(self._block_count):
            block = read(block_no)
            used = 0
            for entry in block.slots:
                if entry is None:
                    continue
                format_id, _ = entry
                used += self.formats[format_id].width
                self._record_count += 1
            if block.used != used:
                block.used = used
                write(block_no, block)
            self._free_space.append(self.block_size - used)
        self._free_hint = max(self._free_space, default=0)

    # -- Scanning ---------------------------------------------------------------

    def scan(self, format_id: Optional[int] = None
             ) -> Iterator[Tuple[RID, int, Dict[str, object]]]:
        """Iterate records in block order; optionally one format only.

        Each visited block costs one logical (and possibly physical) read.
        """
        for block_no in range(self._block_count):
            block = self.pool.get(self.file_id, block_no)
            for slot, entry in enumerate(block.slots):
                if entry is None:
                    continue
                fmt, values = entry
                if format_id is not None and fmt != format_id:
                    continue
                yield RID(block_no, slot), fmt, dict(values)

    # -- Metadata ------------------------------------------------------------------

    def free_space(self, block_no: int) -> int:
        """Free bytes the extent map believes the block has (the checker
        compares this against the block's actual slot contents)."""
        return self._free_space[block_no]

    def free_space_map(self) -> List[int]:
        return list(self._free_space)

    @property
    def record_count(self) -> int:
        return self._record_count

    @property
    def block_count(self) -> int:
        return self._block_count

    def _format(self, format_id: int) -> RecordFormat:
        try:
            return self.formats[format_id]
        except KeyError:
            raise StorageError(
                f"unknown record format #{format_id} in {self.name!r}") from None

    def _block_of(self, rid: RID):
        if rid.block >= self._block_count:
            raise StorageError(f"{self.name!r}: block {rid.block} out of range")
        return self.pool.get(self.file_id, rid.block)

    def _entry(self, block, rid: RID):
        if rid.slot >= len(block.slots) or block.slots[rid.slot] is None:
            raise StorageError(f"{self.name!r}: no record at {rid}")
        return block.slots[rid.slot]

    def __repr__(self):
        return (f"<RecordFile #{self.file_id} {self.name} "
                f"records={self._record_count} blocks={self._block_count}>")
