"""Deterministic fault injection for the storage substrate.

The paper delegates durability and recovery to DMSII (§1, §6); the
credibility of this reproduction's DMSII substitute rests on the WAL/undo
machinery actually surviving failure, not just passing happy-path tests.
This module supplies the failure half of that argument:

* :class:`FaultInjector` — a seeded, deterministic fault plan wired into
  :meth:`Disk.read <repro.storage.buffer.Disk.read>`,
  :meth:`Disk.write <repro.storage.buffer.Disk.write>` and
  :meth:`WriteAheadLog.force <repro.storage.wal.WriteAheadLog.force>`.
  Supported faults: transient I/O errors (succeed when retried),
  permanent I/O errors, torn/partial block writes (only a prefix of the
  slot directory reaches the platter), and crash triggers (the machine
  dies mid-operation and every further I/O fails until ``reboot``).
* :class:`RetryPolicy` — the Mapper's bounded retry-with-backoff loop for
  transient faults, with retry/give-up counters mirrored into
  :class:`~repro.perf.PerfCounters` so ``Database.statistics()`` can
  report them.

Determinism matters more than realism here: every plan fires on an exact
operation ordinal (the Nth read/write/force counted from arming), so a
seeded torture run replays bit-identically and a failing crash point can
be re-run in isolation.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Dict, List

from repro.errors import InjectedCrash, StorageError, TransientStorageError

#: operation kinds the injector counts
READ = "read"
WRITE = "write"
FORCE = "force"

#: fault actions
TRANSIENT = "transient"
PERMANENT = "permanent"
TORN = "torn"
CRASH = "crash"

_ACTIONS = (TRANSIENT, PERMANENT, TORN, CRASH)


@dataclass
class _Fault:
    """One armed fault: fires while the op ordinal is in
    ``[at, at + repeat - 1]``, then disarms."""

    op: str
    at: int
    action: str
    repeat: int = 1
    keep: float = 0.5      # torn writes: fraction of slots that land


class FaultInjector:
    """A deterministic, seeded fault plan for the simulated device.

    All trigger ordinals are *relative to the moment of arming*: an
    ``nth`` of 1 means "the next operation of that kind".  This lets a
    torture harness arm a second crash *during recovery* without knowing
    absolute operation counts.

    After a crash trigger fires the injector enters the ``crashed``
    state, in which every device operation raises :class:`InjectedCrash`
    — the machine is dead until :meth:`reboot` (called automatically by
    ``MapperStore.simulate_crash``).
    """

    def __init__(self, seed: int = 0):
        self.seed = seed
        self.rng = random.Random(seed)
        self.crashed = False
        #: operations observed, by kind (monotonic across reboots)
        self.ops: Dict[str, int] = {READ: 0, WRITE: 0, FORCE: 0}
        #: faults actually delivered, by action
        self.injected: Dict[str, int] = {a: 0 for a in _ACTIONS}
        self.reboots = 0
        self._plans: List[_Fault] = []

    # -- Arming ------------------------------------------------------------------

    def fail_write(self, nth: int, error: str = TRANSIENT,
                   repeat: int = 1) -> None:
        """Fail the ``nth`` write from now (``error``: transient/permanent).

        ``repeat`` > 1 fails that many *consecutive* writes — the way to
        exhaust a bounded retry policy, since each retry is a new write."""
        self._arm(WRITE, nth, error, repeat)

    def fail_read(self, nth: int, error: str = TRANSIENT,
                  repeat: int = 1) -> None:
        self._arm(READ, nth, error, repeat)

    def fail_force(self, nth: int, error: str = TRANSIENT,
                   repeat: int = 1) -> None:
        """Fail the ``nth`` WAL force from now."""
        self._arm(FORCE, nth, error, repeat)

    def torn_write(self, nth: int, keep: float = 0.5) -> None:
        """Tear the ``nth`` write from now: only the first ``keep``
        fraction of the block's slots reaches the platter.  The write
        reports success (silent corruption — the checker's problem)."""
        if not 0.0 <= keep < 1.0:
            raise StorageError(f"torn-write keep fraction {keep} not in [0,1)")
        fault = _Fault(WRITE, self.ops[WRITE] + nth, TORN, 1, keep)
        self._plans.append(fault)

    def crash_after_writes(self, n: int) -> None:
        """Kill the machine on the ``n``-th write from now; that write
        never reaches the platter."""
        self._arm(WRITE, n, CRASH)

    def crash_after_reads(self, n: int) -> None:
        self._arm(READ, n, CRASH)

    def _arm(self, op: str, nth: int, action: str, repeat: int = 1) -> None:
        if nth < 1:
            raise StorageError(f"fault ordinal must be >= 1, got {nth}")
        if action not in _ACTIONS:
            raise StorageError(f"unknown fault action {action!r}")
        self._plans.append(_Fault(op, self.ops[op] + nth, action, repeat))

    @property
    def armed(self) -> int:
        """Number of faults still waiting to fire."""
        return len(self._plans)

    # -- Device hooks ------------------------------------------------------------

    def on_read(self, file_id: int, block_no: int) -> None:
        self._operation(READ)

    def on_write(self, file_id: int, block_no: int, block):
        """May raise, or return a (possibly torn) replacement image."""
        return self._operation(WRITE, block)

    def on_force(self) -> None:
        self._operation(FORCE)

    def _operation(self, op: str, block=None):
        if self.crashed:
            raise InjectedCrash(f"{op} on crashed device")
        self.ops[op] += 1
        ordinal = self.ops[op]
        result = block
        for fault in list(self._plans):
            if fault.op != op:
                continue
            if not fault.at <= ordinal < fault.at + fault.repeat:
                continue
            if ordinal == fault.at + fault.repeat - 1:
                self._plans.remove(fault)
            if fault.action == TRANSIENT:
                self.injected[TRANSIENT] += 1
                raise TransientStorageError(
                    f"injected transient fault on {op} #{ordinal}")
            if fault.action == PERMANENT:
                self.injected[PERMANENT] += 1
                raise StorageError(
                    f"injected permanent fault on {op} #{ordinal}")
            if fault.action == CRASH:
                self.injected[CRASH] += 1
                self.crashed = True
                raise InjectedCrash(
                    f"injected crash on {op} #{ordinal}")
            if fault.action == TORN:
                self.injected[TORN] += 1
                result = self._tear(block, fault.keep)
        return result

    @staticmethod
    def _tear(block, keep: float):
        """The torn image: a prefix of the slot directory.  The ``used``
        header is left as written — stale, exactly the inconsistency a
        semantic checker (not a page checksum) must catch."""
        torn = block.copy()
        torn.slots = torn.slots[:int(len(torn.slots) * keep)]
        return torn

    # -- Lifecycle ---------------------------------------------------------------

    def reboot(self) -> None:
        """Bring the machine back up.  Armed plans survive (a second
        crash can target recovery I/O); counters keep running."""
        if self.crashed:
            self.reboots += 1
        self.crashed = False

    def statistics(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "crashed": self.crashed,
            "reboots": self.reboots,
            "ops": dict(self.ops),
            "injected": dict(self.injected),
            "armed": self.armed,
        }

    def __repr__(self):
        return (f"<FaultInjector seed={self.seed} crashed={self.crashed} "
                f"armed={self.armed} injected={self.injected}>")


class RetryPolicy:
    """Bounded retry-with-backoff for transient storage faults.

    ``max_attempts`` counts the first try; a transient fault on the final
    attempt is a *give-up* and re-raises.  Backoff is simulated by
    default (``backoff_ticks`` accumulates the exponential schedule
    2, 4, 8... without sleeping) so torture suites stay fast; set
    ``delay`` > 0 for wall-clock backoff.

    Counters mirror into the store's :class:`~repro.perf.PerfCounters`
    (``transient_retries`` / ``transient_giveups``) when ``perf`` is
    given, which surfaces them through ``Database.statistics()``.
    """

    def __init__(self, max_attempts: int = 4, delay: float = 0.0,
                 perf=None):
        if max_attempts < 1:
            raise StorageError(
                f"retry policy needs max_attempts >= 1, got {max_attempts}")
        self.max_attempts = max_attempts
        self.delay = delay
        self.perf = perf
        #: optional trace recorder (repro.trace.attach_tracing)
        self.trace = None
        self.retries = 0
        self.giveups = 0
        self.backoff_ticks = 0

    def call(self, operation, *args, **kwargs):
        """Run ``operation``, retrying transient faults with backoff.
        Permanent faults (any other :class:`StorageError`) propagate
        immediately — retrying cannot help them."""
        attempt = 1
        while True:
            try:
                return operation(*args, **kwargs)
            except TransientStorageError as fault:
                trace = self.trace
                if attempt >= self.max_attempts:
                    self.giveups += 1
                    if self.perf is not None:
                        self.perf.bump("transient_giveups")
                    if trace is not None and trace.enabled:
                        trace.event("transient_giveup", attempt=attempt,
                                    fault=str(fault))
                    raise
                self.retries += 1
                if self.perf is not None:
                    self.perf.bump("transient_retries")
                if trace is not None and trace.enabled:
                    trace.event("transient_retry", attempt=attempt,
                                fault=str(fault))
                self.backoff_ticks += 2 ** attempt
                if self.delay:
                    time.sleep(self.delay * (2 ** (attempt - 1)))
                attempt += 1

    def statistics(self) -> Dict[str, int]:
        return {"max_attempts": self.max_attempts,
                "retries": self.retries,
                "giveups": self.giveups,
                "backoff_ticks": self.backoff_ticks}

    def __repr__(self):
        return (f"<RetryPolicy max_attempts={self.max_attempts} "
                f"retries={self.retries} giveups={self.giveups}>")
