"""Undo-log transactions with savepoints.

The paper relies on DMSII for transaction management (§1).  Our substrate
provides single-writer transactions: every mutating operation registers an
undo closure; ABORT replays undos in reverse; COMMIT discards them and
flushes the buffer pool.  Savepoints support partial rollback, which the
update engine uses to make each DML statement atomic with respect to
integrity failures (a failed VERIFY rolls back only that statement).
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Callable, List, Optional

from repro.errors import TransactionError
from repro.storage.latch import ranked_lock


class Transaction:
    """One open transaction: a stack of undo closures.

    Ids are allocated by the owning :class:`TransactionManager`, not a
    process-wide counter, so transaction ids (and the WAL's loser
    detection) cannot interleave across independent ``Database``
    instances in one process, and seeded runs stay reproducible."""

    def __init__(self, manager: "TransactionManager", transaction_id: int):
        self.transaction_id = transaction_id
        self._manager = manager
        self._undo_log: List[Callable[[], None]] = []
        self.active = True
        self._rolling_back = False

    def record_undo(self, undo: Callable[[], None]) -> None:
        if not self.active:
            raise TransactionError("transaction is not active")
        if self._rolling_back:
            # Undo actions run through the same mutators that normally
            # register undos; recording those would keep the log from ever
            # draining.  Compensation during rollback is not undoable.
            return
        self._undo_log.append(undo)

    def savepoint(self) -> int:
        """Return a mark usable with :meth:`rollback_to`."""
        if not self.active:
            raise TransactionError("transaction is not active")
        return len(self._undo_log)

    def rollback_to(self, mark: int) -> None:
        """Undo everything recorded after ``mark`` (statement-level abort)."""
        if not self.active:
            raise TransactionError("transaction is not active")
        if mark > len(self._undo_log):
            raise TransactionError(f"invalid savepoint {mark}")
        self._rolling_back = True
        try:
            while len(self._undo_log) > mark:
                self._undo_log.pop()()
        finally:
            self._rolling_back = False
        self._manager._fire_invalidation_hooks()

    def _commit(self) -> None:
        self._undo_log.clear()
        self.active = False

    def _abort(self) -> None:
        self._rolling_back = True
        try:
            while self._undo_log:
                self._undo_log.pop()()
        finally:
            self._rolling_back = False
        self.active = False

    def __repr__(self):
        state = "active" if self.active else "closed"
        return f"<Transaction #{self.transaction_id} {state}, " \
               f"{len(self._undo_log)} undo entries>"


class TransactionManager:
    """Hands out transactions; enforces single-writer discipline per
    activation scope.

    Two usage styles coexist:

    * ``begin()`` / ``commit()`` / ``abort()`` — the classic API: one
      globally "current" transaction, used by ``Database.transaction()``
      and single-threaded scripts.
    * ``begin_detached()`` + ``activate(txn)`` — concurrent sessions:
      each session owns its transaction and installs it as *this
      thread's* current transaction only while executing a statement.
      Id allocation is mutex-protected so concurrent sessions cannot
      mint duplicate ids.

    ``current`` resolves thread-locally first, then falls back to the
    global slot, so code deep in the Mapper (``record_undo``,
    ``txn_context``) is oblivious to which style is driving it.

    ``flush_on_commit`` — when a buffer pool is attached, commit flushes
    dirty blocks so committed state is durable on the simulated disk.
    """

    def __init__(self, pool=None, wal=None, start_after: int = 0):
        self._pool = pool
        self._wal = wal
        self._current: Optional[Transaction] = None
        #: per-manager id counter; ``start_after`` seeds it past ids a
        #: recovered log may still mention
        self._next_txn_id = start_after
        # Rank 60: only taken in begin()/begin_detached() with no other
        # lock held; commit bodies are serialized by store.commit_latch
        # and abort/undo replay by the aborting session's exclusive
        # locks plus per-unit latches (see analysis/lock_order.py).
        self._mutex = ranked_lock("storage.transactions")
        self._tls = threading.local()
        # Plain leaf lock for the commit/abort counters: aborts are no
        # longer serialized by any store-wide mutex, so the bumps need
        # their own guard.  Nothing is ever acquired while holding it.
        self._stats_lock = threading.Lock()
        self.commits = 0
        self.aborts = 0
        #: callbacks fired after any rollback (full abort or partial
        #: rollback_to) — the Mapper registers its read-cache clear here,
        #: because undo surgery must invalidate caches, not just commits
        self.invalidation_hooks: List[Callable[[], None]] = []
        #: callbacks fired with the txn id when a transaction commits
        #: (after its undo log is discarded, before the pool flush) /
        #: aborts — the version manager promotes or drops pre-images here
        self.commit_hooks: List[Callable[[int], None]] = []
        self.abort_hooks: List[Callable[[int], None]] = []

    @property
    def current(self) -> Optional[Transaction]:
        txn = getattr(self._tls, "txn", None)
        if txn is not None:
            return txn
        return self._current

    def begin(self) -> Transaction:
        with self._mutex:
            if self._current is not None and self._current.active:
                raise TransactionError("a transaction is already active")
            self._next_txn_id += 1
            self._current = Transaction(self, self._next_txn_id)
            return self._current

    def begin_detached(self) -> Transaction:
        """Mint a transaction WITHOUT installing it as current.

        Concurrent sessions each own one of these and scope it to their
        statements via :meth:`activate`; the mutex guarantees unique ids
        across threads."""
        with self._mutex:
            self._next_txn_id += 1
            return Transaction(self, self._next_txn_id)

    @contextmanager
    def activate(self, txn: Optional[Transaction]):
        """Install ``txn`` as this thread's current transaction for the
        duration of the block (nestable; restores the previous value)."""
        previous = getattr(self._tls, "txn", None)
        self._tls.txn = txn
        try:
            yield txn
        finally:
            self._tls.txn = previous

    def commit(self) -> None:
        transaction = self._require_active()
        self._finish_commit(transaction)

    def commit_detached(self, txn: Transaction) -> None:
        """Commit a session-owned transaction (caller holds the store's
        commit latch; see ``MapperStore.commit_latch``)."""
        if not txn.active:
            raise TransactionError("no active transaction")
        self._finish_commit(txn)

    def _finish_commit(self, transaction: Transaction) -> None:
        transaction._commit()
        if self._current is transaction:
            self._current = None
        # Commit hooks run at the in-memory commit point: the undo log is
        # gone, so even if the flush below faults mid-way, the version
        # manager must already treat the transaction as committed.
        for hook in self.commit_hooks:
            hook(transaction.transaction_id)
        # Force policy, in crash-safe order: data pages reach disk FIRST
        # (flush itself forces the undo log before writing, per the WAL
        # rule), and only then is the commit record appended and forced.
        # The durable commit record is the commit point: a crash anywhere
        # before it leaves a loser whose flushed pages recovery undoes
        # from before-images; a crash after it loses nothing, because
        # everything the transaction touched is already on disk.  The
        # reverse order (commit record first) would admit committed-
        # effect loss with no redo pass to repair it.
        if self._pool is not None:
            self._pool.flush()
        if self._wal is not None:
            self._wal.log_commit(transaction.transaction_id)
        with self._stats_lock:
            self.commits += 1

    def abort(self) -> None:
        transaction = self._require_active()
        self._finish_abort(transaction)

    def abort_detached(self, txn: Transaction) -> None:
        """Abort a session-owned transaction.  The undo replay mutates
        through the normal mapper paths (each of which takes its unit's
        latch), so the caller must have the transaction activated on
        this thread and still hold the session's exclusive locks over
        everything the transaction touched."""
        if not txn.active:
            raise TransactionError("no active transaction")
        self._finish_abort(txn)

    def _finish_abort(self, transaction: Transaction) -> None:
        transaction._abort()
        if self._current is transaction:
            self._current = None
        with self._stats_lock:
            self.aborts += 1
        for hook in self.abort_hooks:
            hook(transaction.transaction_id)
        self._fire_invalidation_hooks()

    def _fire_invalidation_hooks(self) -> None:
        for hook in self.invalidation_hooks:
            hook()

    def in_transaction(self) -> bool:
        current = self.current
        return current is not None and current.active

    def record_undo(self, undo: Callable[[], None]) -> None:
        """Record an undo in the active transaction, if any.

        Outside a transaction the operation is auto-committed: there is
        nothing to undo to, so the closure is dropped.
        """
        current = self.current
        if current is not None and current.active:
            current.record_undo(undo)

    def txn_context(self):
        """(txn id, rolling-back?) of the active transaction, for the WAL
        hooks (compensations during rollback become CLRs)."""
        current = self.current
        if current is not None and current.active:
            return (current.transaction_id, current._rolling_back)
        return (None, False)

    def _require_active(self) -> Transaction:
        current = self.current
        if current is None or not current.active:
            raise TransactionError("no active transaction")
        return current
