"""Access methods: hash, ordered (index-sequential) and direct-key indexes.

§5.2: "The surrogates can be direct keys (record number), random keys
(based on hashing) or index sequential keys."  We provide all three.
Probe accounting: each index carries a ``probes`` counter and an estimated
I/O cost per probe used by the optimizer's cost model (a hash probe ≈ 1
block access; an index-sequential probe ≈ tree height; a direct key ≈ 1).
"""

from __future__ import annotations

import bisect
import threading
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import StorageError
from repro.storage.records import RID


class _BaseIndex:
    """Common bookkeeping for all index kinds."""

    kind = "abstract"

    def __init__(self, name: str, unique: bool = False):
        self.name = name
        self.unique = unique
        self.probes = 0
        self.entries = 0
        # Index *structures* only mutate on the (serial) write path, so
        # concurrent lookups read them safely; the probes counter is the
        # one read-path write and `+= 1` is not atomic under threads.
        self._probe_lock = threading.Lock()

    def _count_probe(self) -> None:
        with self._probe_lock:
            self.probes += 1

    def probe_cost(self) -> float:
        """Estimated block accesses for one probe (optimizer parameter)."""
        raise NotImplementedError

    def __repr__(self):
        return (f"<{type(self).__name__} {self.name} entries={self.entries} "
                f"unique={self.unique}>")


class HashIndex(_BaseIndex):
    """Equality index ("random keys based on hashing")."""

    kind = "hash"

    def __init__(self, name: str, unique: bool = False):
        super().__init__(name, unique)
        self._buckets: Dict[object, List[RID]] = {}

    def insert(self, key, rid: RID) -> None:
        bucket = self._buckets.setdefault(key, [])
        if self.unique and bucket:
            raise StorageError(
                f"duplicate key {key!r} in unique index {self.name!r}")
        bucket.append(rid)
        self.entries += 1

    def delete(self, key, rid: RID) -> None:
        bucket = self._buckets.get(key)
        if not bucket or rid not in bucket:
            raise StorageError(
                f"key {key!r}/{rid} not present in index {self.name!r}")
        bucket.remove(rid)
        if not bucket:
            del self._buckets[key]
        self.entries -= 1

    def lookup(self, key) -> List[RID]:
        self._count_probe()
        return list(self._buckets.get(key, ()))

    def lookup_one(self, key) -> Optional[RID]:
        rids = self.lookup(key)
        return rids[0] if rids else None

    def contains(self, key) -> bool:
        self._count_probe()
        return key in self._buckets

    def keys(self) -> Iterator:
        return iter(self._buckets)

    def items(self) -> Iterator[Tuple[object, RID]]:
        """Every (key, rid) entry — the checker's view; charges no probe."""
        for key, bucket in self._buckets.items():
            for rid in bucket:
                yield key, rid

    def probe_cost(self) -> float:
        return 1.0


class OrderedIndex(_BaseIndex):
    """Ordered index ("index sequential keys"): equality plus range scans."""

    kind = "ordered"

    #: assumed fan-out of one index node, for height estimation
    FANOUT = 64

    def __init__(self, name: str, unique: bool = False):
        super().__init__(name, unique)
        self._keys: List = []
        self._rids: List[List[RID]] = []

    def insert(self, key, rid: RID) -> None:
        pos = bisect.bisect_left(self._keys, key)
        if pos < len(self._keys) and self._keys[pos] == key:
            if self.unique:
                raise StorageError(
                    f"duplicate key {key!r} in unique index {self.name!r}")
            self._rids[pos].append(rid)
        else:
            self._keys.insert(pos, key)
            self._rids.insert(pos, [rid])
        self.entries += 1

    def delete(self, key, rid: RID) -> None:
        pos = bisect.bisect_left(self._keys, key)
        if pos >= len(self._keys) or self._keys[pos] != key:
            raise StorageError(
                f"key {key!r} not present in index {self.name!r}")
        bucket = self._rids[pos]
        if rid not in bucket:
            raise StorageError(
                f"{rid} not present under key {key!r} in {self.name!r}")
        bucket.remove(rid)
        if not bucket:
            del self._keys[pos]
            del self._rids[pos]
        self.entries -= 1

    def lookup(self, key) -> List[RID]:
        self._count_probe()
        pos = bisect.bisect_left(self._keys, key)
        if pos < len(self._keys) and self._keys[pos] == key:
            return list(self._rids[pos])
        return []

    def lookup_one(self, key) -> Optional[RID]:
        rids = self.lookup(key)
        return rids[0] if rids else None

    def range(self, low=None, high=None, include_low: bool = True,
              include_high: bool = True) -> Iterator[Tuple[object, RID]]:
        """Yield (key, rid) pairs with low <= key <= high (bounds optional)."""
        self._count_probe()
        if low is None:
            start = 0
        elif include_low:
            start = bisect.bisect_left(self._keys, low)
        else:
            start = bisect.bisect_right(self._keys, low)
        for pos in range(start, len(self._keys)):
            key = self._keys[pos]
            if high is not None:
                if include_high and key > high:
                    break
                if not include_high and key >= high:
                    break
            for rid in self._rids[pos]:
                yield key, rid

    def items(self) -> Iterator[Tuple[object, RID]]:
        """Every (key, rid) entry in key order; charges no probe."""
        for key, bucket in zip(self._keys, self._rids):
            for rid in bucket:
                yield key, rid

    def height(self) -> int:
        if self.entries <= 1:
            return 1
        height = 1
        span = self.FANOUT
        while span < self.entries:
            span *= self.FANOUT
            height += 1
        return height

    def probe_cost(self) -> float:
        return float(self.height())


class DirectIndex(_BaseIndex):
    """Direct keys (record numbers): key is an integer position.

    Models §5.2's "direct keys (record number)" surrogate option — lookup
    is arithmetic, cost one block access for the data block only.
    """

    kind = "direct"

    def __init__(self, name: str):
        super().__init__(name, unique=True)
        self._slots: Dict[int, RID] = {}

    def insert(self, key, rid: RID) -> None:
        if not isinstance(key, int):
            raise StorageError(f"direct index {self.name!r} needs integer keys")
        if key in self._slots:
            raise StorageError(
                f"duplicate key {key!r} in direct index {self.name!r}")
        self._slots[key] = rid
        self.entries += 1

    def delete(self, key, rid: RID) -> None:
        if self._slots.get(key) != rid:
            raise StorageError(
                f"key {key!r}/{rid} not present in index {self.name!r}")
        del self._slots[key]
        self.entries -= 1

    def lookup(self, key) -> List[RID]:
        self._count_probe()
        rid = self._slots.get(key)
        return [rid] if rid is not None else []

    def lookup_one(self, key) -> Optional[RID]:
        rids = self.lookup(key)
        return rids[0] if rids else None

    def items(self) -> Iterator[Tuple[object, RID]]:
        """Every (key, rid) entry — the checker's view; charges no probe."""
        return iter(self._slots.items())

    def probe_cost(self) -> float:
        return 0.0


def make_index(kind: str, name: str, unique: bool = False) -> _BaseIndex:
    """Index factory: ``kind`` in {'hash', 'ordered', 'direct'}."""
    if kind == "hash":
        return HashIndex(name, unique)
    if kind == "ordered":
        return OrderedIndex(name, unique)
    if kind == "direct":
        return DirectIndex(name)
    raise StorageError(f"unknown index kind {kind!r}")
