"""Write-ahead logging and crash recovery.

The paper delegates "transaction ... management" to DMSII (§1); a
credible substrate therefore needs durability, not just in-memory undo.
This module adds physical, slot-level write-ahead logging:

* every record mutation appends an UPDATE log record carrying before- and
  after-images of the slot;
* the log tail is *forced* to the simulated disk before any data block is
  written (the WAL rule — hooked into buffer-pool eviction and flush);
* COMMIT appends a commit record, forces the log, then flushes data pages
  (a force policy, so committed work needs no redo);
* compensations performed while rolling back are logged as CLRs
  (compensation log records), which recovery never undoes.

Recovery (after :meth:`repro.mapper.store.MapperStore.simulate_crash`)
replays the *disk-resident* log backwards, restoring the before-image of
every non-CLR update belonging to a transaction without a commit record —
exactly the steal/force discipline's undo pass.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set

from repro.storage.latch import ranked_lock

UPDATE = "update"
COMMIT = "commit"
CLR = "clr"
CHECKPOINT = "checkpoint"


@dataclass(frozen=True)
class LogRecord:
    """One log entry.  ``payload`` for UPDATE/CLR is
    (file_id, block_no, slot, before_entry, after_entry); entries are
    ``None`` (empty slot) or ``(format_id, values_dict)``."""

    lsn: int
    txn_id: Optional[int]
    kind: str
    payload: Optional[tuple] = None


class WriteAheadLog:
    """An append-only log with an explicitly forced (durable) prefix."""

    def __init__(self):
        self._records: List[LogRecord] = []
        self._durable_upto = 0       # count of records safely "on disk"
        self._next_lsn = 1
        # Rank 6, the hierarchy's innermost lock: appends arrive from
        # concurrent sessions' statements (under unit latches, rank 42)
        # and force() runs under the buffer pool's lock (rank 10) during
        # eviction, so the log's own mutex must sit below both.
        self._mutex = ranked_lock("storage.wal")
        #: physical writes charged for log forces (one per non-empty force)
        self.forces = 0
        self.appended = 0
        #: successful checkpoints (post-recovery log resets)
        self.checkpoints = 0
        self.last_checkpoint_lsn = 0
        #: optional fault injector / retry policy applied to forces —
        #: a force is the log device's write, so it can fail too
        self.faults = None
        self.retry = None
        #: optional trace recorder (repro.trace.attach_tracing)
        self.trace = None

    # -- Writing -----------------------------------------------------------------

    def append(self, txn_id: Optional[int], kind: str,
               payload: Optional[tuple] = None) -> int:
        with self._mutex:
            lsn = self._next_lsn
            self._next_lsn += 1
            self._records.append(LogRecord(lsn, txn_id, kind, payload))
            self.appended += 1
            return lsn

    def log_update(self, txn_id: Optional[int], file_id: int, block_no: int,
                   slot: int, before, after, compensation: bool) -> int:
        before = _snapshot(before)
        after = _snapshot(after)
        kind = CLR if compensation else UPDATE
        return self.append(txn_id, kind,
                           (file_id, block_no, slot, before, after))

    def log_commit(self, txn_id: int) -> int:
        lsn = self.append(txn_id, COMMIT)
        self.force()
        return lsn

    def force(self) -> None:
        """Make the whole tail durable (the WAL rule's flush).

        The force is itself a device write: an injected fault here leaves
        the tail volatile (the caller's data-page write must not proceed),
        and transient faults are absorbed by the attached retry policy.
        """
        with self._mutex:
            if self._durable_upto >= len(self._records):
                return
            forced = len(self._records) - self._durable_upto
            if self.faults is not None:
                if self.retry is not None:
                    self.retry.call(self.faults.on_force)
                else:
                    self.faults.on_force()
            self._durable_upto = len(self._records)
            self.forces += 1
        trace = self.trace
        if trace is not None and trace.enabled:
            trace.count("storage.wal_forces")
            trace.count("storage.wal_records_forced", forced)

    # -- Crash / recovery ------------------------------------------------------------

    def crash(self) -> None:
        """Drop the volatile tail, keeping only the forced prefix."""
        with self._mutex:
            self._records = self._records[:self._durable_upto]
            self._next_lsn = (self._records[-1].lsn + 1
                              if self._records else 1)

    def durable_records(self) -> List[LogRecord]:
        return list(self._records[:self._durable_upto])

    def committed_transactions(self) -> Set[int]:
        return {r.txn_id for r in self.durable_records()
                if r.kind == COMMIT}

    def loser_updates(self) -> List[LogRecord]:
        """Durable non-CLR updates of transactions without a durable
        commit record, newest first (the undo pass's work list).

        Records with ``txn_id`` None are auto-committed (Mapper-level
        operations outside any transaction) and are never undone.
        """
        winners = self.committed_transactions()
        losers = [r for r in self.durable_records()
                  if r.kind == UPDATE and r.txn_id is not None
                  and r.txn_id not in winners]
        return list(reversed(losers))

    def truncate(self) -> None:
        """Discard the log after a successful recovery (checkpoint)."""
        with self._mutex:
            self._records.clear()
            self._durable_upto = 0

    def checkpoint(self) -> int:
        """Post-recovery checkpoint: the disk image now holds exactly the
        committed state, so the log restarts empty.  LSNs stay monotonic
        across the checkpoint; returns the watermark LSN.  Idempotent —
        checkpointing an empty log is a no-op on the watermark."""
        if self._records:
            self.last_checkpoint_lsn = self._next_lsn - 1
        self.truncate()
        self.checkpoints += 1
        return self.last_checkpoint_lsn

    def __len__(self):
        return len(self._records)


def _snapshot(entry):
    if entry is None:
        return None
    format_id, values = entry
    return (format_id, dict(values))


def undo_losers(wal: WriteAheadLog, disk, formats_by_file=None,
                retry=None) -> int:
    """Apply before-images of loser updates to the disk, newest first.

    Returns the number of slot restorations performed.  Operates directly
    on disk block images (the buffer pool is gone after a crash).

    The pass is **idempotent and re-runnable**: each restoration writes an
    absolute before-image, independent of the block's current content, in
    a fixed (newest-first) order derived solely from the durable log — so
    a crash *during* recovery followed by a fresh run converges to the
    same disk image as an uninterrupted run.  Nothing here appends to the
    log, which is what keeps re-runs working from the same work list.

    ``formats_by_file`` maps ``file_id -> {format_id: RecordFormat}`` (the
    owning files' registries) so the block's used-space header is restored
    to the true occupied *width*; without it a slot-count estimate is used
    and the free-space map is only honest again after
    ``rebuild_metadata``.  ``retry`` (a RetryPolicy) absorbs transient
    device faults during the undo pass itself.
    """
    if retry is not None:
        read = lambda f, b: retry.call(disk.read, f, b)
        write = lambda f, b, blk: retry.call(disk.write, f, b, blk)
    else:
        read, write = disk.read, disk.write
    restored = 0
    for record in wal.loser_updates():
        file_id, block_no, slot, before, _after = record.payload
        block = read(file_id, block_no)
        while len(block.slots) <= slot:
            block.slots.append(None)
        block.slots[slot] = _snapshot(before)
        _fix_used(block, (formats_by_file or {}).get(file_id))
        write(file_id, block_no, block)
        restored += 1
    return restored


def _fix_used(block, formats=None) -> None:
    """Recompute the block's used-space counter after slot surgery.

    With the owning file's format registry the true occupied width is
    computed, so the free-space map is honest even between undo surgery
    and ``rebuild_metadata``.  Without formats only a slot-count estimate
    is possible (kept as a fallback for bare-log callers)."""
    if formats:
        block.used = sum(formats[entry[0]].width
                         for entry in block.slots if entry is not None)
    else:
        block.used = sum(1 for entry in block.slots if entry is not None)
