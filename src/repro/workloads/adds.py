"""An ADDS-shaped schema generator (paper §6).

"The stand-alone data dictionary ADDS is itself a SIM database.  It
consists of 13 base classes, 209 subclasses, 39 EVA-inverse pairs, 530
DVAs and at its deepest, one hierarchy represents 5 levels of
generalization."

ADDS itself is proprietary; we generate a schema with exactly those shape
statistics (deterministically), which exercises schema resolution, LUC
translation and physical layout at the published scale.
"""

from __future__ import annotations

import random
from typing import List

from repro.schema.attribute import (
    AttributeOptions,
    DataValuedAttribute,
    EntityValuedAttribute,
)
from repro.schema.klass import SimClass
from repro.schema.schema import Schema
from repro.types.domain import IntegerType, StringType

#: the published ADDS shape (paper §6)
ADDS_TARGET = {
    "base_classes": 13,
    "subclasses": 209,
    "eva_inverse_pairs": 39,
    "dvas": 530,
    "max_hierarchy_depth": 5,
}


def build_adds_schema(seed: int = 1988) -> Schema:
    """Build a schema matching :data:`ADDS_TARGET` exactly."""
    rng = random.Random(seed)
    schema = Schema("adds")

    base_names = [f"dict-base{i:02d}" for i in range(ADDS_TARGET["base_classes"])]
    all_names: List[str] = []
    parents: dict = {}

    for name in base_names:
        schema.add_class(SimClass(name))
        all_names.append(name)
        parents[name] = None

    # Distribute 209 subclasses; force one chain of depth 5 (base + 4
    # levels of subclassing) under the first base class.
    depth_chain = [base_names[0]]
    for level in range(1, ADDS_TARGET["max_hierarchy_depth"]):
        name = f"dict-deep{level}"
        schema.add_class(SimClass(name, [depth_chain[-1]]))
        parents[name] = depth_chain[-1]
        depth_chain.append(name)
        all_names.append(name)
    remaining = ADDS_TARGET["subclasses"] - (
        ADDS_TARGET["max_hierarchy_depth"] - 1)

    for index in range(remaining):
        # Attach shallowly (levels 1-3) so only the forced chain reaches 5.
        candidates = [n for n in all_names
                      if _level(parents, n) <= 2]
        parent = candidates[rng.randrange(len(candidates))]
        name = f"dict-sub{index:03d}"
        schema.add_class(SimClass(name, [parent]))
        parents[name] = parent
        all_names.append(name)

    # 530 DVAs spread over all classes, deterministic round-robin.
    dva_index = 0
    while dva_index < ADDS_TARGET["dvas"]:
        owner = all_names[dva_index % len(all_names)]
        attr_name = f"attr{dva_index:03d}"
        data_type = (StringType(30) if dva_index % 3 else IntegerType())
        options = AttributeOptions(
            required=(dva_index % 7 == 0),
            unique=(dva_index % 31 == 0),
        )
        schema.get_class(owner).add_attribute(
            DataValuedAttribute(attr_name, data_type, options))
        dva_index += 1

    # 39 EVA/inverse pairs between deterministic class pairs.
    for pair_index in range(ADDS_TARGET["eva_inverse_pairs"]):
        domain = all_names[(pair_index * 5) % len(all_names)]
        range_ = all_names[(pair_index * 11 + 3) % len(all_names)]
        eva_name = f"rel{pair_index:02d}"
        inverse_name = f"rel{pair_index:02d}-of"
        mv = pair_index % 2 == 0
        schema.get_class(domain).add_attribute(EntityValuedAttribute(
            eva_name, range_, inverse_name,
            AttributeOptions(mv=mv)))
        schema.get_class(range_).add_attribute(EntityValuedAttribute(
            inverse_name, domain, eva_name,
            AttributeOptions(mv=True)))
    return schema.resolve()


def _level(parents: dict, name: str) -> int:
    level = 0
    while parents[name] is not None:
        level += 1
        name = parents[name]
    return level
