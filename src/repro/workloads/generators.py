"""Synthetic schema/data generators for the design-claim benchmarks.

* :func:`fanout_schema` / :func:`populate_fanout` — a 1:many EVA between
  two classes with a configurable fan-out, for the EVA-mapping experiment
  (E4): "The mapping of EVAs is the key factor in determining SIM's
  performance" (§5.2).
* :func:`hierarchy_chain_schema` / :func:`populate_hierarchy_chain` — a
  generalization chain of configurable depth, for the variable-format vs
  separate-units experiment (E5).
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from repro.database import Database
from repro.schema.attribute import (
    AttributeOptions,
    DataValuedAttribute,
    EntityValuedAttribute,
)
from repro.schema.klass import SimClass
from repro.schema.schema import Schema
from repro.types.domain import IntegerType, StringType


def fanout_schema() -> Schema:
    """Two classes, ``owner`` and ``member``, with a 1:many EVA
    ``members``/``owner-of`` between them (plus filler DVAs so records have
    realistic width)."""
    schema = Schema("fanout")
    owner = SimClass("owner")
    owner.add_attribute(DataValuedAttribute(
        "owner-key", IntegerType(), AttributeOptions(unique=True,
                                                     required=True)))
    owner.add_attribute(DataValuedAttribute("owner-data", StringType(40)))
    owner.add_attribute(EntityValuedAttribute(
        "members", "member", "owned-by", AttributeOptions(mv=True)))
    # A second 1:many EVA between the same classes: under the default
    # mapping both share the Common EVA Structure, so their instance
    # records interleave — the locality effect the dedicated mapping
    # avoids.
    owner.add_attribute(EntityValuedAttribute(
        "backups", "member", "backup-of", AttributeOptions(mv=True)))
    schema.add_class(owner)

    member = SimClass("member")
    member.add_attribute(DataValuedAttribute(
        "member-key", IntegerType(), AttributeOptions(unique=True,
                                                      required=True)))
    member.add_attribute(DataValuedAttribute("member-data", StringType(40)))
    member.add_attribute(EntityValuedAttribute(
        "owned-by", "owner", "members", AttributeOptions()))
    member.add_attribute(EntityValuedAttribute(
        "backup-of", "owner", "backups", AttributeOptions()))
    schema.add_class(member)
    return schema.resolve()


def populate_fanout(database: Database, owners: int, fanout: int,
                    seed: int = 3) -> Tuple[List[int], List[int]]:
    """Insert ``owners`` owner entities with ``fanout`` members each.

    The includes of ``members`` and the noise EVA ``backups`` alternate
    across owners, so instance records of the two relationships interleave
    wherever they share a storage unit (the Common EVA Structure).
    """
    rng = random.Random(seed)
    store = database.store
    members_eva = database.schema.get_class("owner").attribute("members")
    backups_eva = database.schema.get_class("owner").attribute("backups")
    owner_surrs: List[int] = []
    member_surrs: List[int] = []
    key = 0
    for owner_index in range(owners):
        owner_surr = store.insert_entity("owner", {
            "owner-key": owner_index,
            "owner-data": f"owner {owner_index} {rng.random():.6f}"})
        owner_surrs.append(owner_surr)
    # Members are inserted after all owners so that member records do NOT
    # accidentally share blocks with their owner (except under the
    # clustered mapping, which places relationship records deliberately).
    backup_pool: List[int] = []
    for owner_index, owner_surr in enumerate(owner_surrs):
        for member_index in range(fanout):
            member_surr = store.insert_entity("member", {
                "member-key": key,
                "member-data": f"member {key} {rng.random():.6f}"})
            key += 1
            store.eva_include(owner_surr, members_eva, member_surr)
            member_surrs.append(member_surr)
            # Interleave noise-EVA instances with the measured EVA's.
            if backup_pool:
                backup = backup_pool.pop(rng.randrange(len(backup_pool)))
                store.eva_include(owner_surr, backups_eva, backup)
            if member_index % 2 == 0 and owner_index + 1 < len(owner_surrs):
                backup_pool.append(member_surr)
    return owner_surrs, member_surrs


def hierarchy_chain_schema(depth: int) -> Schema:
    """A chain ``level0`` ← ``level1`` ← ... ← ``level<depth-1>``, each
    level declaring two DVAs (one inherited-read target per level)."""
    if depth < 1:
        raise ValueError("depth must be >= 1")
    schema = Schema(f"chain-{depth}")
    for level in range(depth):
        supers = [f"level{level - 1}"] if level else []
        sim_class = SimClass(f"level{level}", supers)
        sim_class.add_attribute(DataValuedAttribute(
            f"key{level}", IntegerType(),
            AttributeOptions(unique=(level == 0), required=(level == 0))))
        sim_class.add_attribute(DataValuedAttribute(
            f"data{level}", StringType(24)))
        schema.add_class(sim_class)
    return schema.resolve()


def populate_hierarchy_chain(database: Database, depth: int, entities: int,
                             seed: int = 5) -> List[int]:
    """Insert ``entities`` entities holding every role down the chain."""
    rng = random.Random(seed)
    store = database.store
    leaf = f"level{depth - 1}"
    surrogates: List[int] = []
    for index in range(entities):
        values: Dict[str, object] = {}
        for level in range(depth):
            if level == 0:
                values["key0"] = index
            else:
                values[f"key{level}"] = index * depth + level
            values[f"data{level}"] = f"row {index} level {level} " \
                                      f"{rng.random():.4f}"
        surrogates.append(store.insert_entity(leaf, values))
    return surrogates
