"""Synthetic schema/data generators for the design-claim benchmarks.

* :func:`fanout_schema` / :func:`populate_fanout` — a 1:many EVA between
  two classes with a configurable fan-out, for the EVA-mapping experiment
  (E4): "The mapping of EVAs is the key factor in determining SIM's
  performance" (§5.2).
* :func:`hierarchy_chain_schema` / :func:`populate_hierarchy_chain` — a
  generalization chain of configurable depth, for the variable-format vs
  separate-units experiment (E5).
* :func:`scale_schema` / :func:`populate_scale` / :func:`scale_queries` —
  the 10^5-10^6-entity workload behind ``benchmarks/bench_scale.py``: a
  long 1:many EVA chain (``tier0 → tier1 → ...``), a heavy many:many EVA
  into a ``part`` class, and a generalization diamond (``asset`` ←
  ``tracked``/``costed`` ← ``part``) so traversal-heavy queries exercise
  chained fan-out, many:many probes and inherited DVA reads at scale.
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from repro.database import Database
from repro.schema.attribute import (
    AttributeOptions,
    DataValuedAttribute,
    EntityValuedAttribute,
)
from repro.schema.klass import SimClass
from repro.schema.schema import Schema
from repro.types.domain import IntegerType, StringType


def fanout_schema() -> Schema:
    """Two classes, ``owner`` and ``member``, with a 1:many EVA
    ``members``/``owner-of`` between them (plus filler DVAs so records have
    realistic width)."""
    schema = Schema("fanout")
    owner = SimClass("owner")
    owner.add_attribute(DataValuedAttribute(
        "owner-key", IntegerType(), AttributeOptions(unique=True,
                                                     required=True)))
    owner.add_attribute(DataValuedAttribute("owner-data", StringType(40)))
    owner.add_attribute(EntityValuedAttribute(
        "members", "member", "owned-by", AttributeOptions(mv=True)))
    # A second 1:many EVA between the same classes: under the default
    # mapping both share the Common EVA Structure, so their instance
    # records interleave — the locality effect the dedicated mapping
    # avoids.
    owner.add_attribute(EntityValuedAttribute(
        "backups", "member", "backup-of", AttributeOptions(mv=True)))
    schema.add_class(owner)

    member = SimClass("member")
    member.add_attribute(DataValuedAttribute(
        "member-key", IntegerType(), AttributeOptions(unique=True,
                                                      required=True)))
    member.add_attribute(DataValuedAttribute("member-data", StringType(40)))
    member.add_attribute(EntityValuedAttribute(
        "owned-by", "owner", "members", AttributeOptions()))
    member.add_attribute(EntityValuedAttribute(
        "backup-of", "owner", "backups", AttributeOptions()))
    schema.add_class(member)
    return schema.resolve()


def populate_fanout(database: Database, owners: int, fanout: int,
                    seed: int = 3) -> Tuple[List[int], List[int]]:
    """Insert ``owners`` owner entities with ``fanout`` members each.

    The includes of ``members`` and the noise EVA ``backups`` alternate
    across owners, so instance records of the two relationships interleave
    wherever they share a storage unit (the Common EVA Structure).
    """
    rng = random.Random(seed)
    store = database.store
    members_eva = database.schema.get_class("owner").attribute("members")
    backups_eva = database.schema.get_class("owner").attribute("backups")
    owner_surrs: List[int] = []
    member_surrs: List[int] = []
    key = 0
    for owner_index in range(owners):
        owner_surr = store.insert_entity("owner", {
            "owner-key": owner_index,
            "owner-data": f"owner {owner_index} {rng.random():.6f}"})
        owner_surrs.append(owner_surr)
    # Members are inserted after all owners so that member records do NOT
    # accidentally share blocks with their owner (except under the
    # clustered mapping, which places relationship records deliberately).
    backup_pool: List[int] = []
    for owner_index, owner_surr in enumerate(owner_surrs):
        for member_index in range(fanout):
            member_surr = store.insert_entity("member", {
                "member-key": key,
                "member-data": f"member {key} {rng.random():.6f}"})
            key += 1
            store.eva_include(owner_surr, members_eva, member_surr)
            member_surrs.append(member_surr)
            # Interleave noise-EVA instances with the measured EVA's.
            if backup_pool:
                backup = backup_pool.pop(rng.randrange(len(backup_pool)))
                store.eva_include(owner_surr, backups_eva, backup)
            if member_index % 2 == 0 and owner_index + 1 < len(owner_surrs):
                backup_pool.append(member_surr)
    return owner_surrs, member_surrs


def hierarchy_chain_schema(depth: int) -> Schema:
    """A chain ``level0`` ← ``level1`` ← ... ← ``level<depth-1>``, each
    level declaring two DVAs (one inherited-read target per level)."""
    if depth < 1:
        raise ValueError("depth must be >= 1")
    schema = Schema(f"chain-{depth}")
    for level in range(depth):
        supers = [f"level{level - 1}"] if level else []
        sim_class = SimClass(f"level{level}", supers)
        sim_class.add_attribute(DataValuedAttribute(
            f"key{level}", IntegerType(),
            AttributeOptions(unique=(level == 0), required=(level == 0))))
        sim_class.add_attribute(DataValuedAttribute(
            f"data{level}", StringType(24)))
        schema.add_class(sim_class)
    return schema.resolve()


def populate_hierarchy_chain(database: Database, depth: int, entities: int,
                             seed: int = 5) -> List[int]:
    """Insert ``entities`` entities holding every role down the chain."""
    rng = random.Random(seed)
    store = database.store
    leaf = f"level{depth - 1}"
    surrogates: List[int] = []
    for index in range(entities):
        values: Dict[str, object] = {}
        for level in range(depth):
            if level == 0:
                values["key0"] = index
            else:
                values[f"key{level}"] = index * depth + level
            values[f"data{level}"] = f"row {index} level {level} " \
                                      f"{rng.random():.4f}"
        surrogates.append(store.insert_entity(leaf, values))
    return surrogates


def scale_schema(chain_depth: int = 3) -> Schema:
    """The BENCH_scale schema: a ``chain_depth``-long 1:many EVA chain
    ``tier0 → tier1 → ...`` (EVA ``feeds``, inverse ``fed-by``), a heavy
    many:many EVA ``links`` between the last tier and ``part``, and a
    generalization diamond ``asset`` ← ``tracked``/``costed`` ← ``part``
    so part reads resolve DVAs through multiple inheritance."""
    if chain_depth < 2:
        raise ValueError("chain_depth must be >= 2")
    schema = Schema(f"scale-{chain_depth}")

    asset = SimClass("asset")
    asset.add_attribute(DataValuedAttribute(
        "asset-key", IntegerType(), AttributeOptions(unique=True,
                                                     required=True)))
    schema.add_class(asset)
    tracked = SimClass("tracked", ["asset"])
    tracked.add_attribute(DataValuedAttribute("site-code", IntegerType()))
    schema.add_class(tracked)
    costed = SimClass("costed", ["asset"])
    costed.add_attribute(DataValuedAttribute("cost", IntegerType()))
    schema.add_class(costed)
    part = SimClass("part", ["tracked", "costed"])
    part.add_attribute(DataValuedAttribute(
        "part-key", IntegerType(), AttributeOptions(unique=True,
                                                    required=True)))
    part.add_attribute(EntityValuedAttribute(
        "linked-from", f"tier{chain_depth - 1}", "links",
        AttributeOptions(mv=True)))
    schema.add_class(part)

    for level in range(chain_depth):
        tier = SimClass(f"tier{level}")
        tier.add_attribute(DataValuedAttribute(
            f"key{level}", IntegerType(), AttributeOptions(unique=True,
                                                           required=True)))
        tier.add_attribute(DataValuedAttribute(f"load{level}",
                                               IntegerType()))
        if level + 1 < chain_depth:
            tier.add_attribute(EntityValuedAttribute(
                "feeds", f"tier{level + 1}", "fed-by",
                AttributeOptions(mv=True)))
        if level:
            tier.add_attribute(EntityValuedAttribute(
                "fed-by", f"tier{level - 1}", "feeds", AttributeOptions()))
        if level == chain_depth - 1:
            tier.add_attribute(EntityValuedAttribute(
                "links", "part", "linked-from", AttributeOptions(mv=True)))
        schema.add_class(tier)
    return schema.resolve()


def populate_scale(database: Database, entities: int, chain_depth: int = 3,
                   fanout: int = 8, link_degree: int = 4,
                   seed: int = 9) -> Dict[str, List[int]]:
    """Insert roughly ``entities`` entities against :func:`scale_schema`.

    Tier populations grow geometrically by ``fanout`` down the chain and
    the remainder becomes ``part`` entities, each linked into the
    many:many EVA with ``link_degree`` distinct last-tier partners —
    traversals from ``tier0`` therefore fan out by ``fanout`` per hop and
    end in a dense probe set.  Returns surrogates keyed by class name.
    """
    rng = random.Random(seed)
    store = database.store
    schema = database.schema

    weights = [fanout ** level for level in range(chain_depth)]
    total_weight = sum(weights) + weights[-1]
    counts = [max(1, entities * weight // total_weight)
              for weight in weights]
    part_count = max(1, entities - sum(counts))

    created: Dict[str, List[int]] = {}
    for level, count in enumerate(counts):
        name = f"tier{level}"
        fed_by = (schema.get_class(name).attribute("fed-by")
                  if level else None)
        parents = created[f"tier{level - 1}"] if level else []
        surrogates: List[int] = []
        for index in range(count):
            surrogate = store.insert_entity(name, {
                f"key{level}": index,
                f"load{level}": rng.randint(0, 99)})
            if fed_by is not None:
                store.eva_include(surrogate, fed_by,
                                  parents[rng.randrange(len(parents))])
            surrogates.append(surrogate)
        created[name] = surrogates

    last_tier = created[f"tier{chain_depth - 1}"]
    linked_from = schema.get_class("part").attribute("linked-from")
    degree = min(link_degree, len(last_tier))
    parts: List[int] = []
    for index in range(part_count):
        surrogate = store.insert_entity("part", {
            "asset-key": index,
            "site-code": rng.randint(0, 9),
            "cost": rng.randint(10, 9999),
            "part-key": index})
        for position in rng.sample(range(len(last_tier)), degree):
            store.eva_include(surrogate, linked_from, last_tier[position])
        parts.append(surrogate)
    created["part"] = parts
    return created


def scale_queries(chain_depth: int = 3) -> List[str]:
    """The BENCH_scale query set: chained traversal, many:many probes
    with selection and aggregation, and inherited-DVA reads through the
    generalization diamond.

    The selection-form queries (WHERE over a traversal path) do their
    record reads in the parallel-safe pipeline segment; the target-path
    and aggregate forms deliberately keep that work in the serial
    Project/Aggregate consumers, so the benchmark shows both sides of
    the morsel barrier.
    """
    last = chain_depth - 1
    chain_path = " of ".join(["feeds"] * last)
    return [
        f"From tier0 Retrieve key0"
        f" Where load{last} of {chain_path} > 10",
        f"From tier0 Retrieve key0, key{last} of {chain_path}",
        f"From tier{last} Retrieve key{last}"
        f" Where cost of links > 5000",
        f"From tier{last} Retrieve key{last}, sum(cost of links)",
        "From part Retrieve part-key Where site-code = 7",
        f"From tier1 Retrieve key1 Where load{last} of feeds > 95",
    ]
