"""The UNIVERSITY database of the paper's §7, plus a data generator.

``UNIVERSITY_DDL`` is the example schema verbatim (with the paper's two
internal typos normalized to the schema's own spellings: the DML examples
say ``student-no``/``prerequisite`` where §7 declares ``student-nbr``/
``prerequisites``).

:func:`build_university` creates a database and fills it with a
deterministic synthetic population that respects every schema constraint
(advisor limits, course-load limits, credit sums), so it can be built with
VERIFY enforcement on.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.database import Database
from repro.mapper.physical import PhysicalDesign
from repro.types.dates import SimDate

UNIVERSITY_DDL = """
(* The UNIVERSITY database, paper section 7 / figure 2. *)

Type degree = symbolic (BS, MBA, MS, PHD);
Type id-number = integer (1001..39999, 60001..99999);

Class Person (
  name: string[30];
  soc-sec-no: integer, unique, required;
  birthdate: date;
  spouse: person inverse is spouse;
  profession: subrole (student, instructor) mv );

Subclass Student of Person (
  student-nbr: id-number;
  advisor: instructor inverse is advisees;
  instructor-status: subrole (teaching-assistant);
  courses-enrolled: course inverse is students-enrolled mv (distinct);
  major-department: department );

Verify v1 on Student
  assert sum(credits of courses-enrolled) >= 12
  else "student is taking too few credits";

Subclass Instructor of Person (
  employee-nbr: id-number unique required;
  salary: number[9,2];
  bonus: number[9,2];
  student-status: subrole (teaching-assistant);
  advisees: student inverse is advisor mv (max 10);
  courses-taught: course inverse is teachers mv (max 3, distinct);
  assigned-department: department inverse is instructors-employed );

Verify v2 on Instructor
  assert salary + bonus < 100000
  else "instructor makes too much money";

Subclass Teaching-Assistant of Student and Instructor (
  teaching-load: integer (1..20) );

Class Course (
  course-no: integer (1..9999) unique required;
  title: string[30] required;
  credits: integer (1..15) required;
  students-enrolled: student inverse is courses-enrolled mv;
  teachers: instructor inverse is courses-taught mv (max 7);
  prerequisites: course inverse is prerequisite-of mv;
  prerequisite-of: course inverse is prerequisites mv );

Class Department (
  dept-nbr: integer (100..999) required unique;
  name: string[30] required;
  instructors-employed: instructor inverse is assigned-department mv;
  courses-offered: course mv );
"""

#: The canonical UNIVERSITY workload: one query per major DML form of §4
#: (retrieval, implicit joins, TYPE 3 target paths, TYPE 2 existentials,
#: aggregates, quantifiers, ISA tests, AS role conversion, transitive
#: closure).  The lint sweep and the E15 benchmark iterate this list; all
#: of them compile without a single simcheck error or warning.
UNIVERSITY_QUERIES = [
    "From student Retrieve name, student-nbr",
    "From student Retrieve name, name of advisor",
    "From student Retrieve name, title of courses-enrolled",
    "From instructor Retrieve name, salary Where salary + bonus > 50000",
    "From student Retrieve name Where credits of courses-enrolled > 3",
    "From student Retrieve name, sum(credits of courses-enrolled)",
    "From instructor Retrieve name, count(advisees)",
    "From instructor Retrieve name"
    " Where 3 = some(credits of courses-taught)",
    'From person Retrieve name'
    ' Where person isa instructor and not person isa student',
    "From student Retrieve name, teaching-load of student as"
    " teaching-assistant",
    "Retrieve title of Transitive(prerequisites) of course"
    ' Where course-no of course = 101',
    "From student, instructor Retrieve name of student, name of instructor"
    " Where advisor of student = instructor",
]

_FIRST = ["John", "Jane", "Joe", "Ada", "Alan", "Grace", "Edsger", "Barbara",
          "Donald", "Leslie", "Tony", "Edgar", "Kristen", "Niklaus", "Dana",
          "Frances", "Ken", "Dennis", "Robin", "Radia"]
_LAST = ["Doe", "Roe", "Bloke", "Lovelace", "Turing", "Hopper", "Dijkstra",
         "Liskov", "Knuth", "Lamport", "Hoare", "Codd", "Nygaard", "Wirth",
         "Scott", "Allen", "Thompson", "Ritchie", "Milner", "Perlman"]
_DEPTS = ["Physics", "Math", "Chemistry", "Biology", "History", "Music",
          "Economics", "Philosophy", "Astronomy", "Geology"]
_SUBJECTS = ["Algebra", "Calculus", "Mechanics", "Optics", "Logic",
             "Number Theory", "Topology", "Statistics", "Thermodynamics",
             "Field Theory", "Analysis", "Geometry"]


def _name(rng: random.Random, index: int) -> str:
    return (f"{_FIRST[index % len(_FIRST)]} "
            f"{_LAST[(index // len(_FIRST) + index) % len(_LAST)]}"
            f"{'' if index < 400 else ' ' + str(index)}")


def build_university(departments: int = 4, instructors: int = 10,
                     students: int = 40, courses: int = 20,
                     ta_fraction: float = 0.1, seed: int = 7,
                     design: Optional[PhysicalDesign] = None,
                     constraint_mode: str = "off",
                     use_optimizer: bool = True) -> Database:
    """Create and populate a UNIVERSITY database deterministically."""
    database = Database(UNIVERSITY_DDL, design=design,
                        constraint_mode=constraint_mode,
                        use_optimizer=use_optimizer)
    populate_university(database, departments, instructors, students,
                        courses, ta_fraction, seed)
    return database


def populate_university(database: Database, departments: int = 4,
                        instructors: int = 10, students: int = 40,
                        courses: int = 20, ta_fraction: float = 0.1,
                        seed: int = 7) -> Dict[str, List[int]]:
    """Populate through the Mapper (fast path); constraint-respecting.

    Returns the surrogates created, keyed by class name.
    """
    rng = random.Random(seed)
    store = database.store
    schema = database.schema

    person = schema.get_class("person")
    student = schema.get_class("student")
    instructor = schema.get_class("instructor")
    course = schema.get_class("course")

    advisor_eva = student.attribute("advisor")
    enrolled_eva = student.attribute("courses-enrolled")
    major_eva = student.attribute("major-department")
    taught_eva = instructor.attribute("courses-taught")
    assigned_eva = instructor.attribute("assigned-department")
    prereq_eva = course.attribute("prerequisites")
    offered_eva = schema.get_class("department").attribute("courses-offered")
    spouse_eva = person.attribute("spouse")

    created: Dict[str, List[int]] = {
        "department": [], "instructor": [], "student": [], "course": [],
        "teaching-assistant": []}
    ssn = 100000000

    for index in range(departments):
        surrogate = store.insert_entity("department", {
            "dept-nbr": 100 + index,
            "name": _DEPTS[index % len(_DEPTS)] + (
                "" if index < len(_DEPTS) else f" {index}"),
        })
        created["department"].append(surrogate)

    for index in range(instructors):
        ssn += rng.randint(1, 50)
        surrogate = store.insert_entity("instructor", {
            "name": _name(rng, index),
            "soc-sec-no": ssn,
            "birthdate": SimDate(1930 + rng.randint(0, 40),
                                 rng.randint(1, 12), rng.randint(1, 28)),
            "employee-nbr": 1001 + index,
            "salary": 30000 + rng.randint(0, 500) * 100,
            "bonus": rng.randint(0, 80) * 100,
        })
        store.eva_include(surrogate, assigned_eva,
                          rng.choice(created["department"]))
        created["instructor"].append(surrogate)

    taught_count = {surr: 0 for surr in created["instructor"]}
    for index in range(courses):
        subject = _SUBJECTS[index % len(_SUBJECTS)]
        level = index // len(_SUBJECTS) + 1
        surrogate = store.insert_entity("course", {
            "course-no": 101 + index,
            "title": f"{subject} {'I' * min(level, 3) or 'I'}"
                     if level <= 3 else f"{subject} {level}",
            "credits": rng.randint(2, 5),
        })
        # Prerequisites among earlier courses (a DAG by construction).
        for earlier in rng.sample(created["course"],
                                  min(len(created["course"]),
                                      rng.randint(0, 2))):
            store.eva_include(surrogate, prereq_eva, earlier)
        # 1-2 teachers, respecting MAX 3 courses per instructor.
        eligible = [i for i in created["instructor"] if taught_count[i] < 3]
        for teacher in rng.sample(eligible, min(len(eligible),
                                                rng.randint(1, 2))):
            store.eva_include(teacher, taught_eva, surrogate)
            taught_count[teacher] += 1
        store.eva_include(rng.choice(created["department"]), offered_eva,
                          surrogate)
        created["course"].append(surrogate)

    advisee_count = {surr: 0 for surr in created["instructor"]}
    for index in range(students):
        ssn += rng.randint(1, 50)
        surrogate = store.insert_entity("student", {
            "name": _name(rng, index + instructors),
            "soc-sec-no": ssn,
            "birthdate": SimDate(1950 + rng.randint(0, 25),
                                 rng.randint(1, 12), rng.randint(1, 28)),
            "student-nbr": 2001 + index,
        })
        eligible = [i for i in created["instructor"] if advisee_count[i] < 10]
        if eligible:
            advisor = rng.choice(eligible)
            store.eva_include(surrogate, advisor_eva, advisor)
            advisee_count[advisor] += 1
        store.eva_include(surrogate, major_eva,
                          rng.choice(created["department"]))
        # Enroll until the credit sum satisfies VERIFY v1 (>= 12).
        credits = 0
        candidates = list(created["course"])
        rng.shuffle(candidates)
        credits_attr = course.attribute("credits")
        for candidate in candidates:
            if credits >= 12:
                break
            store.eva_include(surrogate, enrolled_eva, candidate)
            credits += store.read_dva(candidate, credits_attr)
        created["student"].append(surrogate)

    # Promote a fraction of students to teaching assistants (they gain the
    # INSTRUCTOR role on the way, per the insertion-path rule).
    ta_count = int(students * ta_fraction)
    for index, surrogate in enumerate(created["student"][:ta_count]):
        store.add_role(surrogate, "instructor", {
            "employee-nbr": 60001 + index,
            "salary": 12000 + rng.randint(0, 50) * 100,
            "bonus": 0,
        })
        store.eva_include(surrogate, assigned_eva,
                          rng.choice(created["department"]))
        store.add_role(surrogate, "teaching-assistant", {
            "teaching-load": rng.randint(1, 20)})
        created["teaching-assistant"].append(surrogate)

    # A few marriages (the reflexive SPOUSE EVA).
    persons = created["instructor"] + created["student"]
    rng.shuffle(persons)
    for left, right in zip(persons[0::2], persons[1::2]):
        if rng.random() < 0.3:
            store.eva_include(left, spouse_eva, right)

    return created
