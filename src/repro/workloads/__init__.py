"""Workloads: the paper's UNIVERSITY database, the ADDS-scale schema, and
synthetic generators for the benchmarks."""

from repro.workloads.university import (
    UNIVERSITY_DDL,
    UNIVERSITY_QUERIES,
    build_university,
    populate_university,
)
from repro.workloads.adds import build_adds_schema, ADDS_TARGET
from repro.workloads.generators import (
    fanout_schema,
    hierarchy_chain_schema,
    populate_fanout,
    populate_hierarchy_chain,
)

__all__ = [
    "UNIVERSITY_DDL",
    "UNIVERSITY_QUERIES",
    "build_university",
    "populate_university",
    "build_adds_schema",
    "ADDS_TARGET",
    "fanout_schema",
    "hierarchy_chain_schema",
    "populate_fanout",
    "populate_hierarchy_chain",
]
