"""Runtime lock-order validation (lockdep).

Linux-kernel-style lock dependency checking for the engine's own
mutexes.  Every :class:`RankedLock` belongs to a named *lock class*
(``"storage.buffer"``, ``"store.commit_latch"``, …) whose rank comes from
the declared hierarchy in :mod:`repro.analysis.lock_order`.  On each
acquisition the checker consults the per-thread stack of held locks and

* raises :class:`LockOrderViolation` when the new lock's rank is not
  strictly below every held rank (descending-acquisition rule), and
* records a ``held-class -> new-class`` edge into a global
  acquisition-order graph, raising when a new edge closes a cycle
  (the would-deadlock case two rank-less locks can still produce).

Violations are raised *before* the lock is taken, so a buggy ordering
fails loudly instead of deadlocking some test run years later.  Each
offending edge is reported once; all reports are also retained for
:func:`violations` so the test suite can assert a clean run.

Checking is **off** in production and **on** when any of these hold:

* the environment sets ``REPRO_LOCKDEP=1`` (``0`` forces off),
* :func:`enable` was called (``disable`` reverses it), or
* pytest is loaded (``"pytest" in sys.modules``) — the whole test suite
  runs instrumented by default.

The enabled state is captured when a lock is *constructed*, which keeps
the per-acquisition fast path a single attribute check when lockdep is
off — an un-checked :class:`RankedLock` is a plain ``RLock`` plus one
``if``.
"""

from __future__ import annotations

import contextlib
import os
import sys
import threading
from typing import Dict, List, Optional, Set, Tuple

__all__ = [
    "LockOrderViolation", "RankedLock", "RankedCondition",
    "enable", "disable", "enabled", "forced", "reset",
    "violations", "edges",
]


class LockOrderViolation(RuntimeError):
    """A lock acquisition violated the declared rank order or closed a
    cycle in the observed acquisition-order graph.

    Deliberately *not* a :class:`repro.errors.SimError`: engine-level
    ``except SimError`` recovery paths must never swallow a lock-
    discipline bug.
    """


# -- Global checker state ------------------------------------------------------

_STATE_LOCK = threading.Lock()
#: observed edges (held_class, acquired_class), for warn-once dedup
_EDGES: Set[Tuple[str, str]] = set()
#: adjacency: lock class -> set of lock classes acquired while held
_GRAPH: Dict[str, Set[str]] = {}
#: retained violation messages (capped), for end-of-suite assertions
_VIOLATIONS: List[str] = []
_MAX_VIOLATIONS = 100
#: validated (held-chain..., acquired) name tuples — ranks are static
#: and the edge graph only grows, so a chain that passed once passes
#: forever (until reset); repeat acquisitions skip checking entirely.
#: The same dep-chain cache kernel lockdep uses on its hot path.
_CHAIN_CACHE: Set[Tuple[str, ...]] = set()

_override: Optional[bool] = None

_tls = threading.local()


def enabled() -> bool:
    """Effective default for locks constructed *now*."""
    if _override is not None:
        return _override
    env = os.environ.get("REPRO_LOCKDEP")
    if env is not None:
        return env not in ("", "0", "false", "no")
    return "pytest" in sys.modules


def enable() -> None:
    """Turn checking on for locks constructed after this call."""
    global _override
    _override = True


def disable() -> None:
    """Turn checking off for locks constructed after this call."""
    global _override
    _override = False


@contextlib.contextmanager
def forced(flag: bool):
    """Force checking on/off for locks constructed inside the block,
    restoring the previous override on exit (benchmarks use this to
    measure instrumented vs. uninstrumented builds back to back)."""
    global _override
    previous = _override
    _override = flag
    try:
        yield
    finally:
        _override = previous


def reset() -> None:
    """Clear the acquisition graph and retained violations (tests)."""
    with _STATE_LOCK:
        _EDGES.clear()
        _GRAPH.clear()
        _CHAIN_CACHE.clear()
        del _VIOLATIONS[:]


def violations() -> List[str]:
    """Messages for every violation observed since the last reset."""
    with _STATE_LOCK:
        return list(_VIOLATIONS)


def edges() -> Set[Tuple[str, str]]:
    """The observed acquisition-order edge set (lock-class names)."""
    with _STATE_LOCK:
        return set(_EDGES)


def _rank_table() -> Dict[str, int]:
    # Lazy: importing repro.analysis pulls in the optimizer/plan-verify
    # chain, which must not happen as a side effect of creating a lock
    # during package import.
    from repro.analysis.lock_order import LOCK_RANKS
    return LOCK_RANKS


def _reaches(start: str, target: str) -> bool:
    """DFS: is ``target`` reachable from ``start`` in the edge graph?
    Caller holds ``_STATE_LOCK``."""
    seen = set()
    frontier = [start]
    while frontier:
        node = frontier.pop()
        if node == target:
            return True
        if node in seen:
            continue
        seen.add(node)
        frontier.extend(_GRAPH.get(node, ()))
    return False


def _record_violation(message: str) -> None:
    # Caller holds _STATE_LOCK.
    if len(_VIOLATIONS) < _MAX_VIOLATIONS:
        _VIOLATIONS.append(message)


class RankedLock:
    """A named re-entrant lock participating in lockdep checking.

    Drop-in for ``threading.RLock()`` (``acquire``/``release``/context
    manager).  ``name`` is the lock *class*: every instance created with
    the same name shares rank and graph identity, so an ordering bug
    between two different buffer pools is still caught.
    """

    __slots__ = ("name", "rank", "_raw", "_check")

    def __init__(self, name: str, check: Optional[bool] = None):
        self.name = name
        self._raw = threading.RLock()
        self._check = enabled() if check is None else check
        self.rank = _rank_table().get(name) if self._check else None

    # -- checking ------------------------------------------------------

    def _before_acquire(self, stack: List["RankedLock"]) -> None:
        # list.__contains__ compares by identity first (no __eq__ here),
        # so this is a C-speed re-entrancy scan.
        if self in stack:
            return  # re-entrant re-acquisition: always legal
        chain = tuple([held.name for held in stack]) + (self.name,)
        if chain in _CHAIN_CACHE:
            return  # this exact chain already validated clean
        # Rank rule: only strictly-descending acquisition is legal.
        # A *different* instance of the same class is not re-entrancy —
        # equal rank trips the check, which is the point.
        if self.rank is not None:
            for held in stack:
                if held.rank is not None and self.rank >= held.rank:
                    message = (
                        f"lock order violation: acquiring "
                        f"{self.name!r} (rank {self.rank}) while holding "
                        f"{held.name!r} (rank {held.rank}) in thread "
                        f"{threading.current_thread().name!r}; held chain: "
                        f"{[h.name for h in stack]}")
                    with _STATE_LOCK:
                        edge = (held.name, self.name)
                        if edge in _EDGES:
                            return  # warn once per edge
                        _EDGES.add(edge)
                        _GRAPH.setdefault(held.name, set()).add(self.name)
                        _record_violation(message)
                    raise LockOrderViolation(message)
        # Graph rule: a new edge that closes a cycle would deadlock.
        # Same-class edges are skipped — the graph is keyed by class
        # name, so a self-edge carries no ordering information.  The
        # membership pre-check runs WITHOUT the state lock: the edge set
        # only grows between resets, so a stale read merely sends us
        # into the locked slow path, which re-checks.  In steady state
        # (every edge already seen) nested acquisitions never touch the
        # global lock — the same dep-chain-cache trick kernel lockdep
        # uses to stay affordable on hot paths.
        name = self.name
        new_names = None
        for held in stack:
            held_name = held.name
            if held_name != name and (held_name, name) not in _EDGES:
                if new_names is None:
                    new_names = {held_name}
                else:
                    new_names.add(held_name)
        if not new_names:
            _CHAIN_CACHE.add(chain)
            return
        with _STATE_LOCK:
            for held_name in new_names:
                edge = (held_name, self.name)
                if edge in _EDGES:
                    continue
                if _reaches(self.name, held_name):
                    message = (
                        f"lock order violation: edge {held_name!r} -> "
                        f"{self.name!r} closes a cycle in the observed "
                        f"acquisition graph (thread "
                        f"{threading.current_thread().name!r}; held chain: "
                        f"{[h.name for h in stack]})")
                    _EDGES.add(edge)
                    _GRAPH.setdefault(held_name, set()).add(self.name)
                    _record_violation(message)
                    raise LockOrderViolation(message)
                _EDGES.add(edge)
                _GRAPH.setdefault(held_name, set()).add(self.name)
        _CHAIN_CACHE.add(chain)

    # -- lock protocol -------------------------------------------------

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        if not self._check:
            return self._raw.acquire(blocking, timeout)
        # Inlined _held_stack(): this is the per-acquisition hot path.
        stack = getattr(_tls, "stack", None)
        if stack is None:
            stack = _tls.stack = []
        elif stack:
            self._before_acquire(stack)
        got = self._raw.acquire(blocking, timeout)
        if got:
            stack.append(self)
        return got

    def release(self) -> None:
        if self._check:
            stack = getattr(_tls, "stack", None)
            if stack:
                if stack[-1] is self:  # LIFO release: the common case
                    stack.pop()
                else:
                    for i in range(len(stack) - 1, -1, -1):
                        if stack[i] is self:
                            del stack[i]
                            break
        self._raw.release()

    def __enter__(self) -> "RankedLock":
        self.acquire()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.release()

    def __repr__(self) -> str:
        rank = f" rank={self.rank}" if self.rank is not None else ""
        return f"<RankedLock {self.name!r}{rank}>"


class RankedCondition:
    """A condition variable over a :class:`RankedLock`.

    The condition wraps the ranked lock's *raw* RLock, so ``wait()``
    releases the real lock while the lockdep stack keeps the entry for
    the blocked thread (which holds it again before returning).  Use
    :meth:`wait_for` — a bare ``wait`` outside a predicate loop is
    exactly what SIM304 exists to catch.
    """

    __slots__ = ("lock", "_cond")

    def __init__(self, lock: RankedLock):
        self.lock = lock
        self._cond = threading.Condition(lock._raw)

    def __enter__(self) -> "RankedCondition":
        self.lock.acquire()  # noqa: SIM300 — implements the with protocol
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.lock.release()

    def wait(self, timeout: Optional[float] = None) -> bool:
        return self._cond.wait(timeout)  # noqa: SIM304 — pass-through

    def wait_for(self, predicate, timeout: Optional[float] = None) -> bool:
        return self._cond.wait_for(predicate, timeout)

    def notify(self, n: int = 1) -> None:
        self._cond.notify(n)

    def notify_all(self) -> None:
        self._cond.notify_all()

    def __repr__(self) -> str:
        return f"<RankedCondition over {self.lock!r}>"
