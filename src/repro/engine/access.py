"""Entity access and range-variable domains.

Wraps the Mapper with the semantics the DML needs:

* reads through role views return NULL / no targets when the entity lacks
  the role (AS conversion, paper §4.2);
* TYPE 3 variables get a dummy all-null instance when their domain is
  empty (§4.5), represented by the :data:`DUMMY` sentinel;
* transitive closure over cyclic EVA chains (§4.7) with level numbers.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

from repro.mapper.store import MapperStore
from repro.types.tvl import NULL, is_null


class _Dummy:
    """Sentinel instance for empty TYPE 3 domains (all attributes null)."""

    def __repr__(self):
        return "DUMMY"

    def __bool__(self):
        return False


DUMMY = _Dummy()


#: memo dictionaries are cleared wholesale past this many entries — memos
#: are cheap to rebuild and an unbounded map would defeat the LRU caches
MEMO_LIMIT = 100_000


class EntityAccessor:
    """Role-aware attribute and relationship access for the engine.

    Reads are memoized per store epoch: the Mapper's read cache bumps its
    ``epoch`` on every invalidation, so one integer compare per access
    decides whether the memos are still current.  Repeated qualification
    paths (``Name of Advisor of Student``) therefore decode each record
    once per query — and stay warm across read-only queries.
    """

    def __init__(self, store: MapperStore):
        self.store = store
        self.schema = store.schema
        self.perf = store.perf
        self._memo_epoch = -1
        self._dva_memo = {}      # (id(attr), surrogate) -> value
        self._mv_memo = {}       # (id(attr), surrogate) -> tuple
        self._eva_memo = {}      # (id(eva), surrogate) -> tuple
        self._domain_memo = {}   # (node.id, parent instance) -> tuple

    def begin_query(self) -> None:
        """Hook for the executor at query start: revalidate the memos."""
        self._sync()

    def _sync(self) -> None:
        """Drop every memo when the store has mutated since the last read
        (or when the memos have grown past :data:`MEMO_LIMIT`)."""
        epoch = self.store.read_cache.epoch
        if epoch != self._memo_epoch or (
                len(self._dva_memo) + len(self._mv_memo)
                + len(self._eva_memo) + len(self._domain_memo) > MEMO_LIMIT):
            self._dva_memo.clear()
            self._mv_memo.clear()
            self._eva_memo.clear()
            self._domain_memo.clear()
            self._memo_epoch = epoch

    # -- Attribute access -----------------------------------------------------------

    def dva(self, surrogate, attr):
        """Read a single-valued DVA (or subrole) through a role view.

        Returns NULL for the dummy instance and for entities that do not
        currently hold the attribute's declaring role.
        """
        if surrogate is DUMMY or is_null(surrogate):
            return NULL
        if attr.is_surrogate:
            return surrogate
        self._sync()
        key = (id(attr), surrogate)
        try:
            value = self._dva_memo[key]
        except KeyError:
            pass
        else:
            self.perf.bump("memo_hits")
            return value
        self.perf.bump("memo_misses")
        if not self.store.has_role(surrogate, attr.owner_name):
            value = NULL
        else:
            value = self.store.read_dva(surrogate, attr)
        if not isinstance(value, list):
            # List values (MV subroles) are mutable; leave them unmemoized.
            self._dva_memo[key] = value
        return value

    def mv_values(self, surrogate, attr) -> List:
        """The value multiset of an MV DVA (empty for dummy / missing role)."""
        if surrogate is DUMMY or is_null(surrogate):
            return []
        self._sync()
        key = (id(attr), surrogate)
        cached = self._mv_memo.get(key)
        if cached is not None:
            self.perf.bump("memo_hits")
            return list(cached)
        self.perf.bump("memo_misses")
        if not self.store.has_role(surrogate, attr.owner_name):
            values = []
        else:
            values = self.store.read_dva(surrogate, attr)
        self._mv_memo[key] = tuple(values)
        return values

    def eva_targets(self, surrogate, eva) -> List[int]:
        """Target surrogates of an EVA (empty for dummy / missing role).

        An EVA declared ``ordered by <attr>`` (paper §6: system-maintained
        ordering) returns its targets sorted by that range-class DVA,
        nulls first; ties fall back to surrogate order.
        """
        if surrogate is DUMMY or is_null(surrogate):
            return []
        self._sync()
        key = (id(eva), surrogate)
        cached = self._eva_memo.get(key)
        if cached is not None:
            self.perf.bump("memo_hits")
            return list(cached)
        self.perf.bump("memo_misses")
        targets = self._eva_targets_uncached(surrogate, eva)
        self._eva_memo[key] = tuple(targets)
        return targets

    def _eva_targets_uncached(self, surrogate, eva) -> List[int]:
        if not self.store.has_role(surrogate, eva.owner_name):
            return []
        targets = self.store.eva_targets(surrogate, eva)
        order_attr_name = eva.options.ordered_by
        if order_attr_name is not None and len(targets) > 1:
            order_attr = self.schema.get_class(
                eva.range_class_name).attribute(order_attr_name)

            def key(target):
                value = self.dva(target, order_attr)
                if is_null(value):
                    return (0, 0, target)
                return (1, value, target)
            targets = sorted(targets, key=key)
        return targets

    def has_role(self, surrogate, class_name: str):
        if surrogate is DUMMY or is_null(surrogate):
            return None  # unknown, not false: dummy has no identity
        return self.store.has_role(surrogate, class_name)

    # -- Transitive closure ------------------------------------------------------------

    def transitive(self, surrogate, evas) -> List[Tuple[int, int]]:
        """Breadth-first transitive closure of an EVA hop chain.

        ``evas`` is one EVA or a list applied in order (§4.7: "any cyclic
        chain of EVAs"; the single reflexive EVA is a chain one element
        long).  Returns (target, level) pairs, level 1 for the first
        composite hop; the start entity is excluded and cycles are cut.
        """
        if surrogate is DUMMY or is_null(surrogate):
            return []
        chain = evas if isinstance(evas, (list, tuple)) else [evas]

        def hop(entities):
            current = list(entities)
            for eva in chain:
                step = []
                for entity in current:
                    step.extend(self.eva_targets(entity, eva))
                current = step
            return current

        results: List[Tuple[int, int]] = []
        visited = {surrogate}
        frontier = [surrogate]
        level = 0
        while frontier:
            level += 1
            next_frontier: List[int] = []
            for target in hop(frontier):
                if target in visited:
                    continue
                visited.add(target)
                results.append((target, level))
                next_frontier.append(target)
            frontier = next_frontier
        return results

    # -- Domains -----------------------------------------------------------------------

    def class_extent(self, class_name: str) -> Iterator[int]:
        return self.store.scan_class(class_name)

    def node_domain(self, node, env):
        """The domain of a non-root query-tree node given its parent's
        instance in ``env`` (paper §4.5: "every other domain is defined
        based on an attribute and a given instance of the range variable of
        its parent node").

        Results are materialized as tuples keyed by (node, parent
        instance): within one query the same subtree domain — notably a
        hoisted TYPE 2 existential re-entered per outer row — is
        enumerated once.  Callers must not mutate the result.
        """
        parent_instance = env[node.parent.id]
        self._sync()
        key = (node.id, parent_instance)
        cached = self._domain_memo.get(key)
        if cached is not None:
            self.perf.bump("memo_hits")
            return cached
        self.perf.bump("memo_misses")
        self.perf.bump("domain_enumerations")
        trace = self.store.trace
        if trace is not None and trace.enabled:
            trace.count("engine.domain_enumerations")
        domain = tuple(self._node_domain_uncached(node, parent_instance))
        self._domain_memo[key] = domain
        return domain

    def _node_domain_uncached(self, node, parent_instance) -> List:
        if node.kind == "eva":
            source = self._unwrap(node.parent, parent_instance)
            if node.transitive:
                return self.transitive(source,
                                       node.transitive_evas or node.eva)
            targets = self.eva_targets(source, node.eva)
            if node.as_class:
                # Role conversion: the variable still ranges over all
                # targets; attribute access through the converted view
                # yields NULL for entities lacking the role.
                return targets
            return targets
        if node.kind == "mvdva":
            source = self._unwrap(node.parent, parent_instance)
            return self.mv_values(source, node.mv_attr)
        raise ValueError(f"cannot enumerate domain of {node!r}")

    def root_domain(self, node) -> Iterator[int]:
        return self.class_extent(node.class_name)

    @staticmethod
    def _unwrap(node, instance):
        """Instance value of a node (transitive instances are (value, level))."""
        if node is not None and node.kind == "eva" and node.transitive \
                and isinstance(instance, tuple):
            return instance[0]
        return instance

    @staticmethod
    def instance_value(node, instance):
        if node.kind == "eva" and node.transitive and isinstance(instance, tuple):
            return instance[0]
        return instance
