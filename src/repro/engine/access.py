"""Entity access and range-variable domains.

Wraps the Mapper with the semantics the DML needs:

* reads through role views return NULL / no targets when the entity lacks
  the role (AS conversion, paper §4.2);
* TYPE 3 variables get a dummy all-null instance when their domain is
  empty (§4.5), represented by the :data:`DUMMY` sentinel;
* transitive closure over cyclic EVA chains (§4.7) with level numbers.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from repro.mapper.store import MapperStore
from repro.types.tvl import NULL, is_null


class _Dummy:
    """Sentinel instance for empty TYPE 3 domains (all attributes null)."""

    def __repr__(self):
        return "DUMMY"

    def __bool__(self):
        return False


DUMMY = _Dummy()


class EntityAccessor:
    """Role-aware attribute and relationship access for the engine."""

    def __init__(self, store: MapperStore):
        self.store = store
        self.schema = store.schema

    # -- Attribute access -----------------------------------------------------------

    def dva(self, surrogate, attr):
        """Read a single-valued DVA (or subrole) through a role view.

        Returns NULL for the dummy instance and for entities that do not
        currently hold the attribute's declaring role.
        """
        if surrogate is DUMMY or is_null(surrogate):
            return NULL
        if attr.is_surrogate:
            return surrogate
        owner = attr.owner_name
        if not self.store.has_role(surrogate, owner):
            return NULL
        return self.store.read_dva(surrogate, attr)

    def mv_values(self, surrogate, attr) -> List:
        """The value multiset of an MV DVA (empty for dummy / missing role)."""
        if surrogate is DUMMY or is_null(surrogate):
            return []
        if not self.store.has_role(surrogate, attr.owner_name):
            return []
        return self.store.read_dva(surrogate, attr)

    def eva_targets(self, surrogate, eva) -> List[int]:
        """Target surrogates of an EVA (empty for dummy / missing role).

        An EVA declared ``ordered by <attr>`` (paper §6: system-maintained
        ordering) returns its targets sorted by that range-class DVA,
        nulls first; ties fall back to surrogate order.
        """
        if surrogate is DUMMY or is_null(surrogate):
            return []
        if not self.store.has_role(surrogate, eva.owner_name):
            return []
        targets = self.store.eva_targets(surrogate, eva)
        order_attr_name = eva.options.ordered_by
        if order_attr_name is not None and len(targets) > 1:
            order_attr = self.schema.get_class(
                eva.range_class_name).attribute(order_attr_name)

            def key(target):
                value = self.dva(target, order_attr)
                if is_null(value):
                    return (0, 0, target)
                return (1, value, target)
            targets = sorted(targets, key=key)
        return targets

    def has_role(self, surrogate, class_name: str):
        if surrogate is DUMMY or is_null(surrogate):
            return None  # unknown, not false: dummy has no identity
        return self.store.has_role(surrogate, class_name)

    # -- Transitive closure ------------------------------------------------------------

    def transitive(self, surrogate, evas) -> List[Tuple[int, int]]:
        """Breadth-first transitive closure of an EVA hop chain.

        ``evas`` is one EVA or a list applied in order (§4.7: "any cyclic
        chain of EVAs"; the single reflexive EVA is a chain one element
        long).  Returns (target, level) pairs, level 1 for the first
        composite hop; the start entity is excluded and cycles are cut.
        """
        if surrogate is DUMMY or is_null(surrogate):
            return []
        chain = evas if isinstance(evas, (list, tuple)) else [evas]

        def hop(entities):
            current = list(entities)
            for eva in chain:
                step = []
                for entity in current:
                    step.extend(self.eva_targets(entity, eva))
                current = step
            return current

        results: List[Tuple[int, int]] = []
        visited = {surrogate}
        frontier = [surrogate]
        level = 0
        while frontier:
            level += 1
            next_frontier: List[int] = []
            for target in hop(frontier):
                if target in visited:
                    continue
                visited.add(target)
                results.append((target, level))
                next_frontier.append(target)
            frontier = next_frontier
        return results

    # -- Domains ------------------------------------------------------------------------

    def class_extent(self, class_name: str) -> Iterator[int]:
        return self.store.scan_class(class_name)

    def node_domain(self, node, env) -> List:
        """The domain of a non-root query-tree node given its parent's
        instance in ``env`` (paper §4.5: "every other domain is defined
        based on an attribute and a given instance of the range variable of
        its parent node")."""
        parent_instance = env[node.parent.id]
        if node.kind == "eva":
            source = self._unwrap(node.parent, parent_instance)
            if node.transitive:
                return self.transitive(source,
                                       node.transitive_evas or node.eva)
            targets = self.eva_targets(source, node.eva)
            if node.as_class:
                # Role conversion: the variable still ranges over all
                # targets; attribute access through the converted view
                # yields NULL for entities lacking the role.
                return targets
            return targets
        if node.kind == "mvdva":
            source = self._unwrap(node.parent, parent_instance)
            return self.mv_values(source, node.mv_attr)
        raise ValueError(f"cannot enumerate domain of {node!r}")

    def root_domain(self, node) -> Iterator[int]:
        return self.class_extent(node.class_name)

    @staticmethod
    def _unwrap(node, instance):
        """Instance value of a node (transitive instances are (value, level))."""
        if node is not None and node.kind == "eva" and node.transitive \
                and isinstance(instance, tuple):
            return instance[0]
        return instance

    @staticmethod
    def instance_value(node, instance):
        if node.kind == "eva" and node.transitive and isinstance(instance, tuple):
            return instance[0]
        return instance
