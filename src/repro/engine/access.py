"""Entity access and range-variable domains.

Wraps the Mapper with the semantics the DML needs:

* reads through role views return NULL / no targets when the entity lacks
  the role (AS conversion, paper §4.2);
* TYPE 3 variables get a dummy all-null instance when their domain is
  empty (§4.5), represented by the :data:`DUMMY` sentinel;
* transitive closure over cyclic EVA chains (§4.7) with level numbers.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

from repro.mapper.store import MapperStore
from repro.types.tvl import NULL, is_null


class _Dummy:
    """Sentinel instance for empty TYPE 3 domains (all attributes null)."""

    def __repr__(self):
        return "DUMMY"

    def __bool__(self):
        return False


DUMMY = _Dummy()


#: memo dictionaries are cleared wholesale past this many entries — memos
#: are cheap to rebuild and an unbounded map would defeat the LRU caches
MEMO_LIMIT = 100_000


class EntityAccessor:
    """Role-aware attribute and relationship access for the engine.

    Reads are memoized per store epoch: the Mapper's read cache bumps its
    ``epoch`` on every invalidation, so one integer compare per access
    decides whether the memos are still current.  Repeated qualification
    paths (``Name of Advisor of Student``) therefore decode each record
    once per query — and stay warm across read-only queries.
    """

    def __init__(self, store: MapperStore):
        self.store = store
        self.schema = store.schema
        self.perf = store.perf
        self._memo_epoch = -1
        self._dva_memo = {}      # (id(attr), surrogate) -> value
        self._mv_memo = {}       # (id(attr), surrogate) -> tuple
        self._eva_memo = {}      # (id(eva), surrogate) -> tuple
        self._domain_memo = {}   # (node.id, parent instance) -> tuple

    def begin_query(self) -> None:
        """Hook for the executor at query start: revalidate the memos."""
        self._sync()

    def _sync(self) -> None:
        """Drop every memo when the store has mutated since the last read
        (or when the memos have grown past :data:`MEMO_LIMIT`)."""
        epoch = self.store.read_cache.epoch
        if epoch != self._memo_epoch or (
                len(self._dva_memo) + len(self._mv_memo)
                + len(self._eva_memo) + len(self._domain_memo) > MEMO_LIMIT):
            self._dva_memo.clear()
            self._mv_memo.clear()
            self._eva_memo.clear()
            self._domain_memo.clear()
            self._memo_epoch = epoch

    # -- Attribute access -----------------------------------------------------------

    def dva(self, surrogate, attr):
        """Read a single-valued DVA (or subrole) through a role view.

        Returns NULL for the dummy instance and for entities that do not
        currently hold the attribute's declaring role.
        """
        if surrogate is DUMMY or is_null(surrogate):
            return NULL
        if attr.is_surrogate:
            return surrogate
        self._sync()
        key = (id(attr), surrogate)
        try:
            value = self._dva_memo[key]
        except KeyError:
            pass
        else:
            self.perf.bump("memo_hits")
            return value
        self.perf.bump("memo_misses")
        if not self.store.has_role(surrogate, attr.owner_name):
            value = NULL
        else:
            value = self.store.read_dva(surrogate, attr)
        if not isinstance(value, list):
            # List values (MV subroles) are mutable; leave them unmemoized.
            self._dva_memo[key] = value
        return value

    def dva_batch(self, attr, instances) -> List:
        """Batched :meth:`dva` over a column of instances.

        Exactly one memo hit *or* miss is accounted per non-dummy
        instance — the same totals as per-instance calls, aggregated
        into at most two counter bumps — and the records behind all the
        misses decode through one :meth:`MapperStore.fetch_many` call.
        Attributes outside the batched shape (subroles, surrogates, MV)
        fall back to per-instance reads.
        """
        if attr.is_surrogate:
            return [NULL if inst is DUMMY or is_null(inst) else inst
                    for inst in instances]
        if attr.is_subrole or attr.multi_valued or attr.is_eva:
            return [self.dva(inst, attr) for inst in instances]
        self._sync()
        memo = self._dva_memo
        attr_id = id(attr)
        values = [NULL] * len(instances)
        hits = misses = 0
        pending = {}                 # surrogate -> positions awaiting value
        for position, instance in enumerate(instances):
            if instance is DUMMY or is_null(instance):
                continue
            key = (attr_id, instance)
            if key in memo:
                hits += 1
                values[position] = memo[key]
            elif instance in pending:
                # Second occurrence in this batch: the sequential path
                # would find the memo filled by now — a hit.
                hits += 1
                pending[instance].append(position)
            else:
                misses += 1
                pending[instance] = [position]
        if hits:
            self.perf.bump("memo_hits", hits)
        if misses:
            self.perf.bump("memo_misses", misses)
        if pending:
            store = self.store
            owner = attr.owner_name
            holders = [surrogate for surrogate in pending
                       if store.has_role(surrogate, owner)]
            records = store.fetch_many(owner, holders) if holders else {}
            for surrogate, positions in pending.items():
                record = records.get(surrogate)
                if record is None:
                    value = NULL
                else:
                    value = record[1].get(attr.name, NULL)
                if not isinstance(value, list):
                    memo[(attr_id, surrogate)] = value
                for position in positions:
                    values[position] = value
        return values

    def mv_values(self, surrogate, attr) -> List:
        """The value multiset of an MV DVA (empty for dummy / missing role)."""
        if surrogate is DUMMY or is_null(surrogate):
            return []
        self._sync()
        key = (id(attr), surrogate)
        cached = self._mv_memo.get(key)
        if cached is not None:
            self.perf.bump("memo_hits")
            return list(cached)
        self.perf.bump("memo_misses")
        if not self.store.has_role(surrogate, attr.owner_name):
            values = []
        else:
            values = self.store.read_dva(surrogate, attr)
        self._mv_memo[key] = tuple(values)
        return values

    def eva_targets(self, surrogate, eva) -> List[int]:
        """Target surrogates of an EVA (empty for dummy / missing role).

        An EVA declared ``ordered by <attr>`` (paper §6: system-maintained
        ordering) returns its targets sorted by that range-class DVA,
        nulls first; ties fall back to surrogate order.
        """
        if surrogate is DUMMY or is_null(surrogate):
            return []
        self._sync()
        key = (id(eva), surrogate)
        cached = self._eva_memo.get(key)
        if cached is not None:
            self.perf.bump("memo_hits")
            return list(cached)
        self.perf.bump("memo_misses")
        targets = self._eva_targets_uncached(surrogate, eva)
        self._eva_memo[key] = tuple(targets)
        return targets

    def eva_targets_batch(self, sources, eva) -> List[List[int]]:
        """Batched :meth:`eva_targets` over a column of source entities.

        Memo hit/miss totals match per-source calls; misses traverse the
        store through one :meth:`MapperStore.traverse_eva_batch` call
        (``ordered by`` EVAs fall back to the per-source path, which owns
        the range-class sort)."""
        self._sync()
        memo = self._eva_memo
        eva_id = id(eva)
        results: List = [None] * len(sources)
        hits = misses = 0
        pending = {}                 # source -> positions awaiting targets
        for position, source in enumerate(sources):
            if source is DUMMY or is_null(source):
                results[position] = []
                continue
            cached = memo.get((eva_id, source))
            if cached is not None:
                hits += 1
                results[position] = list(cached)
            elif source in pending:
                hits += 1
                pending[source].append(position)
            else:
                misses += 1
                pending[source] = [position]
        if hits:
            self.perf.bump("memo_hits", hits)
        if misses:
            self.perf.bump("memo_misses", misses)
        if pending:
            if eva.options.ordered_by is not None:
                resolved = {source: self._eva_targets_uncached(source, eva)
                            for source in pending}
            else:
                store = self.store
                owner = eva.owner_name
                holders = [source for source in pending
                           if store.has_role(source, owner)]
                traversed = (store.traverse_eva_batch(holders, eva)
                             if holders else {})
                resolved = {source: traversed.get(source, [])
                            for source in pending}
            for source, targets in resolved.items():
                memo[(eva_id, source)] = tuple(targets)
                for position in pending[source]:
                    results[position] = list(targets)
        return results

    def _eva_targets_uncached(self, surrogate, eva) -> List[int]:
        if not self.store.has_role(surrogate, eva.owner_name):
            return []
        targets = self.store.eva_targets(surrogate, eva)
        order_attr_name = eva.options.ordered_by
        if order_attr_name is not None and len(targets) > 1:
            order_attr = self.schema.get_class(
                eva.range_class_name).attribute(order_attr_name)

            def key(target):
                value = self.dva(target, order_attr)
                if is_null(value):
                    return (0, 0, target)
                return (1, value, target)
            targets = sorted(targets, key=key)
        return targets

    def has_role(self, surrogate, class_name: str):
        if surrogate is DUMMY or is_null(surrogate):
            return None  # unknown, not false: dummy has no identity
        return self.store.has_role(surrogate, class_name)

    # -- Transitive closure ------------------------------------------------------------

    def transitive(self, surrogate, evas) -> List[Tuple[int, int]]:
        """Breadth-first transitive closure of an EVA hop chain.

        ``evas`` is one EVA or a list applied in order (§4.7: "any cyclic
        chain of EVAs"; the single reflexive EVA is a chain one element
        long).  Returns (target, level) pairs, level 1 for the first
        composite hop; the start entity is excluded and cycles are cut.
        """
        if surrogate is DUMMY or is_null(surrogate):
            return []
        chain = evas if isinstance(evas, (list, tuple)) else [evas]
        mats = self.store.materialized
        if mats is not None and self.store.current_snapshot() is None:
            served = mats.serve_closure(chain, surrogate)
            if served is not None:
                return list(served)

        def hop(entities):
            current = list(entities)
            for eva in chain:
                step = []
                for entity in current:
                    step.extend(self.eva_targets(entity, eva))
                current = step
            return current

        results: List[Tuple[int, int]] = []
        visited = {surrogate}
        frontier = [surrogate]
        level = 0
        while frontier:
            level += 1
            next_frontier: List[int] = []
            for target in hop(frontier):
                if target in visited:
                    continue
                visited.add(target)
                results.append((target, level))
                next_frontier.append(target)
            frontier = next_frontier
        return results

    # -- Domains -----------------------------------------------------------------------

    def class_extent(self, class_name: str) -> Iterator[int]:
        return self.store.scan_class(class_name)

    def node_domain(self, node, env):
        """The domain of a non-root query-tree node given its parent's
        instance in ``env`` (paper §4.5: "every other domain is defined
        based on an attribute and a given instance of the range variable of
        its parent node").

        Results are materialized as tuples keyed by (node, parent
        instance): within one query the same subtree domain — notably a
        hoisted TYPE 2 existential re-entered per outer row — is
        enumerated once.  Callers must not mutate the result.
        """
        parent_instance = env[node.parent.id]
        self._sync()
        key = (getattr(node, "domain_key", node.id), parent_instance)
        cached = self._domain_memo.get(key)
        if cached is not None:
            self.perf.bump("memo_hits")
            return cached
        self.perf.bump("memo_misses")
        self.perf.bump("domain_enumerations")
        trace = self.store.trace
        if trace is not None and trace.enabled:
            trace.count("engine.domain_enumerations")
        domain = tuple(self._node_domain_uncached(node, parent_instance))
        self._domain_memo[key] = domain
        return domain

    def node_domains_batch(self, node, parent_instances) -> List[tuple]:
        """Batched :meth:`node_domain` over a column of parent instances.

        The caller passes the parent node's slot values directly (no env
        dicts).  Hit/miss, ``domain_enumerations`` and trace totals match
        per-instance calls; plain (non-transitive) EVA nodes resolve their
        misses through :meth:`eva_targets_batch`, everything else falls
        back to the per-instance enumerator."""
        self._sync()
        memo = self._domain_memo
        node_id = getattr(node, "domain_key", node.id)
        domains: List = [None] * len(parent_instances)
        hits = 0
        pending = {}           # parent instance -> positions awaiting domain
        for position, parent_instance in enumerate(parent_instances):
            cached = memo.get((node_id, parent_instance))
            if cached is not None:
                hits += 1
                domains[position] = cached
            elif parent_instance in pending:
                hits += 1
                pending[parent_instance].append(position)
            else:
                pending[parent_instance] = [position]
        if hits:
            self.perf.bump("memo_hits", hits)
        misses = len(pending)
        if misses:
            self.perf.bump("memo_misses", misses)
            self.perf.bump("domain_enumerations", misses)
            trace = self.store.trace
            if trace is not None and trace.enabled:
                trace.count("engine.domain_enumerations", misses)
            missed = list(pending)
            if node.kind == "eva" and not node.transitive:
                sources = [self._unwrap(node.parent, instance)
                           for instance in missed]
                resolved = self.eva_targets_batch(sources, node.eva)
            else:
                resolved = [self._node_domain_uncached(node, instance)
                            for instance in missed]
            for parent_instance, targets in zip(missed, resolved):
                domain = tuple(targets)
                memo[(node_id, parent_instance)] = domain
                for position in pending[parent_instance]:
                    domains[position] = domain
        return domains

    def _node_domain_uncached(self, node, parent_instance) -> List:
        if node.kind == "eva":
            source = self._unwrap(node.parent, parent_instance)
            if node.transitive:
                return self.transitive(source,
                                       node.transitive_evas or node.eva)
            targets = self.eva_targets(source, node.eva)
            if node.as_class:
                # Role conversion: the variable still ranges over all
                # targets; attribute access through the converted view
                # yields NULL for entities lacking the role.
                return targets
            return targets
        if node.kind == "mvdva":
            source = self._unwrap(node.parent, parent_instance)
            return self.mv_values(source, node.mv_attr)
        raise ValueError(f"cannot enumerate domain of {node!r}")

    def root_domain(self, node) -> Iterator[int]:
        return self.class_extent(node.class_name)

    @staticmethod
    def _unwrap(node, instance):
        """Instance value of a node (transitive instances are (value, level))."""
        if node is not None and node.kind == "eva" and node.transitive \
                and isinstance(instance, tuple):
            return instance[0]
        return instance

    @staticmethod
    def instance_value(node, instance):
        if node.kind == "eva" and node.transitive and isinstance(instance, tuple):
            return instance[0]
        return instance
