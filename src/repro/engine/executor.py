"""The Retrieve executor: the paper's nested-loop semantics program (§4.5).

For a labelled query tree, the executor runs::

    for each X1 in domain(X1)
      for each X2 in domain(X2)
        ...
          for each Xm in domain(Xm)       -- TYPE 1 and TYPE 3, DF order
            such that
              for some Xm+1 ... Xn        -- TYPE 2, existential
                if <selection> then print <target list>

with the two refinements the paper spells out: the domain of a TYPE 3
variable is never empty (an all-null dummy instance is supplied), and the
loop nesting order *is* the output order (perspective-implied ordering).

Access paths for the root variables come from a plan object; the default
plan scans class extents, and the optimizer can substitute index lookups
(it must then account for the ordering change, §5.1).
"""

from __future__ import annotations

from decimal import Decimal
from typing import Dict, List, Optional, Tuple

from repro.dml.ast import Aggregate, Literal, Path, RetrieveQuery
from repro.dml.qualification import Qualifier
from repro.dml.query_tree import TYPE2, TYPE3, QTNode, QueryTree
from repro.engine.access import DUMMY, EntityAccessor
from repro.engine.expressions import ExpressionEvaluator
from repro.engine.output import ResultSet, build_structured
from repro.types.dates import SimDate, SimTime
from repro.types.tvl import NULL, UNKNOWN, is_null


class QueryExecutor:
    """Executes resolved Retrieve queries against a Mapper store."""

    def __init__(self, store, qualifier: Optional[Qualifier] = None):
        self.store = store
        self.schema = store.schema
        self.qualifier = qualifier or Qualifier(store.schema)
        self.accessor = EntityAccessor(store)
        self.evaluator = ExpressionEvaluator(self.accessor)

    # -- Public API -----------------------------------------------------------------

    def execute(self, query: RetrieveQuery, plan=None) -> ResultSet:
        tree = self.qualifier.resolve_retrieve(query)
        return self.run(query, tree, plan)

    def run(self, query: RetrieveQuery, tree: QueryTree, plan=None
            ) -> ResultSet:
        """Execute a query whose tree is already resolved (optimizer path).

        With tracing attached and enabled, the run is wrapped in an
        ``execute`` span carrying per-node EXPLAIN ANALYZE counters
        (§4.5 TYPE label, loop entries, instances bound) — otherwise the
        only added work is this None test.
        """
        trace = self.store.trace
        if trace is None or not trace.enabled:
            return self._run(query, tree, plan, None, None)
        with trace.span("execute", layer="executor") as span:
            stats: Dict[int, List[int]] = {}
            result = self._run(query, tree, plan, span, stats)
            return result

    def _run(self, query: RetrieveQuery, tree: QueryTree, plan,
             span, stats) -> ResultSet:
        self.accessor.begin_query()
        perf_before = self.store.perf.snapshot()
        roots = list(tree.roots)
        reordered = False
        if plan is not None and getattr(plan, "root_order", None):
            by_var = {root.var_name: root for root in roots}
            planned = [by_var[name] for name in plan.root_order]
            reordered = planned != roots
            roots = planned
        loop_nodes: List[QTNode] = []
        for root in roots:
            loop_nodes.extend(tree.loop_nodes(root))
        original_nodes: List[QTNode] = []
        for root in tree.roots:
            original_nodes.extend(tree.loop_nodes(root))
        columns = [item.label or item.expression.describe()
                   for item in query.targets]

        snapshots: List[Tuple[tuple, tuple]] = []
        rows: List[tuple] = []
        order_keys: List[tuple] = []
        env: Dict = {}

        needs_order = bool(query.order_by)
        structured_mode = query.mode == "structure"
        perspective_keys: List[tuple] = []

        # The TYPE 2 existential subtrees are a property of the labelled
        # tree, not of the enumerated row: collect them once per query
        # instead of once per enumerated combination.
        exists_nodes = self._exists_nodes(loop_nodes)

        for _ in self._enumerate_loops(loop_nodes, 0, env, tree, plan,
                                       stats):
            if not self._selection_holds(query.where, exists_nodes, env,
                                         stats):
                continue
            row = tuple(self._render(self.evaluator.value(item.expression, env))
                        for item in query.targets)
            rows.append(row)
            if needs_order:
                order_keys.append(tuple(
                    _sort_key(self.evaluator.value(order.expression, env),
                              order.descending)
                    for order in query.order_by))
            if reordered:
                # Key for restoring the perspective-implied output order
                # (the §5.1 semantics-preservation sort the plan paid for).
                perspective_keys.append(tuple(
                    _instance_key(env.get(node.id))
                    for node in original_nodes))
            if structured_mode:
                snapshots.append(
                    (tuple(env.get(node.id) for node in original_nodes), row))

        if reordered:
            permutation = sorted(range(len(rows)),
                                 key=lambda i: perspective_keys[i])
            rows = [rows[i] for i in permutation]
            if needs_order:
                order_keys = [order_keys[i] for i in permutation]
            if structured_mode:
                snapshots = [snapshots[i] for i in permutation]

        if needs_order:
            paired = sorted(
                zip(order_keys, range(len(rows))),
                key=lambda pair: pair[0])
            rows = [rows[i] for _, i in paired]
            if structured_mode:
                snapshots = [snapshots[i] for _, i in paired]

        if query.distinct:
            rows = _distinct(rows)

        structured = None
        if structured_mode:
            node_targets = self._targets_by_node(query, tree, original_nodes)
            structured = build_structured(original_nodes, node_targets,
                                          columns, snapshots)
        formats = []
        if structured_mode:
            formats = [node.describe() for node in original_nodes]
        result = ResultSet(columns, rows, structured, formats,
                           perf=self.store.perf.delta(perf_before))
        if span is not None:
            span.attrs["output_rows"] = len(rows)
            span.attrs["nodes"] = self._node_records(tree, plan, stats)
            result.node_stats = stats
        return result

    def _node_records(self, tree: QueryTree, plan, stats) -> List[Dict]:
        """Per-node EXPLAIN ANALYZE records, DF order over the whole tree
        (TYPE 2 existential nodes included)."""
        records: List[Dict] = []
        estimates = getattr(plan, "node_estimates", None) or {}
        trace = self.store.trace

        def visit(node: QTNode, depth: int) -> None:
            entry = stats.get(node.id, (0, 0))
            label = f"TYPE {node.label}" if node.label else "?"
            records.append({
                "node_id": node.id,
                "describe": node.describe(),
                "label": label,
                "depth": depth,
                "est_rows": estimates.get(node.id),
                "actual_rows": entry[1],
                "loops": entry[0],
            })
            if trace is not None and trace.enabled:
                trace.histograms.observe_rows(label, entry[1])
            for child in node.children.values():
                visit(child, depth + 1)

        for root in tree.roots:
            visit(root, 0)
        return records

    def select_entities(self, class_name: str, where) -> List[int]:
        """Entities of ``class_name`` satisfying ``where`` (update/VERIFY
        path: single perspective, existential TYPE 2 semantics).

        When the predicate carries an equality conjunct on an indexed DVA
        of the root class, the candidates come from the index instead of a
        full extent scan (sorted by surrogate, matching the optimizer's
        semantics-preservation rule for index paths)."""
        self.accessor.begin_query()
        tree = self.qualifier.resolve_selection(class_name, where)
        root = tree.roots[0]
        exists_nodes = self._exists_nodes([root])
        selected: List[int] = []
        env: Dict = {}
        for surrogate in self._selection_domain(root, where):
            env[root.id] = surrogate
            if self._selection_holds(where, exists_nodes, env):
                selected.append(surrogate)
        return selected

    def _selection_domain(self, root: QTNode, where):
        """Candidate surrogates for a selection scan: the first equality
        conjunct on an indexed DVA wins, else the full class extent."""
        if where is not None:
            from repro.optimizer.strategies import equality_conjuncts
            for attr_name, value in equality_conjuncts(where, root):
                if self.store.has_index_on(root.class_name, attr_name):
                    self.store.perf.bump("index_selections")
                    return sorted(self.store.find_by_dva(
                        root.class_name, attr_name, value))
        return self.accessor.class_extent(root.class_name)

    def predicate_holds(self, tree: QueryTree, where, surrogate) -> bool:
        """Evaluate a pre-resolved single-perspective predicate for one
        entity (VERIFY assertions)."""
        root = tree.roots[0]
        env = {root.id: surrogate}
        return self._selection_holds(where, self._exists_nodes([root]), env)

    # -- Loop enumeration ----------------------------------------------------------

    def _enumerate_loops(self, loop_nodes: List[QTNode], index: int,
                         env: Dict, tree: QueryTree, plan, stats=None):
        """Nested iteration over TYPE 1/TYPE 3 variables in DF order.

        ``stats`` (tracing only) maps node id -> [loop entries, instances
        bound]; the untraced path is a separate loop so the per-instance
        bookkeeping costs nothing when tracing is off.
        """
        if index == len(loop_nodes):
            yield env
            return
        node = loop_nodes[index]
        if node.kind == "root":
            domain = self._root_domain(node, plan)
        else:
            domain = self.accessor.node_domain(node, env)

        produced = False
        if stats is None:
            for instance in domain:
                produced = True
                env[node.id] = instance
                yield from self._enumerate_loops(loop_nodes, index + 1, env,
                                                 tree, plan)
        else:
            entry = stats.setdefault(node.id, [0, 0])
            entry[0] += 1
            for instance in domain:
                produced = True
                entry[1] += 1
                env[node.id] = instance
                yield from self._enumerate_loops(loop_nodes, index + 1, env,
                                                 tree, plan, stats)
        if not produced and node.label == TYPE3:
            # §4.5: "the domain of TYPE 3 variables will never be empty
            # (when empty, adding a dummy instance all of whose attributes
            # are null will achieve this)".
            env[node.id] = DUMMY
            yield from self._enumerate_loops(loop_nodes, index + 1, env,
                                             tree, plan, stats)
        env.pop(node.id, None)

    def _root_domain(self, node: QTNode, plan):
        if plan is not None:
            iterator = plan.root_iterator(node, self)
            if iterator is not None:
                return iterator
        return self.accessor.root_domain(node)

    # -- Selection ------------------------------------------------------------------

    def _selection_holds(self, where, exists_nodes: List[QTNode],
                         env: Dict, stats=None) -> bool:
        """The "such that for some Xm+1..Xn" clause: existential
        enumeration of TYPE 2 subtrees, then the 3-valued test."""
        if where is None:
            return True
        if not exists_nodes:
            return self.evaluator.is_true(where, env)
        return self._exists(exists_nodes, 0, where, env, stats)

    def _exists_nodes(self, loop_nodes: List[QTNode]) -> List[QTNode]:
        """All TYPE 2 existential subtree nodes below the loop variables,
        in DF order — a per-query constant."""
        exists_nodes: List[QTNode] = []
        for node in loop_nodes:
            exists_nodes.extend(self._type2_subtree(node))
        return exists_nodes

    def _type2_subtree(self, node: QTNode) -> List[QTNode]:
        result: List[QTNode] = []

        def collect(candidate: QTNode):
            result.append(candidate)
            for child in candidate.children.values():
                collect(child)

        for child in node.children.values():
            if child.label == TYPE2:
                collect(child)
        return result

    def _exists(self, nodes: List[QTNode], index: int, where, env: Dict,
                stats=None) -> bool:
        if index == len(nodes):
            return self.evaluator.is_true(where, env)
        node = nodes[index]
        if stats is None:
            for instance in self.accessor.node_domain(node, env):
                env[node.id] = instance
                if self._exists(nodes, index + 1, where, env):
                    env.pop(node.id, None)
                    return True
        else:
            entry = stats.setdefault(node.id, [0, 0])
            entry[0] += 1
            for instance in self.accessor.node_domain(node, env):
                entry[1] += 1
                env[node.id] = instance
                if self._exists(nodes, index + 1, where, env, stats):
                    env.pop(node.id, None)
                    return True
        env.pop(node.id, None)
        return False

    # -- Output helpers ----------------------------------------------------------------

    def _targets_by_node(self, query: RetrieveQuery, tree: QueryTree,
                         loop_nodes: List[QTNode]) -> Dict[int, List[int]]:
        """Associate each target item with the loop node its value varies
        with (for structured output formats)."""
        by_node: Dict[int, List[int]] = {}
        loop_ids = {node.id for node in loop_nodes}
        first_root = tree.roots[0]
        for index, item in enumerate(query.targets):
            node = self._home_node(item.expression, first_root, loop_ids)
            by_node.setdefault(node.id, []).append(index)
        return by_node

    def _home_node(self, expression, first_root: QTNode, loop_ids) -> QTNode:
        if isinstance(expression, Path):
            node = expression.value_node
            while node is not None and node.id not in loop_ids:
                node = node.parent
            return node or first_root
        if isinstance(expression, Aggregate):
            if expression.anchor_node is not None \
                    and expression.anchor_node.id in loop_ids:
                return expression.anchor_node
            return first_root
        if isinstance(expression, Literal):
            return first_root
        # Composite expressions: attach to the deepest referenced loop node.
        deepest = first_root
        for path in _paths_of(expression):
            node = path.value_node
            while node is not None and node.id not in loop_ids:
                node = node.parent
            if node is not None and node.depth >= deepest.depth:
                deepest = node
        return deepest

    @staticmethod
    def _render(value):
        """Row values: unwrap transitive instances, keep NULL as-is."""
        if value is UNKNOWN:
            return NULL
        return value


def _paths_of(expression):
    from repro.dml.ast import Binary, FunctionCall, IsaTest, Quantified, Unary
    if isinstance(expression, Path):
        yield expression
    elif isinstance(expression, Binary):
        yield from _paths_of(expression.left)
        yield from _paths_of(expression.right)
    elif isinstance(expression, Unary):
        yield from _paths_of(expression.operand)
    elif isinstance(expression, IsaTest):
        yield from _paths_of(expression.entity)
    elif isinstance(expression, FunctionCall):
        for arg in expression.args:
            yield from _paths_of(arg)
    elif isinstance(expression, Quantified):
        yield from _paths_of(expression.argument)
    elif isinstance(expression, Aggregate):
        if expression.outer_path is not None:
            yield expression.outer_path


_TYPE_RANK = {bool: 0, int: 1, float: 1, Decimal: 1, str: 2,
              SimDate: 3, SimTime: 4, tuple: 5}


class _Reversed:
    """Wrapper inverting sort order for DESC keys."""

    __slots__ = ("key",)

    def __init__(self, key):
        self.key = key

    def __lt__(self, other):
        return other.key < self.key

    def __eq__(self, other):
        return other.key == self.key


def _instance_key(instance):
    """Total order over loop-node instances for the restore sort."""
    if instance is None:
        return (0, 0)
    if isinstance(instance, tuple):      # transitive (value, level)
        instance = instance[0]
    if isinstance(instance, int):
        return (1, instance)
    return (2, str(instance))


def _sort_key(value, descending: bool):
    """Total order over mixed-type values; NULL sorts first (last if DESC)."""
    if is_null(value) or value is UNKNOWN:
        key = (0, 0)
    else:
        rank = _TYPE_RANK.get(type(value), 9)
        if isinstance(value, Decimal):
            value = float(value)
        key = (1, rank, value)
    return _Reversed(key) if descending else key


def _distinct(rows: List[tuple]) -> List[tuple]:
    seen = set()
    unique: List[tuple] = []
    for row in rows:
        try:
            marker = row
            if marker in seen:
                continue
            seen.add(marker)
        except TypeError:
            if row in unique:
                continue
        unique.append(row)
    return unique
