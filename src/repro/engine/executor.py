"""The Retrieve executor: a thin driver over the physical operator DAG.

The paper's nested-loop semantics program (§4.5)::

    for each X1 in domain(X1)
      for each X2 in domain(X2)
        ...
          for each Xm in domain(Xm)       -- TYPE 1 and TYPE 3, DF order
            such that
              for some Xm+1 ... Xn        -- TYPE 2, existential
                if <selection> then print <target list>

is no longer interpreted recursively here.  The labelled query tree is
lowered (:mod:`repro.optimizer.physical_plan`) into a chain of batched
Volcano-style operators (:mod:`repro.engine.operators`) — Scan,
EVATraverse/OuterTraverse, Filter/Semi/AntiSemi, Aggregate, Project,
Sort, Distinct — and this module merely verifies the DAG (SIM205-207,
fail closed), drains it, and assembles the :class:`ResultSet`.

The two §4.5 refinements live in the operators now: the domain of a
TYPE 3 variable is never empty (OuterTraverse pads with the all-null
dummy instance), and the loop nesting order *is* the output order
(Sort restores it when the plan reordered the roots, §5.1).

Access paths for the root variables come from a plan object; the default
plan scans class extents, and the optimizer can substitute index lookups
(it must then account for the ordering change, §5.1).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.analysis import raise_for_errors, verify_physical
from repro.dml.ast import Aggregate, Literal, Path, RetrieveQuery
from repro.dml.qualification import Qualifier
from repro.dml.query_tree import QTNode, QueryTree
from repro.engine.access import EntityAccessor
from repro.engine.expressions import ExpressionEvaluator
from repro.engine.operators import (
    DEFAULT_BATCH_SIZE,
    ExecContext,
    _Reversed,
    _instance_key,
    _sort_key,
    selection_holds,
    validate_batch_size,
)
from repro.engine.output import ResultSet, build_structured
from repro.engine.parallel import DEFAULT_PARALLELISM, validate_parallelism

__all__ = ["QueryExecutor", "_Reversed", "_instance_key", "_sort_key"]


class QueryExecutor:
    """Executes resolved Retrieve queries against a Mapper store."""

    def __init__(self, store, qualifier: Optional[Qualifier] = None,
                 batch_size: int = DEFAULT_BATCH_SIZE,
                 parallelism: int = DEFAULT_PARALLELISM):
        self.store = store
        self.schema = store.schema
        self.qualifier = qualifier or Qualifier(store.schema)
        self.accessor = EntityAccessor(store)
        self.evaluator = ExpressionEvaluator(self.accessor)
        self.batch_size = validate_batch_size(batch_size)
        self.parallelism = validate_parallelism(parallelism)

    # -- Public API -----------------------------------------------------------------

    def execute(self, query: RetrieveQuery, plan=None) -> ResultSet:
        tree = self.qualifier.resolve_retrieve(query)
        return self.run(query, tree, plan)

    def run(self, query: RetrieveQuery, tree: QueryTree, plan=None
            ) -> ResultSet:
        """Execute a query whose tree is already resolved (optimizer path).

        With tracing attached and enabled, the run is wrapped in an
        ``execute`` span carrying per-node EXPLAIN ANALYZE counters
        (§4.5 TYPE label, loop entries, instances bound) plus one record
        per physical operator — otherwise the only added work is this
        None test.
        """
        trace = self.store.trace
        if trace is None or not trace.enabled:
            return self._run(query, tree, plan, None, None)
        with trace.span("execute", layer="executor") as span:
            stats: Dict[int, List[int]] = {}
            result = self._run(query, tree, plan, span, stats)
            return result

    def _run(self, query: RetrieveQuery, tree: QueryTree, plan,
             span, stats) -> ResultSet:
        # Imported lazily: the lowering module imports the operator
        # algebra from this package, so a module-level import here would
        # be circular for entry points that load the optimizer first.
        from repro.optimizer.physical_plan import lower_plan
        self.accessor.begin_query()
        perf_before = self.store.perf.snapshot()

        physical = lower_plan(query, tree, plan, self)
        # Fail closed: a DAG that breaks the structural contract between
        # the labelled tree and the operators must never run.
        raise_for_errors(verify_physical(self.schema, tree, physical))

        ctx = ExecContext(self, physical, stats)
        structured_mode = query.mode == "structure"
        rows: List[tuple] = []
        snapshots = []
        for batch in physical.root.run(ctx):
            for out_row in batch:
                if not out_row.duplicate:
                    rows.append(out_row.values)
                if structured_mode:
                    snapshots.append((out_row.snapshot, out_row.values))

        columns = [item.label or item.expression.describe()
                   for item in query.targets]
        original_nodes: List[QTNode] = []
        for root in tree.roots:
            original_nodes.extend(tree.loop_nodes(root))

        structured = None
        formats: List[str] = []
        if structured_mode:
            node_targets = self._targets_by_node(query, tree, original_nodes)
            structured = build_structured(original_nodes, node_targets,
                                          columns, snapshots)
            formats = [node.describe() for node in original_nodes]

        perf = self.store.perf
        operators = physical.operators
        perf.bump("batches_dispatched",
                  sum(operator.batches for operator in operators))
        perf.bump("batch_rows",
                  sum(operator.rows_out for operator in operators))
        result = ResultSet(columns, rows, structured, formats,
                           perf=perf.delta(perf_before))
        if span is not None:
            span.attrs["output_rows"] = len(rows)
            span.attrs["nodes"] = self._node_records(tree, plan, stats)
            span.attrs["operators"] = physical.operator_records()
            result.node_stats = stats
        return result

    def _node_records(self, tree: QueryTree, plan, stats) -> List[Dict]:
        """Per-node EXPLAIN ANALYZE records, DF order over the whole tree
        (TYPE 2 existential nodes included)."""
        records: List[Dict] = []
        estimates = getattr(plan, "node_estimates", None) or {}
        trace = self.store.trace

        def visit(node: QTNode, depth: int) -> None:
            entry = stats.get(node.id, (0, 0))
            label = f"TYPE {node.label}" if node.label else "?"
            records.append({
                "node_id": node.id,
                "describe": node.describe(),
                "label": label,
                "depth": depth,
                "est_rows": estimates.get(node.id),
                "actual_rows": entry[1],
                "loops": entry[0],
            })
            if trace is not None and trace.enabled:
                trace.histograms.observe_rows(label, entry[1])
            for child in node.children.values():
                visit(child, depth + 1)

        for root in tree.roots:
            visit(root, 0)
        return records

    def select_entities(self, class_name: str, where) -> List[int]:
        """Entities of ``class_name`` satisfying ``where`` (update/VERIFY
        path: single perspective, existential TYPE 2 semantics).

        When the predicate carries an equality conjunct on an indexed DVA
        of the root class — or a range conjunct on an *ordered*-indexed
        DVA — the candidates come from the index instead of a full extent
        scan (sorted by surrogate, matching the optimizer's
        semantics-preservation rule for index paths).  The selection runs
        through the same operator algebra as queries: a root Scan feeding
        the shared Filter/Semi/AntiSemi stage."""
        from repro.optimizer.physical_plan import lower_selection
        self.accessor.begin_query()
        tree = self.qualifier.resolve_selection(class_name, where)
        root = tree.roots[0]
        domain = self._selection_domain(root, where)
        physical = lower_selection(tree, where, domain)
        ctx = ExecContext(self, physical)
        slot = physical.slots[root.id]
        selected: List[int] = []
        for batch in physical.root.run(ctx):
            selected.extend(row[slot] for row in batch)
        return selected

    def _selection_domain(self, root: QTNode, where):
        """Index candidates for a selection scan, or None for the full
        class extent: the first equality conjunct on an indexed DVA wins,
        then the first range conjunct on an ordered-indexed DVA."""
        if where is None:
            return None
        from repro.optimizer.strategies import (equality_conjuncts,
                                                range_conjuncts)
        for attr_name, value in equality_conjuncts(where, root):
            if self.store.has_index_on(root.class_name, attr_name):
                self.store.perf.bump("index_selections")
                return sorted(self.store.find_by_dva(
                    root.class_name, attr_name, value))
        for attr_name, low, high, include_low, include_high \
                in range_conjuncts(where, root):
            if self.store.has_ordered_index_on(root.class_name, attr_name):
                self.store.perf.bump("index_selections")
                return sorted(self.store.find_by_dva_range(
                    root.class_name, attr_name, low, high,
                    include_low, include_high))
        return None

    def predicate_holds(self, tree: QueryTree, where, surrogate) -> bool:
        """Evaluate a pre-resolved single-perspective predicate for one
        entity (VERIFY assertions)."""
        from repro.optimizer.physical_plan import exists_subtrees
        root = tree.roots[0]
        env = {root.id: surrogate}
        return selection_holds(self.evaluator, self.accessor, where,
                               exists_subtrees([root]), env)

    # -- Output helpers ----------------------------------------------------------------

    def _targets_by_node(self, query: RetrieveQuery, tree: QueryTree,
                         loop_nodes: List[QTNode]) -> Dict[int, List[int]]:
        """Associate each target item with the loop node its value varies
        with (for structured output formats)."""
        by_node: Dict[int, List[int]] = {}
        loop_ids = {node.id for node in loop_nodes}
        first_root = tree.roots[0]
        for index, item in enumerate(query.targets):
            node = self._home_node(item.expression, first_root, loop_ids)
            by_node.setdefault(node.id, []).append(index)
        return by_node

    def _home_node(self, expression, first_root: QTNode, loop_ids) -> QTNode:
        if isinstance(expression, Path):
            node = expression.value_node
            while node is not None and node.id not in loop_ids:
                node = node.parent
            return node or first_root
        if isinstance(expression, Aggregate):
            if expression.anchor_node is not None \
                    and expression.anchor_node.id in loop_ids:
                return expression.anchor_node
            return first_root
        if isinstance(expression, Literal):
            return first_root
        # Composite expressions: attach to the deepest referenced loop node.
        deepest = first_root
        for path in _paths_of(expression):
            node = path.value_node
            while node is not None and node.id not in loop_ids:
                node = node.parent
            if node is not None and node.depth >= deepest.depth:
                deepest = node
        return deepest


def _paths_of(expression):
    from repro.dml.ast import Binary, FunctionCall, IsaTest, Quantified, Unary
    if isinstance(expression, Path):
        yield expression
    elif isinstance(expression, Binary):
        yield from _paths_of(expression.left)
        yield from _paths_of(expression.right)
    elif isinstance(expression, Unary):
        yield from _paths_of(expression.operand)
    elif isinstance(expression, IsaTest):
        yield from _paths_of(expression.entity)
    elif isinstance(expression, FunctionCall):
        for arg in expression.args:
            yield from _paths_of(arg)
    elif isinstance(expression, Quantified):
        yield from _paths_of(expression.argument)
    elif isinstance(expression, Aggregate):
        if expression.outer_path is not None:
            yield expression.outer_path
