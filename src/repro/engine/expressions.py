"""Expression evaluation with 3-valued logic (paper §4.9).

The evaluator works against an environment mapping query-tree node ids to
current instances.  Values are Python scalars, :data:`NULL`, or entity
surrogates (for entity-ended paths); truth values are True/False/UNKNOWN.

Aggregate functions and quantifiers enumerate their own scoped subtrees
(binding broken, §4.4) through the shared scope-enumeration helper.
"""

from __future__ import annotations

import re
from decimal import Decimal
from typing import Dict, Iterable, List

from repro.errors import ExecutionError, TypeMismatchError
from repro.dml.ast import (
    Aggregate,
    Binary,
    FunctionCall,
    IsaTest,
    Literal,
    Path,
    Quantified,
    Unary,
)
from repro.engine.access import DUMMY, EntityAccessor
from repro.types.dates import SimDate, SimTime
from repro.types.tvl import NULL, UNKNOWN, is_null, tvl_and, tvl_not, tvl_or


class ExpressionEvaluator:
    """Evaluates resolved DML expressions in a node environment."""

    def __init__(self, accessor: EntityAccessor):
        self.accessor = accessor

    # -- Scope enumeration ---------------------------------------------------------

    def enumerate_scope(self, nodes, env: Dict) -> Iterable[Dict]:
        """Enumerate assignments of the scoped ``nodes`` (parents first),
        yielding the shared mutated ``env``.  Consumers must finish with
        the env before advancing the generator."""
        if not nodes:
            yield env
            return

        def recurse(index: int):
            if index == len(nodes):
                yield env
                return
            node = nodes[index]
            if node.kind == "root":
                domain = self.accessor.root_domain(node)
            else:
                domain = self.accessor.node_domain(node, env)
            for instance in domain:
                env[node.id] = instance
                yield from recurse(index + 1)
            env.pop(node.id, None)

        yield from recurse(0)

    # -- Evaluation --------------------------------------------------------------------

    def value(self, expression, env: Dict):
        """Evaluate an expression to a value (which may be NULL/UNKNOWN)."""
        if isinstance(expression, Literal):
            return expression.value
        if isinstance(expression, Path):
            return self._path_value(expression, env)
        if isinstance(expression, Unary):
            return self._unary(expression, env)
        if isinstance(expression, Binary):
            return self._binary(expression, env)
        if isinstance(expression, IsaTest):
            return self._isa(expression, env)
        if isinstance(expression, Aggregate):
            return self._aggregate(expression, env)
        if isinstance(expression, FunctionCall):
            return self._function(expression, env)
        if isinstance(expression, Quantified):
            raise ExecutionError(
                "a quantifier may only appear as a comparison operand")
        raise ExecutionError(f"cannot evaluate {expression!r}")

    def truth(self, expression, env: Dict):
        """Evaluate an expression as a 3-valued truth value."""
        result = self.value(expression, env)
        if result is UNKNOWN or is_null(result):
            return UNKNOWN
        if isinstance(result, bool):
            return result
        described = (expression.describe()
                     if hasattr(expression, "describe") else repr(expression))
        raise TypeMismatchError(f"expression {described!r} is not boolean")

    def is_true(self, expression, env: Dict) -> bool:
        return self.truth(expression, env) is True

    # -- Paths ------------------------------------------------------------------------

    def _path_value(self, path: Path, env: Dict):
        node = path.value_node
        if node.id not in env:
            raise ExecutionError(
                f"range variable for {path.describe()!r} is not bound")
        instance = self.accessor.instance_value(node, env[node.id])
        if getattr(path, "derived", None) is not None:
            return self._derived_value(path, instance, env)
        if path.terminal_attr is None:
            # Entity-ended (or MV-DVA value) path.
            if instance is DUMMY:
                return NULL
            return instance
        return self.accessor.dva(instance, path.terminal_attr)

    def _derived_value(self, path: Path, instance, env: Dict):
        """Evaluate a derived attribute (paper §6) for one entity.

        The derived expression was resolved in a scope anchored at the
        path's value node; its value must be functionally determined by
        the entity (multiple distinct instances are an error)."""
        if instance is DUMMY or is_null(instance):
            return NULL
        values = []
        for _ in self.enumerate_scope(path.derived_scope_nodes, env):
            values.append(self.value(path.derived_expr, env))
        if not values:
            return NULL
        first = values[0]
        for other in values[1:]:
            if other != first:
                raise ExecutionError(
                    f"derived attribute {path.derived.name!r} is not "
                    f"single-valued for entity {instance}")
        return NULL if first is UNKNOWN else first

    def _isa(self, test: IsaTest, env: Dict):
        entity = self._path_value(test.entity, env)
        if is_null(entity):
            return UNKNOWN
        result = self.accessor.has_role(entity, test.class_name)
        return UNKNOWN if result is None else result

    # -- Operators ---------------------------------------------------------------------

    def _unary(self, expression: Unary, env: Dict):
        if expression.op == "not":
            return tvl_not(self.truth(expression.operand, env))
        operand = self.value(expression.operand, env)
        if is_null(operand):
            return NULL
        return -operand

    def _binary(self, expression: Binary, env: Dict):
        op = expression.op
        if op == "and":
            return tvl_and(self.truth(expression.left, env),
                           self.truth(expression.right, env))
        if op == "or":
            return tvl_or(self.truth(expression.left, env),
                          self.truth(expression.right, env))

        if isinstance(expression.right, Quantified):
            return self._quantified_comparison(expression, env)

        left = self.value(expression.left, env)
        right = self.value(expression.right, env)
        if op in ("+", "-", "*", "/"):
            return self._arithmetic(op, left, right)
        return _compare(op, left, right)

    def _arithmetic(self, op: str, left, right):
        if is_null(left) or is_null(right) or left is UNKNOWN or right is UNKNOWN:
            return NULL
        left, right = _numeric_pair(left, right)
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            if right == 0:
                return NULL
            if isinstance(left, int) and isinstance(right, int):
                return left / right if left % right else left // right
            return left / right
        raise ExecutionError(f"unknown arithmetic operator {op!r}")

    def _quantified_comparison(self, expression: Binary, env: Dict):
        """``x <op> some/all/no(inner)`` — fold the comparison over the
        quantified operand's scope (Kleene semantics; empty set: SOME is
        false, ALL and NO are true)."""
        quantified: Quantified = expression.right
        left = self.value(expression.left, env)
        op = expression.op
        exists = False
        result_some = False
        result_all = True
        for _ in self.enumerate_scope(quantified.scope_nodes, env):
            exists = True
            right = self.value(quantified.argument, env)
            outcome = _compare(op, left, right)
            result_some = tvl_or(result_some, outcome)
            result_all = tvl_and(result_all, outcome)
            if quantified.quantifier == "some" and result_some is True:
                break
            if quantified.quantifier == "all" and result_all is False:
                break
            if quantified.quantifier == "no" and result_some is True:
                break
        if quantified.quantifier == "some":
            return result_some if exists else False
        if quantified.quantifier == "all":
            return result_all if exists else True
        if quantified.quantifier == "no":
            return tvl_not(result_some) if exists else True
        raise ExecutionError(
            f"unknown quantifier {quantified.quantifier!r}")

    # -- Aggregates --------------------------------------------------------------------

    def _aggregate(self, aggregate: Aggregate, env: Dict):
        """Aggregate over the construct's own scope (paper §4.6).

        Nulls are skipped; COUNT of an empty scope is 0, the others are
        NULL.  DISTINCT reduces the multiset to a set first.
        """
        values: List = []
        for _ in self.enumerate_scope(aggregate.scope_nodes, env):
            value = self.value(aggregate.argument, env)
            if not is_null(value) and value is not UNKNOWN:
                values.append(value)
        if aggregate.distinct:
            seen = set()
            unique = []
            for value in values:
                if value not in seen:
                    seen.add(value)
                    unique.append(value)
            values = unique
        func = aggregate.func
        if func == "count":
            return len(values)
        if func == "sum":
            # SUM of an empty scope is 0, not null: the paper's V1
            # ("sum(credits of courses-enrolled) >= 12") must fail for a
            # student with no courses at all.
            return _sum(values) if values else 0
        if not values:
            return NULL
        if func == "avg":
            total = _sum(values)
            count = len(values)
            if isinstance(total, int):
                return total / count if total % count else total // count
            return total / count
        if func == "min":
            return min(values)
        if func == "max":
            return max(values)
        raise ExecutionError(f"unknown aggregate {func!r}")

    # -- Functions ---------------------------------------------------------------------

    def _function(self, call: FunctionCall, env: Dict):
        args = [self.value(a, env) for a in call.args]
        if any(is_null(a) or a is UNKNOWN for a in args):
            return NULL
        name = call.name
        if name == "abs":
            return abs(args[0])
        if name == "length":
            return len(args[0])
        if name == "upper":
            return str(args[0]).upper()
        if name == "lower":
            return str(args[0]).lower()
        if name in ("year", "month", "day"):
            date = args[0]
            if not isinstance(date, SimDate):
                raise TypeMismatchError(f"{name}() needs a date")
            return getattr(date, name)
        raise ExecutionError(f"unknown function {name!r}")


# ---------------------------------------------------------------- comparisons

_TYPE_ORDER = {bool: 0, int: 1, float: 1, Decimal: 1, str: 2,
               SimDate: 3, SimTime: 4}


def _numeric_pair(left, right):
    """Coerce a numeric operand pair to a common representation."""
    if isinstance(left, bool) or isinstance(right, bool):
        raise TypeMismatchError("booleans do not support arithmetic")
    if isinstance(left, float) and isinstance(right, Decimal):
        return left, float(right)
    if isinstance(left, Decimal) and isinstance(right, float):
        return float(left), right
    return left, right


def _compare(op: str, left, right):
    """3-valued comparison; NULL/UNKNOWN operands yield UNKNOWN."""
    if is_null(left) or is_null(right) or left is UNKNOWN or right is UNKNOWN:
        return UNKNOWN
    if op == "like":
        return _like(left, right)
    left, right = _comparable_pair(left, right)
    if op == "=":
        return left == right
    if op == "neq":
        return left != right
    try:
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        if op == ">=":
            return left >= right
    except TypeError as exc:
        raise TypeMismatchError(
            f"cannot compare {type(left).__name__} with "
            f"{type(right).__name__}") from exc
    raise ExecutionError(f"unknown comparison operator {op!r}")


def _comparable_pair(left, right):
    if isinstance(left, Decimal) and isinstance(right, float):
        return float(left), right
    if isinstance(left, float) and isinstance(right, Decimal):
        return left, float(right)
    # Date/time literals are written as strings in DML; coerce on compare.
    if isinstance(left, SimDate) and isinstance(right, str):
        return left, SimDate.parse(right)
    if isinstance(left, str) and isinstance(right, SimDate):
        return SimDate.parse(left), right
    if isinstance(left, SimTime) and isinstance(right, str):
        return left, SimTime.parse(right)
    if isinstance(left, str) and isinstance(right, SimTime):
        return SimTime.parse(left), right
    if isinstance(left, str) and isinstance(right, str):
        # SIM identifiers and symbolic values compare case-insensitively;
        # string data compares exactly.  We follow string-data semantics.
        return left, right
    return left, right


def _like(value, pattern):
    """SQL-flavoured pattern match: % = any run, _ = one character."""
    if not isinstance(value, str) or not isinstance(pattern, str):
        raise TypeMismatchError("LIKE needs string operands")
    regex = re.escape(pattern).replace("%", ".*").replace("_", ".")
    return re.fullmatch(regex, value, re.DOTALL) is not None


def _sum(values):
    total = values[0]
    for value in values[1:]:
        left, right = _numeric_pair(total, value)
        total = left + right
    return total
