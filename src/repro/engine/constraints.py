"""VERIFY constraint enforcement via trigger detection (paper §3.3).

"Based on the terms of the integrity condition, SIM will determine all
possible events that may cause this condition to be violated and will make
sure it does not happen.  Integrity constraints are handled by a trigger
detection / query enhancement mechanism."

Each VERIFY assertion is parsed once and analysed into a *term set*: the
attributes (EVAs count on both ends) and classes its truth can depend on.
A statement reports the keys it touched; only constraints whose term sets
intersect are re-checked, and only for the touched entities that are
members of the constraint's perspective class.

Checking modes:

* ``immediate`` (default) — checked at the end of every statement; a
  violation rolls the statement back;
* ``deferred`` — touches accumulate and are checked at COMMIT.

A violation is raised only when the assertion evaluates to *false*; an
unknown outcome (nulls) passes, following SQL CHECK semantics (the paper
leaves the null case unspecified).
"""

from __future__ import annotations

import threading
from typing import Dict, List, Set

from repro.errors import ConstraintViolation
from repro.dml.ast import (
    Aggregate,
    Binary,
    FunctionCall,
    IsaTest,
    Literal,
    Path,
    Quantified,
    Unary,
)
from repro.dml.parser import parse_expression
from repro.dml.qualification import Qualifier
from repro.dml.query_tree import QueryTree
from repro.engine.executor import QueryExecutor
from repro.schema.klass import VerifyConstraint


class _CompiledConstraint:
    """A parsed, resolved VERIFY assertion with its trigger term set."""

    def __init__(self, constraint: VerifyConstraint, qualifier: Qualifier):
        self.constraint = constraint
        self.expression = parse_expression(constraint.assertion_text)
        self.tree: QueryTree = qualifier.resolve_selection(
            constraint.class_name, self.expression)
        self.terms: Set[tuple] = {("class", constraint.class_name)}
        self._collect_terms(self.expression)
        #: every traversal node of the assertion (main tree and scoped),
        #: used to propagate touched entities back to the perspective
        self.chain_nodes = self._collect_chain_nodes(self.expression)

    def _collect_chain_nodes(self, expression) -> list:
        nodes = []

        def walk(expr):
            if isinstance(expr, Path):
                nodes.extend(expr.chain_nodes)
            elif isinstance(expr, Binary):
                walk(expr.left)
                walk(expr.right)
            elif isinstance(expr, Unary):
                walk(expr.operand)
            elif isinstance(expr, (Aggregate, Quantified)):
                walk(expr.argument)
                if isinstance(expr, Aggregate) and expr.outer_path:
                    walk(expr.outer_path)
                nodes.extend(n for n in expr.scope_nodes
                             if n.kind != "root")
            elif isinstance(expr, IsaTest):
                walk(expr.entity)
            elif isinstance(expr, FunctionCall):
                for arg in expr.args:
                    walk(arg)
        walk(expression)
        return nodes

    def _collect_terms(self, expression) -> None:
        if isinstance(expression, Path):
            for node in expression.chain_nodes:
                if node.kind == "eva":
                    eva = node.eva
                    self.terms.add(("attr", eva.owner_name, eva.name))
                    self.terms.add(("attr", eva.inverse.owner_name,
                                    eva.inverse.name))
                    self.terms.add(("class", node.class_name))
                else:
                    attr = node.mv_attr
                    self.terms.add(("attr", attr.owner_name, attr.name))
            if expression.terminal_attr is not None:
                attr = expression.terminal_attr
                self.terms.add(("attr", attr.owner_name, attr.name))
        elif isinstance(expression, Binary):
            self._collect_terms(expression.left)
            self._collect_terms(expression.right)
        elif isinstance(expression, Unary):
            self._collect_terms(expression.operand)
        elif isinstance(expression, (Aggregate, Quantified)):
            self._collect_terms(expression.argument)
            if isinstance(expression, Aggregate) and expression.outer_path:
                self._collect_terms(expression.outer_path)
            for node in expression.scope_nodes:
                if node.kind == "root":
                    self.terms.add(("class", node.class_name))
                elif node.kind == "eva":
                    eva = node.eva
                    self.terms.add(("attr", eva.owner_name, eva.name))
                    self.terms.add(("attr", eva.inverse.owner_name,
                                    eva.inverse.name))
                else:
                    attr = node.mv_attr
                    self.terms.add(("attr", attr.owner_name, attr.name))
        elif isinstance(expression, IsaTest):
            self._collect_terms(expression.entity)
            self.terms.add(("class", expression.class_name))
        elif isinstance(expression, FunctionCall):
            for arg in expression.args:
                self._collect_terms(arg)
        elif isinstance(expression, Literal):
            pass

    def triggered_by(self, keys: Set[tuple]) -> bool:
        return bool(self.terms & keys)


class ConstraintManager:
    """Compiles and enforces all VERIFY constraints of a schema."""

    def __init__(self, executor: QueryExecutor, mode: str = "immediate"):
        if mode not in ("immediate", "deferred", "off"):
            raise ValueError(f"unknown constraint mode {mode!r}")
        self.executor = executor
        self.store = executor.store
        self.mode = mode
        self.compiled: List[_CompiledConstraint] = [
            _CompiledConstraint(c, executor.qualifier)
            for c in executor.schema.constraints]
        self.checks_run = 0
        self.checks_skipped = 0
        self._deferred_keys: Set[tuple] = set()
        self._deferred_entities: Set[int] = set()
        # Plain leaf lock: one ConstraintManager is shared by every
        # concurrent session, so the deferred sets and counters need a
        # guard.  Nothing is ever acquired while holding it.
        self._state_lock = threading.Lock()

    # -- Statement / commit hooks ------------------------------------------------

    def after_statement(self, touches, executor=None) -> None:
        """Re-check constraints triggered by one statement's touches.

        ``executor`` — optional per-statement executor to evaluate the
        assertions on; concurrent sessions pass their private executor so
        shared memo state is never raced (defaults to the manager's own).
        """
        if self.mode == "off" or not self.compiled:
            return
        if self.mode == "deferred":
            with self._state_lock:
                self._deferred_keys |= touches.keys
                self._deferred_entities |= touches.entities
            return
        self._check(touches.keys, touches.entities, executor)

    def before_commit(self, executor=None) -> None:
        if self.mode != "deferred":
            return
        with self._state_lock:
            keys, entities = self._deferred_keys, self._deferred_entities
            self._deferred_keys, self._deferred_entities = set(), set()
        self._check(keys, entities, executor)

    def reset_deferred(self) -> None:
        with self._state_lock:
            self._deferred_keys.clear()
            self._deferred_entities.clear()

    # -- Checking -------------------------------------------------------------------

    def _check(self, keys: Set[tuple], entities: Set[int],
               executor=None) -> None:
        executor = executor if executor is not None else self.executor
        for compiled in self.compiled:
            if not compiled.triggered_by(keys):
                with self._state_lock:
                    self.checks_skipped += 1
                continue
            perspective = compiled.constraint.class_name
            candidates = self._propagate(compiled, entities)
            for surrogate in sorted(candidates):
                if not self.store.has_role(surrogate, perspective):
                    continue
                with self._state_lock:
                    self.checks_run += 1
                holds = executor.predicate_holds(
                    compiled.tree, compiled.expression, surrogate)
                if not holds and not self._unknown(compiled, surrogate,
                                                   executor):
                    raise ConstraintViolation(
                        compiled.constraint.name,
                        compiled.constraint.else_message)

    def _propagate(self, compiled: _CompiledConstraint,
                   entities: Set[int]) -> Set[int]:
        """Touched entities, plus perspective entities reachable from them
        backwards along the assertion's qualification chains.

        Example: V1 mentions ``credits of courses-enrolled``; modifying a
        course's CREDITS must re-check every student enrolled in it, found
        by traversing the inverse EVA (students-enrolled).  A chain hanging
        off a universal (uncorrelated) root makes every member of the
        perspective a candidate — the conservative fallback the paper's
        "most general form" discussion motivates.
        """
        candidates = set(entities)
        perspective = compiled.constraint.class_name
        for node in compiled.chain_nodes:
            if node.kind != "eva":
                continue
            touched_here = {e for e in entities
                            if self.store.has_role(e, node.class_name)}
            if not touched_here:
                continue
            current = touched_here
            walker = node
            correlated = True
            while walker is not None and walker.kind == "eva":
                back = set()
                for entity in current:
                    back.update(self.store.eva_targets(entity,
                                                       walker.eva.inverse))
                current = back
                walker = walker.parent
            if (walker is not None and walker.kind == "root"
                    and walker.var_name.startswith("#all-")):
                correlated = False
            if correlated:
                candidates.update(current)
            else:
                candidates.update(self.store.scan_class(perspective))
                break
        return candidates

    def _unknown(self, compiled: _CompiledConstraint, surrogate: int,
                 executor=None) -> bool:
        """True when the assertion is UNKNOWN (nulls) rather than false —
        unknown passes, as in SQL CHECK."""
        executor = executor if executor is not None else self.executor
        root = compiled.tree.roots[0]
        env = {root.id: surrogate}
        # With TYPE 2 subtrees, existential failure counts as false only if
        # some assignment was possible; re-evaluate the bare truth value
        # when the tree is flat.
        if any(root.children.values()):
            return False
        truth = executor.evaluator.truth(compiled.expression, env)
        from repro.types.tvl import UNKNOWN
        return truth is UNKNOWN

    def statistics(self) -> Dict[str, int]:
        return {"constraints": len(self.compiled),
                "checks_run": self.checks_run,
                "checks_skipped": self.checks_skipped}
