"""Volcano-style batched operator algebra for the Retrieve path (§4.5).

The paper's nested-loop semantics program::

    for each X1 in domain(X1)
      ...
        for each Xm in domain(Xm)       -- TYPE 1 and TYPE 3, DF order
          such that
            for some Xm+1 ... Xn        -- TYPE 2, existential
              if <selection> then print <target list>

is realized here as a chain of physical operators, each pulling *batches*
of slot rows from its child instead of single tuples:

* :class:`Scan` — root enumeration (extent or index access path);
* :class:`EVATraverse` — TYPE 1 inner-join fan-out across an EVA or MV
  DVA, one batched accessor call per input batch;
* :class:`OuterTraverse` — TYPE 3 directed outer join: an empty domain
  yields the all-null dummy instance instead of dropping the row;
* :class:`Filter` — 3VL predicate over a batch (with a vectorized path
  for plain DVA-vs-literal comparisons);
* :class:`Semi` / :class:`AntiSemi` — TYPE 2 SOME/NO existential
  subtrees as semijoins on the current binding;
* :class:`Aggregate`, :class:`Project`, :class:`Sort`,
  :class:`Distinct` — target evaluation and result shaping.

A *slot row* is a plain list, one slot per enumeration-spine node (in
planned DF order) plus one per precomputed aggregate; unbound slots hold
the :data:`UNBOUND` sentinel.  Environments (node id -> instance) are
materialized per row only where the expression evaluator is actually
needed — the batched fast paths never build them.
"""

from __future__ import annotations

from decimal import Decimal
from typing import Dict, List, Optional

from repro.dml.ast import Binary, Literal, Path
from repro.engine.access import DUMMY
from repro.engine.expressions import _compare
from repro.errors import SimError
from repro.types.dates import SimDate, SimTime
from repro.types.tvl import NULL, UNKNOWN, is_null


class _Unbound:
    """Sentinel for slots whose node has not been enumerated yet."""

    def __repr__(self):
        return "UNBOUND"

    def __bool__(self):
        return False


UNBOUND = _Unbound()

MIN_BATCH_SIZE = 1
MAX_BATCH_SIZE = 65536
DEFAULT_BATCH_SIZE = 64

#: comparison operators the batched fast paths share with ``_compare``
_COMPARISON_OPS = ("=", "neq", "<", "<=", ">", ">=", "like")


def validate_batch_size(value) -> int:
    """Bounds-checked batch size (the ``Database`` / IQF ``.set`` knob)."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise SimError(f"batch_size must be an integer, got {value!r}")
    if not MIN_BATCH_SIZE <= value <= MAX_BATCH_SIZE:
        raise SimError(f"batch_size must be between {MIN_BATCH_SIZE} and "
                       f"{MAX_BATCH_SIZE}, got {value}")
    return value


class ExecContext:
    """Per-execution state shared by every operator of one physical DAG."""

    __slots__ = ("executor", "accessor", "evaluator", "store", "stats",
                 "batch_size", "slots", "width", "_slot_items")

    def __init__(self, executor, physical, stats=None):
        self.executor = executor
        self.accessor = executor.accessor
        self.evaluator = executor.evaluator
        self.store = executor.store
        self.stats = stats
        self.batch_size = executor.batch_size
        self.slots = physical.slots
        self.width = physical.width
        self._slot_items = tuple(physical.slots.items())

    def spawn_worker(self, accessor, evaluator, stats) -> "ExecContext":
        """A per-worker view for morsel-parallel segments: same slot
        layout and batching, but the worker's own accessor/evaluator (the
        per-query memos are sharded, not locked) and its own stats dict
        (merged at the barrier)."""
        clone = object.__new__(ExecContext)
        clone.executor = self.executor
        clone.accessor = accessor
        clone.evaluator = evaluator
        clone.store = self.store
        clone.stats = stats
        clone.batch_size = self.batch_size
        clone.slots = self.slots
        clone.width = self.width
        clone._slot_items = self._slot_items
        return clone

    def env_of(self, row) -> Dict:
        """Node environment for one row (evaluator-facing view)."""
        env = {}
        for node_id, slot in self._slot_items:
            instance = row[slot]
            if instance is not UNBOUND:
                env[node_id] = instance
        return env


class OutRow:
    """One projected result row plus its sort/output bookkeeping."""

    __slots__ = ("values", "order_key", "restore_key", "snapshot",
                 "duplicate")

    def __init__(self, values, order_key=None, restore_key=None,
                 snapshot=None):
        self.values = values
        self.order_key = order_key
        self.restore_key = restore_key
        self.snapshot = snapshot
        self.duplicate = False


class Operator:
    """Base batched iterator.  ``run(ctx)`` yields lists (batches) of
    slot rows; per-operator batch/row counters feed EXPLAIN ANALYZE."""

    name = "operator"

    def __init__(self, child: Optional["Operator"] = None):
        self.child = child
        self.node = None
        self.batches = 0
        self.rows_in = 0
        self.rows_out = 0

    def run(self, ctx: ExecContext):
        raise NotImplementedError

    def detail(self) -> str:
        return ""

    def describe(self) -> str:
        detail = self.detail()
        return f"{self.name}({detail})" if detail else self.name

    def _emit(self, batch):
        self.batches += 1
        self.rows_out += len(batch)
        return batch

    def chain(self) -> List["Operator"]:
        """The operator pipeline, innermost (leaf) first."""
        ops: List[Operator] = []
        cursor = self
        while cursor is not None:
            ops.append(cursor)
            cursor = cursor.child
        ops.reverse()
        return ops


class Scan(Operator):
    """Root-variable enumeration: class extent or index access path.

    With no child this is the outermost loop.  With a child it re-opens
    per input row — the nested cross product of multi-perspective
    queries — over a domain materialized once per execution.
    """

    name = "Scan"

    def __init__(self, node, plan=None, access=None, child=None,
                 domain=None):
        super().__init__(child)
        self.node = node
        self.plan = plan
        self.access = access
        self.domain_override = domain

    def detail(self) -> str:
        if self.domain_override is not None:
            return f"{self.node.describe()}, candidates"
        if self.access is not None and self.access.kind != "scan":
            return f"{self.node.describe()}, {self.access.kind}"
        return f"{self.node.describe()}, extent"

    def _open(self, ctx: ExecContext):
        if self.domain_override is not None:
            return self.domain_override
        if self.plan is not None:
            iterator = self.plan.root_iterator(self.node, ctx.executor)
            if iterator is not None:
                return iterator
        return ctx.accessor.root_domain(self.node)

    def run(self, ctx: ExecContext):
        slot = ctx.slots[self.node.id]
        size = ctx.batch_size
        stats = ctx.stats
        if self.child is None:
            entry = None
            if stats is not None:
                entry = stats.setdefault(self.node.id, [0, 0])
                entry[0] += 1
            width = ctx.width
            out = []
            for instance in self._open(ctx):
                if entry is not None:
                    entry[1] += 1
                row = [UNBOUND] * width
                row[slot] = instance
                out.append(row)
                if len(out) >= size:
                    yield self._emit(out)
                    out = []
            if out:
                yield self._emit(out)
            return
        domain = None
        for batch in self.child.run(ctx):
            self.rows_in += len(batch)
            if domain is None:
                domain = list(self._open(ctx))
            if stats is not None:
                entry = stats.setdefault(self.node.id, [0, 0])
                entry[0] += len(batch)
                entry[1] += len(batch) * len(domain)
            out = []
            for row in batch:
                for instance in domain:
                    new_row = row.copy()
                    new_row[slot] = instance
                    out.append(new_row)
                    if len(out) >= size:
                        yield self._emit(out)
                        out = []
            if out:
                yield self._emit(out)


class EVATraverse(Operator):
    """TYPE 1 inner-join fan-out across an EVA (or MV DVA): the domains
    of a whole batch of parent instances resolve in one accessor call."""

    name = "EVATraverse"
    outer = False

    def __init__(self, node, child):
        super().__init__(child)
        self.node = node

    def detail(self) -> str:
        return self.node.describe()

    def run(self, ctx: ExecContext):
        node = self.node
        slot = ctx.slots[node.id]
        parent_slot = ctx.slots[node.parent.id]
        size = ctx.batch_size
        stats = ctx.stats
        outer = self.outer
        for batch in self.child.run(ctx):
            self.rows_in += len(batch)
            domains = ctx.accessor.node_domains_batch(
                node, [row[parent_slot] for row in batch])
            entry = None
            if stats is not None:
                entry = stats.setdefault(node.id, [0, 0])
                entry[0] += len(batch)
            out = []
            for row, domain in zip(batch, domains):
                if entry is not None:
                    entry[1] += len(domain)
                if not domain:
                    if outer:
                        # §4.5: "the domain of TYPE 3 variables will never
                        # be empty (when empty, adding a dummy instance all
                        # of whose attributes are null will achieve this)".
                        new_row = row.copy()
                        new_row[slot] = DUMMY
                        out.append(new_row)
                        if len(out) >= size:
                            yield self._emit(out)
                            out = []
                    continue
                for instance in domain:
                    new_row = row.copy()
                    new_row[slot] = instance
                    out.append(new_row)
                    if len(out) >= size:
                        yield self._emit(out)
                        out = []
            if out:
                yield self._emit(out)


class OuterTraverse(EVATraverse):
    """TYPE 3 directed outer join (§4.5): target-only branches pad with
    the all-null dummy instance instead of dropping the parent row."""

    name = "OuterTraverse"
    outer = True


class Filter(Operator):
    """3VL predicate over a batch.  Plain ``<path> <op> <literal>``
    comparisons on spine DVAs read the whole column through the batched
    DVA path; everything else goes through the expression evaluator."""

    name = "Filter"

    def __init__(self, where, child, slots=None):
        super().__init__(child)
        self.where = where
        self._fast = (comparison_fast_path(where, slots)
                      if slots is not None else None)

    def detail(self) -> str:
        return self.where.describe()

    def run(self, ctx: ExecContext):
        fast = self._fast
        where = self.where
        evaluator = ctx.evaluator
        for batch in self.child.run(ctx):
            self.rows_in += len(batch)
            if fast is not None:
                out = fast(ctx, batch)
            else:
                out = [row for row in batch
                       if evaluator.is_true(where, ctx.env_of(row))]
            if out:
                yield self._emit(out)


class Semi(Operator):
    """TYPE 2 existential semijoin: a row survives iff some binding of
    the off-spine subtree nodes satisfies the test (§4.5 "such that for
    some Xm+1 ... Xn").

    Two forms share the operator: the *predicate* form re-evaluates the
    full WHERE clause per binding (main-scope TYPE 2 subtrees), and the
    *comparison* form folds ``<left> <op> some(<argument>)`` over the
    quantifier's own scope, the left operand evaluated once per row.
    """

    name = "Semi"

    def __init__(self, nodes, child, where=None, comparison=None):
        super().__init__(child)
        self.nodes = list(nodes)
        self.where = where
        self.comparison = comparison    # (op, left expr, argument expr)

    def detail(self) -> str:
        return ", ".join(node.describe() for node in self.nodes)

    def run(self, ctx: ExecContext):
        stats = ctx.stats
        for batch in self.child.run(ctx):
            self.rows_in += len(batch)
            out = [row for row in batch if self._keep(ctx, row, stats)]
            if out:
                yield self._emit(out)

    def _keep(self, ctx: ExecContext, row, stats) -> bool:
        env = ctx.env_of(row)
        if self.comparison is None:
            return exists_probe(ctx.evaluator, ctx.accessor, self.nodes, 0,
                                self.where, env, stats)
        op, left_expr, argument = self.comparison
        left = ctx.evaluator.value(left_expr, env)
        return self._some(ctx, env, 0, op, left, argument)

    def _some(self, ctx, env, index, op, left, argument) -> bool:
        if index == len(self.nodes):
            return _compare(op, left,
                            ctx.evaluator.value(argument, env)) is True
        node = self.nodes[index]
        if node.kind == "root":
            domain = ctx.accessor.root_domain(node)
        else:
            domain = ctx.accessor.node_domain(node, env)
        for instance in domain:
            env[node.id] = instance
            if self._some(ctx, env, index + 1, op, left, argument):
                env.pop(node.id, None)
                return True
        env.pop(node.id, None)
        return False


class AntiSemi(Operator):
    """NO-quantifier comparison as an anti-semijoin: a row survives iff
    *no* scope binding compares true — and none compares UNKNOWN (3VL:
    ``no`` negates ``some``, so an UNKNOWN witness makes the whole test
    UNKNOWN, which is not true).  An empty scope keeps the row."""

    name = "AntiSemi"

    def __init__(self, nodes, child, comparison):
        super().__init__(child)
        self.nodes = list(nodes)
        self.comparison = comparison    # (op, left expr, argument expr)

    def detail(self) -> str:
        return ", ".join(node.describe() for node in self.nodes)

    def run(self, ctx: ExecContext):
        for batch in self.child.run(ctx):
            self.rows_in += len(batch)
            out = [row for row in batch if self._keep(ctx, row)]
            if out:
                yield self._emit(out)

    def _keep(self, ctx: ExecContext, row) -> bool:
        op, left_expr, argument = self.comparison
        env = ctx.env_of(row)
        left = ctx.evaluator.value(left_expr, env)
        verdict = self._scan(ctx, env, 0, op, left, argument)
        return verdict is not False and verdict is not UNKNOWN

    def _scan(self, ctx, env, index, op, left, argument):
        """False on a true witness (reject, early exit), UNKNOWN when any
        binding compared UNKNOWN, None when every binding was false."""
        if index == len(self.nodes):
            outcome = _compare(op, left,
                               ctx.evaluator.value(argument, env))
            if outcome is True:
                return False
            return UNKNOWN if outcome is UNKNOWN else None
        node = self.nodes[index]
        if node.kind == "root":
            domain = ctx.accessor.root_domain(node)
        else:
            domain = ctx.accessor.node_domain(node, env)
        saw_unknown = False
        for instance in domain:
            env[node.id] = instance
            verdict = self._scan(ctx, env, index + 1, op, left, argument)
            if verdict is False:
                env.pop(node.id, None)
                return False
            if verdict is UNKNOWN:
                saw_unknown = True
        env.pop(node.id, None)
        return UNKNOWN if saw_unknown else None


class Aggregate(Operator):
    """Evaluates aggregate target/order expressions once per row into
    dedicated extra slots, ahead of projection (scoped enumeration per
    §4.6 happens inside the evaluator)."""

    name = "Aggregate"

    def __init__(self, items, child):
        super().__init__(child)
        self.items = list(items)        # [(Aggregate expr, slot)]

    def detail(self) -> str:
        return ", ".join(expr.describe() for expr, _ in self.items)

    def run(self, ctx: ExecContext):
        evaluator = ctx.evaluator
        items = self.items
        for batch in self.child.run(ctx):
            self.rows_in += len(batch)
            for row in batch:
                env = ctx.env_of(row)
                for expr, slot in items:
                    row[slot] = evaluator.value(expr, env)
            yield self._emit(batch)


class Project(Operator):
    """Target-list evaluation into :class:`OutRow` batches.

    Plain Path targets whose value node sits on the spine read their
    column through the batched DVA path; aggregate targets read their
    precomputed slot; everything else evaluates per row.  Order keys,
    the §5.1 restore key and structured-output snapshots are attached
    here so the downstream operators never need node environments.
    """

    name = "Project"

    def __init__(self, query, original_nodes, reordered, structured,
                 slots, agg_slots, child):
        super().__init__(child)
        self.query = query
        self.reordered = reordered
        self.structured = structured
        self.original_slots = [slots[node.id] for node in original_nodes]
        self.targets = [self._lower_expr(item.expression, slots, agg_slots)
                        for item in query.targets]
        self.order = [(self._lower_expr(order.expression, slots, agg_slots),
                       order.descending)
                      for order in (query.order_by or [])]
        self._needs_env = (any(kind == "eval" for kind, _ in self.targets)
                           or any(kind == "eval"
                                  for (kind, _), _ in self.order))

    @staticmethod
    def _lower_expr(expression, slots, agg_slots):
        slot = agg_slots.get(id(expression))
        if slot is not None:
            return ("slot", slot)
        if isinstance(expression, Path):
            column = path_column(expression, slots)
            if column is not None:
                return ("column", column)
        return ("eval", expression)

    def detail(self) -> str:
        return ", ".join(item.label or item.expression.describe()
                         for item in self.query.targets)

    def run(self, ctx: ExecContext):
        evaluator = ctx.evaluator
        for batch in self.child.run(ctx):
            self.rows_in += len(batch)
            envs = None
            if self._needs_env:
                envs = [ctx.env_of(row) for row in batch]
            columns = [self._column(ctx, batch, envs, plan)
                       for plan in self.targets]
            order_columns = [self._column(ctx, batch, envs, plan)
                             for plan, _ in self.order]
            out = []
            for i, row in enumerate(batch):
                values = tuple(column[i] for column in columns)
                out_row = OutRow(values)
                if self.order:
                    out_row.order_key = tuple(
                        _sort_key(column[i], descending)
                        for column, (_, descending)
                        in zip(order_columns, self.order))
                if self.reordered:
                    out_row.restore_key = tuple(
                        _instance_key(row[slot])
                        for slot in self.original_slots)
                if self.structured:
                    out_row.snapshot = tuple(row[slot]
                                             for slot in self.original_slots)
                out.append(out_row)
            yield self._emit(out)

    def _column(self, ctx, batch, envs, plan):
        kind, payload = plan
        if kind == "slot":
            return [_render(row[payload]) for row in batch]
        if kind == "column":
            return [_render(value) for value in payload(ctx, batch)]
        evaluator = ctx.evaluator
        return [_render(evaluator.value(payload, env)) for env in envs]


class Sort(Operator):
    """Blocking sort: the §5.1 semantics-preservation (restore) sort when
    the plan reordered the roots, then the user's Order By — both stable,
    in that sequence, exactly as the output contract requires."""

    name = "Sort"

    def __init__(self, restore, order, child):
        super().__init__(child)
        self.restore = restore
        self.order = order

    def detail(self) -> str:
        parts = []
        if self.restore:
            parts.append("restore perspective order")
        if self.order:
            parts.append("order by")
        return ", ".join(parts)

    def run(self, ctx: ExecContext):
        rows: List[OutRow] = []
        for batch in self.child.run(ctx):
            self.rows_in += len(batch)
            rows.extend(batch)
        if self.restore:
            rows.sort(key=lambda out_row: out_row.restore_key)
        if self.order:
            rows.sort(key=lambda out_row: out_row.order_key)
        size = ctx.batch_size
        for start in range(0, len(rows), size):
            yield self._emit(rows[start:start + size])


class Distinct(Operator):
    """Duplicate elimination on the projected values.  Duplicates are
    *marked*, not dropped: structured output still lists every binding
    (the row list deduplicates, the instance snapshots do not)."""

    name = "Distinct"

    def __init__(self, child):
        super().__init__(child)

    def run(self, ctx: ExecContext):
        seen = set()
        kept_values: List[tuple] = []
        for batch in self.child.run(ctx):
            self.rows_in += len(batch)
            emitted = 0
            for out_row in batch:
                values = out_row.values
                try:
                    if values in seen:
                        out_row.duplicate = True
                        continue
                    seen.add(values)
                except TypeError:
                    if values in kept_values:
                        out_row.duplicate = True
                        continue
                kept_values.append(values)
                emitted += 1
            self.batches += 1
            self.rows_out += emitted
            yield batch


# ------------------------------------------------------------ probe helpers

def exists_probe(evaluator, accessor, nodes, index, where, env,
                 stats=None) -> bool:
    """Existential enumeration of TYPE 2 subtree nodes, earliest exit on
    the first witness; ``stats`` (tracing only) maps node id -> [loop
    entries, instances bound], matching EXPLAIN ANALYZE's contract."""
    if index == len(nodes):
        return evaluator.is_true(where, env)
    node = nodes[index]
    if stats is None:
        for instance in accessor.node_domain(node, env):
            env[node.id] = instance
            if exists_probe(evaluator, accessor, nodes, index + 1, where,
                            env):
                env.pop(node.id, None)
                return True
    else:
        entry = stats.setdefault(node.id, [0, 0])
        entry[0] += 1
        for instance in accessor.node_domain(node, env):
            entry[1] += 1
            env[node.id] = instance
            if exists_probe(evaluator, accessor, nodes, index + 1, where,
                            env, stats):
                env.pop(node.id, None)
                return True
    env.pop(node.id, None)
    return False


def selection_holds(evaluator, accessor, where, exists_nodes, env,
                    stats=None) -> bool:
    """The "such that for some Xm+1..Xn" clause for one binding (shared
    by :class:`Semi`, ``select_entities`` and VERIFY's predicate path)."""
    if where is None:
        return True
    if not exists_nodes:
        return evaluator.is_true(where, env)
    return exists_probe(evaluator, accessor, exists_nodes, 0, where, env,
                        stats)


# ----------------------------------------------------------- batched columns

def path_column(path, slots):
    """Batched reader for a plain Path over a spine slot, or None when
    the path needs the general evaluator (derived attributes, off-spine
    value nodes).  The reader returns one value per row, reading DVA
    columns through the accessor's batched path."""
    if getattr(path, "derived", None) is not None:
        return None
    node = path.value_node
    if node is None or node.id not in slots:
        return None
    slot = slots[node.id]
    attr = path.terminal_attr
    transitive = node.kind == "eva" and node.transitive

    def read(ctx, batch):
        instances = []
        for row in batch:
            instance = row[slot]
            if transitive and isinstance(instance, tuple):
                instance = instance[0]
            instances.append(instance)
        if attr is None:
            return [NULL if instance is DUMMY else instance
                    for instance in instances]
        return ctx.accessor.dva_batch(attr, instances)

    return read


def comparison_fast_path(where, slots):
    """Vectorized row filter for ``<path> <op> <literal>`` (either
    order) over a spine DVA, or None when the shape does not apply.
    Semantics are exactly ``_compare`` — the same 3VL comparison the
    evaluator would run per row."""
    if not isinstance(where, Binary) or where.op not in _COMPARISON_OPS:
        return None
    op = where.op
    left, right = where.left, where.right
    swapped = False
    if isinstance(left, Literal) and isinstance(right, Path):
        left, right = right, left
        swapped = True
    if not (isinstance(left, Path) and isinstance(right, Literal)):
        return None
    column = path_column(left, slots)
    if column is None:
        return None
    literal = right.value

    def run(ctx, batch):
        values = column(ctx, batch)
        out = []
        for row, value in zip(batch, values):
            if swapped:
                outcome = _compare(op, literal, value)
            else:
                outcome = _compare(op, value, literal)
            if outcome is True:
                out.append(row)
        return out

    return run


# ------------------------------------------------------------- row rendering

def _render(value):
    """Row values: transitive instances arrive unwrapped; UNKNOWN
    renders as NULL."""
    if value is UNKNOWN:
        return NULL
    return value


_TYPE_RANK = {bool: 0, int: 1, float: 1, Decimal: 1, str: 2,
              SimDate: 3, SimTime: 4, tuple: 5}


class _Reversed:
    """Wrapper inverting sort order for DESC keys."""

    __slots__ = ("key",)

    def __init__(self, key):
        self.key = key

    def __lt__(self, other):
        return other.key < self.key

    def __eq__(self, other):
        return other.key == self.key


def _instance_key(instance):
    """Total order over loop-node instances for the restore sort."""
    if instance is None or instance is UNBOUND:
        return (0, 0)
    if isinstance(instance, tuple):      # transitive (value, level)
        instance = instance[0]
    if isinstance(instance, int):
        return (1, instance)
    return (2, str(instance))


def _sort_key(value, descending: bool):
    """Total order over mixed-type values; NULL/UNKNOWN sorts last in
    both directions (deterministic NULLS LAST, ascending or DESC)."""
    if is_null(value) or value is UNKNOWN:
        return (1, 0)
    rank = _TYPE_RANK.get(type(value), 9)
    if isinstance(value, Decimal):
        value = float(value)
    key = (rank, value)
    return (0, _Reversed(key)) if descending else (0, key)
