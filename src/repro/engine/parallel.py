"""Morsel-driven intra-query parallelism over the operator DAG.

The batched algebra of :mod:`repro.engine.operators` made the batch the
unit of work; this module makes it the unit of *scheduling*.  The
:class:`Parallel` operator sits at the pipeline's single barrier: below
it runs the parallel-safe segment — ``Scan → EVATraverse/OuterTraverse →
Filter/Semi/AntiSemi`` — and above it the order-sensitive consumers
(``Aggregate``, ``Project``, ``Sort``, ``Distinct``) stay serial.

Execution partitions the root Scan's materialized domain into *morsels*
(contiguous runs of root instances, à la Leis et al.'s morsel-driven
model) and drives one cloned segment pipeline per worker thread over
them.  Each worker owns a private :class:`~repro.engine.access.
EntityAccessor` and expression evaluator — the per-query memos are
sharded rather than locked — while the layers underneath (read cache,
buffer pool, indexes, perf counters) are shared and thread-safe.

Determinism: morsels are numbered in root-enumeration order and their
result rows are concatenated in that order at the barrier, so the merged
stream is row-identical to serial execution — Sort/Distinct/Project
above the barrier then behave exactly as in the serial plan.

Under CPython's GIL, pure-Python segment work cannot speed up across
threads; the win is I/O overlap: workers stalled in (modeled or real)
device reads release the interpreter, so scan-heavy pipelines whose
working set misses the buffer pool scale with the worker count — the
classic morsel-parallelism payoff, measured by ``benchmarks/
bench_scale.py``.
"""

from __future__ import annotations

import threading
from typing import List, Optional

from repro.engine import operators as ops
from repro.engine.access import EntityAccessor
from repro.engine.expressions import ExpressionEvaluator
from repro.errors import SimError

MIN_PARALLELISM = 1
MAX_PARALLELISM = 64
DEFAULT_PARALLELISM = 1

#: operator names allowed below the Parallel barrier (order-insensitive
#: per-row work); everything else must stay above it
PARALLEL_SAFE_OPS = ("Scan", "EVATraverse", "OuterTraverse", "Filter",
                     "Semi", "AntiSemi")

#: domains smaller than this run serially even when workers are allowed —
#: thread + clone setup would dominate the work.  Deliberately small: a
#: handful of roots can still fan out into most of the database through
#: a long EVA chain, and those are exactly the queries worth splitting.
MIN_PARALLEL_DOMAIN = 8


def validate_parallelism(value) -> int:
    """Bounds-checked worker count (the ``Database`` / IQF ``.set`` knob)."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise SimError(f"parallelism must be an integer, got {value!r}")
    if not MIN_PARALLELISM <= value <= MAX_PARALLELISM:
        raise SimError(f"parallelism must be between {MIN_PARALLELISM} and "
                       f"{MAX_PARALLELISM}, got {value}")
    return value


class _WorkerState:
    """One worker thread's private execution state: a cloned segment
    pipeline plus sharded accessor/evaluator and a local stats dict."""

    __slots__ = ("ctx", "sink", "leaf", "stats", "morsels")

    def __init__(self, parent_ctx: ops.ExecContext, segment: ops.Operator):
        accessor = EntityAccessor(parent_ctx.store)
        accessor.begin_query()
        evaluator = ExpressionEvaluator(accessor)
        self.stats = {} if parent_ctx.stats is not None else None
        self.ctx = parent_ctx.spawn_worker(accessor, evaluator, self.stats)
        self.sink = _clone_segment(segment)
        self.leaf = self.sink.chain()[0]
        self.morsels = 0


def _clone_segment(operator: Optional[ops.Operator]) -> Optional[ops.Operator]:
    """A fresh instance chain of the parallel segment.  Clones share the
    immutable pieces (nodes, predicates, compiled fast paths) but carry
    their own batch/row counters, so per-worker attribution merges back
    without double-counting."""
    if operator is None:
        return None
    child = _clone_segment(operator.child)
    if isinstance(operator, ops.Scan):
        return ops.Scan(operator.node, plan=operator.plan,
                        access=operator.access, child=child,
                        domain=operator.domain_override)
    if isinstance(operator, ops.OuterTraverse):
        return ops.OuterTraverse(operator.node, child)
    if isinstance(operator, ops.EVATraverse):
        return ops.EVATraverse(operator.node, child)
    if isinstance(operator, ops.Filter):
        clone = ops.Filter(operator.where, child, None)
        clone._fast = operator._fast
        return clone
    if isinstance(operator, ops.Semi):
        return ops.Semi(operator.nodes, child, where=operator.where,
                        comparison=operator.comparison)
    if isinstance(operator, ops.AntiSemi):
        return ops.AntiSemi(operator.nodes, child, operator.comparison)
    raise SimError(f"operator {operator.name} cannot run below the "
                   f"parallel barrier")


class Parallel(ops.Operator):
    """The morsel dispatcher / merge barrier.

    ``child`` is the parallel segment's sink.  ``run`` materializes the
    leaf Scan's domain, splits it into morsels, drives cloned segment
    pipelines on a worker pool, and re-emits the workers' result rows in
    morsel order — then folds every clone's operator counters and stats
    back into the template segment so EXPLAIN ANALYZE and
    ``ResultSet.perf`` see exactly the serial totals.
    """

    name = "Parallel"

    def __init__(self, child: ops.Operator, parallelism: int):
        super().__init__(child)
        self.parallelism = parallelism
        self.workers_used = 0
        self.morsels = 0

    def detail(self) -> str:
        return f"workers<={self.parallelism}"

    # -- Morsel geometry ---------------------------------------------------------

    def _morsel_size(self, domain_size: int, batch_size: int) -> int:
        """Morsels sized for load balance: several morsels per worker so
        a skewed fan-out does not straggle the barrier.  Never clamped up
        to the batch size — a few dozen roots can fan out into most of
        the database through a long EVA chain, and splitting those small
        domains is where morsel parallelism pays."""
        if domain_size <= 0:
            return 1
        return max(1, -(-domain_size // (self.parallelism * 4)))

    # -- Execution ---------------------------------------------------------------

    def run(self, ctx: ops.ExecContext):
        leaf = self.child.chain()[0]
        domain = list(leaf._open(ctx))
        size = self._morsel_size(len(domain), ctx.batch_size)
        morsels = [domain[start:start + size]
                   for start in range(0, len(domain), size)]
        self.morsels = len(morsels)
        self.rows_in += len(domain)

        states: List[_WorkerState] = []
        if len(morsels) <= 1 or self.parallelism <= 1 \
                or len(domain) < MIN_PARALLEL_DOMAIN:
            state = _WorkerState(ctx, self.child)
            states.append(state)
            results = [self._run_morsel(state, morsel) for morsel in morsels]
        else:
            results = self._run_pool(ctx, morsels, states)
        self.workers_used = len(states)

        self._merge(ctx, states)
        out: List = []
        batch_size = ctx.batch_size
        for rows in results:
            for row in rows:
                out.append(row)
                if len(out) >= batch_size:
                    yield self._emit(out)
                    out = []
        if out:
            yield self._emit(out)

    def _run_pool(self, ctx, morsels, states):
        from concurrent.futures import ThreadPoolExecutor
        local = threading.local()
        states_lock = threading.Lock()
        # Snapshot Retrieves pin their read view on the issuing thread;
        # worker threads must re-enter the same scope or they would read
        # physical state from a different epoch mid-query.
        store = ctx.store
        snap = store.current_snapshot() \
            if hasattr(store, "current_snapshot") else None

        def task(morsel):
            state = getattr(local, "state", None)
            if state is None:
                state = _WorkerState(ctx, self.child)
                local.state = state
                with states_lock:
                    states.append(state)
            if snap is None:
                return self._run_morsel(state, morsel)
            with store.snapshot_scope(snap):
                return self._run_morsel(state, morsel)

        pool_size = min(self.parallelism, len(morsels))
        with ThreadPoolExecutor(max_workers=pool_size,
                                thread_name_prefix="sim-morsel") as pool:
            futures = [pool.submit(task, morsel) for morsel in morsels]
            # Collect in submission (= root-enumeration) order: the merge
            # is deterministic no matter which worker finished first.
            return [future.result() for future in futures]

    @staticmethod
    def _run_morsel(state: _WorkerState, morsel) -> List:
        state.leaf.domain_override = morsel
        rows: List = []
        for batch in state.sink.run(state.ctx):
            rows.extend(batch)
        state.morsels += 1
        return rows

    # -- Barrier bookkeeping ------------------------------------------------------

    def _merge(self, ctx: ops.ExecContext, states: List[_WorkerState]) -> None:
        """Fold per-worker operator counters and trace stats into the
        template segment.  The template operators never ran themselves,
        so adding each clone's totals exactly once reproduces the serial
        counters — no double-counting into ``ResultSet.perf``."""
        template = self.child.chain()
        for state in states:
            for template_op, clone_op in zip(template, state.sink.chain()):
                template_op.batches += clone_op.batches
                template_op.rows_in += clone_op.rows_in
                template_op.rows_out += clone_op.rows_out
            if state.stats and ctx.stats is not None:
                for node_id, (loops, rows) in state.stats.items():
                    entry = ctx.stats.setdefault(node_id, [0, 0])
                    entry[0] += loops
                    entry[1] += rows
        for template_op in template:
            template_op.workers = len(states)
            template_op.morsels = self.morsels
