"""Multi-session concurrency control.

The paper's SIM leans on DMSII for concurrent transactions (§1: SIM is
"capable of supporting commercial application systems ... that require
very high transaction processing rates").  This module supplies the
substrate's equivalent: multiple *sessions* over one database, isolated
by strict two-phase locking at class granularity.

Sessions are cooperative (the process is single-threaded): each statement
runs to completion, but several sessions may hold open transactions at
once, and the lock manager makes their interleavings serializable:

* a Retrieve takes shared locks on every class its query tree touches;
* an update takes exclusive locks on the statement class and every class
  its cascades can reach (subclasses, EVA partners);
* locks are held until COMMIT/ABORT (strict 2PL);
* a conflicting request raises :class:`LockConflict` immediately (no
  blocking — the caller retries or aborts; with single-threaded
  cooperation, waiting would deadlock the process).

Example::

    alice, bob = Session(db), Session(db)
    alice.execute('Modify course(credits := 5) Where course-no = 1')
    bob.query('From course Retrieve title')     # LockConflict
    alice.commit()
    bob.query('From course Retrieve title')     # fine now
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.dml.ast import (
    DeleteStatement,
    InsertStatement,
    ModifyStatement,
    RetrieveQuery,
)
from repro.dml.parser import parse_dml
from repro.errors import SimError


class LockConflict(SimError):
    """A lock request conflicts with another session's holding."""


class LockManager:
    """Shared/exclusive locks at class granularity."""

    def __init__(self):
        self._shared: Dict[str, Set[int]] = {}
        self._exclusive: Dict[str, int] = {}

    def acquire_shared(self, session_id: int, class_name: str) -> None:
        holder = self._exclusive.get(class_name)
        if holder is not None and holder != session_id:
            raise LockConflict(
                f"class {class_name!r} is write-locked by session "
                f"{holder}")
        self._shared.setdefault(class_name, set()).add(session_id)

    def acquire_exclusive(self, session_id: int, class_name: str) -> None:
        holder = self._exclusive.get(class_name)
        if holder is not None and holder != session_id:
            raise LockConflict(
                f"class {class_name!r} is write-locked by session "
                f"{holder}")
        readers = self._shared.get(class_name, set()) - {session_id}
        if readers:
            raise LockConflict(
                f"class {class_name!r} is read-locked by sessions "
                f"{sorted(readers)}")
        self._exclusive[class_name] = session_id
        self._shared.setdefault(class_name, set()).add(session_id)

    def release_all(self, session_id: int) -> None:
        for readers in self._shared.values():
            readers.discard(session_id)
        for class_name in [c for c, holder in self._exclusive.items()
                           if holder == session_id]:
            del self._exclusive[class_name]

    def holdings(self, session_id: int) -> Dict[str, str]:
        held = {}
        for class_name, holder in self._exclusive.items():
            if holder == session_id:
                held[class_name] = "exclusive"
        for class_name, readers in self._shared.items():
            if session_id in readers and class_name not in held:
                held[class_name] = "shared"
        return held


class Session:
    """One client's transactional view of a shared database.

    Each session owns a transaction that opens lazily at its first
    statement and closes at :meth:`commit` / :meth:`abort`.  Statements
    from different sessions may interleave; strict 2PL on classes keeps
    the interleaving serializable.
    """

    _ids = 0

    def __init__(self, database):
        Session._ids += 1
        self.session_id = Session._ids
        self.database = database
        if not hasattr(database, "_lock_manager"):
            database._lock_manager = LockManager()
        self.locks: LockManager = database._lock_manager
        self._transaction = None

    # -- Statements -------------------------------------------------------------

    def execute(self, text: str):
        statement = parse_dml(text) if isinstance(text, str) else text
        self._lock_for(statement)
        self._ensure_transaction()
        manager = self.database.store.transactions
        previous = manager._current
        manager._current = self._transaction
        try:
            if isinstance(statement, RetrieveQuery):
                return self.database._run_retrieve(statement)
            return self.database.updates.execute(statement)
        finally:
            manager._current = previous

    def query(self, text: str):
        return self.execute(text)

    # -- Transaction boundaries ------------------------------------------------------

    def commit(self) -> None:
        if self._transaction is None:
            self.locks.release_all(self.session_id)
            return
        manager = self.database.store.transactions
        previous = manager._current
        manager._current = self._transaction
        try:
            self.database.constraints.before_commit()
            manager.commit()
        finally:
            if manager._current is self._transaction:
                manager._current = previous
            self._transaction = None
            self.locks.release_all(self.session_id)

    def abort(self) -> None:
        if self._transaction is None:
            self.locks.release_all(self.session_id)
            return
        manager = self.database.store.transactions
        previous = manager._current
        manager._current = self._transaction
        try:
            self.database.constraints.reset_deferred()
            manager.abort()
        finally:
            if manager._current is self._transaction:
                manager._current = previous
            self._transaction = None
            self.locks.release_all(self.session_id)

    def holdings(self) -> Dict[str, str]:
        return self.locks.holdings(self.session_id)

    # -- Internals ---------------------------------------------------------------------

    def _ensure_transaction(self) -> None:
        if self._transaction is not None and self._transaction.active:
            return
        manager = self.database.store.transactions
        if manager._current is not None and manager._current.active:
            # Another session's transaction is current; open ours
            # independently (the manager tracks one "current" at a time,
            # swapped around each statement).
            from repro.storage.transactions import Transaction
            manager._next_txn_id += 1
            self._transaction = Transaction(manager, manager._next_txn_id)
        else:
            self._transaction = manager.begin()
            manager._current = None   # detach: sessions swap in explicitly

    def _lock_for(self, statement) -> None:
        schema = self.database.schema
        if isinstance(statement, RetrieveQuery):
            for class_name in self._retrieve_classes(statement):
                self.locks.acquire_shared(self.session_id, class_name)
            return
        if isinstance(statement, InsertStatement):
            base = schema.get_class(statement.class_name).base_class_name
            touched = {base, statement.class_name,
                       *schema.graph.insertion_path(base,
                                                    statement.class_name)}
            touched |= self._assignment_partners(statement.class_name,
                                                 statement.assignments)
        elif isinstance(statement, ModifyStatement):
            touched = {statement.class_name}
            touched |= self._assignment_partners(statement.class_name,
                                                 statement.assignments)
        elif isinstance(statement, DeleteStatement):
            # Deletion cascades to subclass roles and drops every EVA
            # instance of the removed roles: lock all partner classes.
            touched = {statement.class_name}
            touched.update(schema.graph.descendants(statement.class_name))
            for class_name in list(touched):
                for eva in schema.get_class(class_name).immediate_evas():
                    touched.add(eva.range_class_name)
        else:
            raise SimError(f"cannot lock for {statement!r}")
        for class_name in sorted(touched):
            self.locks.acquire_exclusive(self.session_id, class_name)

    def _assignment_partners(self, class_name: str, assignments) -> set:
        """Range classes of the EVAs an assignment list writes."""
        schema = self.database.schema
        sim_class = schema.get_class(class_name)
        partners = set()
        for assignment in assignments:
            if not sim_class.has_attribute(assignment.attribute):
                continue
            attr = sim_class.attribute(assignment.attribute)
            if attr.is_eva:
                partners.add(attr.range_class_name)
        return partners

    def _retrieve_classes(self, query: RetrieveQuery) -> List[str]:
        tree = self.database.qualifier.resolve_retrieve(query)
        classes = set()

        def visit(node):
            if node.class_name:
                classes.add(node.class_name)
            for child in node.children.values():
                visit(child)
        for root in tree.roots:
            visit(root)
        return sorted(classes)

    def __repr__(self):
        state = "open" if self._transaction and self._transaction.active \
            else "idle"
        return f"<Session #{self.session_id} {state}>"
