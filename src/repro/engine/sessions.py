"""Multi-session concurrency control.

The paper's SIM leans on DMSII for concurrent transactions (§1: SIM is
"capable of supporting commercial application systems ... that require
very high transaction processing rates").  This module supplies the
substrate's equivalent: multiple *sessions* over one database — now from
concurrent threads — isolated by strict two-phase locking at class
granularity, with MVCC snapshot isolation for Retrieves:

* an update takes exclusive locks on the statement class and every class
  its cascades can reach (subclasses, EVA partners), held until
  COMMIT/ABORT (strict 2PL);
* a conflicting request *blocks* on a condition variable until the
  holder releases, the configurable timeout expires
  (:class:`LockTimeout`), or waits-for-graph cycle detection picks a
  deadlock victim (:class:`DeadlockError` — the youngest session in the
  cycle, deterministically);
* a session aborted as a deadlock victim while opening a fresh
  transaction is retried automatically with bounded, seeded backoff
  (the shape of :class:`repro.storage.faults.RetryPolicy`);
* a Retrieve on an MVCC session takes NO locks at all: it pins a commit
  epoch and reads pre-image version chains
  (:mod:`repro.mapper.versions`), so readers never block writers and
  writers never block readers.  ``Session(db, mvcc=False)`` restores
  shared-lock Retrieves, and ``lock_timeout=0`` restores the legacy
  fail-fast behavior (immediate :class:`LockConflict`).

Example::

    alice, bob = Session(db), Session(db)
    alice.execute('Modify course(credits := 5) Where course-no = 1')
    bob.query('From course Retrieve title')     # snapshot: sees credits=3
    alice.commit()
    bob.query('From course Retrieve title')     # now sees credits=5
"""

from __future__ import annotations

import itertools
import random
import time
from typing import Dict, List, Optional, Set, Tuple

from repro.dml.ast import (
    DeleteStatement,
    InsertStatement,
    ModifyStatement,
    RetrieveQuery,
)
from repro.dml.parser import parse_dml
from repro.engine.lockdep import RankedCondition, RankedLock
from repro.errors import SimError


class LockConflict(SimError):
    """A lock request conflicts with another session's holding."""


class LockTimeout(LockConflict):
    """A lock wait exceeded its timeout (the holder may just be slow —
    the statement failed but the transaction is still open)."""


class DeadlockError(LockConflict):
    """This session was chosen as a deadlock victim; its transaction has
    been (or must be) aborted to break the cycle."""


#: upper bound on one condition wait, so a doomed victim notices quickly
#: even if a notify is lost to timing
_WAIT_SLICE = 0.1


class LockManager:
    """Blocking shared/exclusive locks at class granularity.

    One mutex + condition covers all classes: lock traffic is a few
    acquisitions per statement, so a global condition with
    ``notify_all`` on every release is simpler than per-class queues
    and plenty fast.  Deadlocks are resolved by detection, not timeout:
    every time a session is about to wait, it searches the waits-for
    graph for a cycle through itself and dooms the *youngest* session
    in the cycle (largest session id — deterministic under a fixed
    arrival order, and the youngest has the least work to redo).
    """

    def __init__(self, default_timeout: float = 10.0):
        # Rank 50: class-lock traffic completes (and the condition is
        # released) before a session enters store.write_mutex (rank 40).
        self._mutex = RankedLock("sessions.class_locks")
        self._cond = RankedCondition(self._mutex)
        self._shared: Dict[str, Set[int]] = {}
        self._exclusive: Dict[str, int] = {}
        #: sessions currently blocked: sid -> (class, mode)
        self._waits: Dict[int, Tuple[str, str]] = {}
        #: deadlock victims that must abort at their next wakeup
        self._doomed: Set[int] = set()
        self.default_timeout = default_timeout
        self.deadlocks = 0
        self.timeouts = 0
        self.waits = 0

    # -- Acquisition -------------------------------------------------------------

    def acquire_shared(self, session_id: int, class_name: str,
                       timeout: Optional[float] = None) -> str:
        """Take (or keep) a shared lock; returns the grant kind —
        ``"held"`` (already sufficient), ``"new"``, or ``"upgraded"`` —
        for :meth:`rollback` bookkeeping."""
        return self._acquire(session_id, class_name, "shared", timeout)

    def acquire_exclusive(self, session_id: int, class_name: str,
                          timeout: Optional[float] = None) -> str:
        """Take (or upgrade to) an exclusive lock; returns the grant
        kind as in :meth:`acquire_shared`."""
        return self._acquire(session_id, class_name, "exclusive", timeout)

    def _acquire(self, session_id: int, class_name: str, mode: str,
                 timeout: Optional[float]) -> str:
        if timeout is None:
            timeout = self.default_timeout
        deadline = time.monotonic() + timeout if timeout > 0 else None
        waited = False
        with self._cond:
            try:
                while True:
                    # A doomed victim aborts before taking anything new —
                    # its locks are what the cycle is waiting for.
                    if session_id in self._doomed:
                        self._doomed.discard(session_id)
                        raise DeadlockError(
                            f"session {session_id} chosen as deadlock "
                            f"victim while locking class {class_name!r}")
                    blockers = self._blockers(session_id, class_name, mode)
                    if not blockers:
                        return self._grant(session_id, class_name, mode)
                    if timeout == 0:
                        # Legacy fail-fast mode: no waiting, no wait-graph.
                        raise LockConflict(
                            self._conflict_message(class_name, blockers))
                    if not waited:
                        waited = True
                        self.waits += 1
                    self._waits[session_id] = (class_name, mode)
                    victim = self._find_victim(session_id)
                    if victim is not None:
                        self.deadlocks += 1
                        if victim == session_id:
                            raise DeadlockError(
                                f"session {session_id} chosen as deadlock "
                                f"victim while locking class {class_name!r}")
                        self._doomed.add(victim)
                        self._cond.notify_all()
                        continue
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        self.timeouts += 1
                        raise LockTimeout(
                            f"session {session_id} timed out after "
                            f"{timeout:.3g}s waiting for class "
                            f"{class_name!r} "
                            f"({self._conflict_message(class_name, blockers)})")
                    # Predicate-loop wait (SIM304): a spurious wakeup —
                    # or a notify_all meant for another class — must not
                    # fall through to the grant check with stale state;
                    # wait_for re-evaluates under the lock until the
                    # session is doomed, unblocked, or the slice expires.
                    self._cond.wait_for(
                        lambda: session_id in self._doomed
                        or not self._blockers(session_id, class_name,
                                              mode),
                        timeout=min(remaining, _WAIT_SLICE))
            finally:
                self._waits.pop(session_id, None)

    def _blockers(self, session_id: int, class_name: str,
                  mode: str) -> Set[int]:
        """Sessions whose holdings are incompatible with the request."""
        blockers: Set[int] = set()
        holder = self._exclusive.get(class_name)
        if holder is not None and holder != session_id:
            blockers.add(holder)
        if mode == "exclusive":
            blockers |= self._shared.get(class_name, set()) - {session_id}
        return blockers

    def _grant(self, session_id: int, class_name: str, mode: str) -> str:
        readers = self._shared.setdefault(class_name, set())
        if mode == "shared":
            if (session_id in readers
                    or self._exclusive.get(class_name) == session_id):
                return "held"
            readers.add(session_id)
            return "new"
        if self._exclusive.get(class_name) == session_id:
            return "held"
        grant = "upgraded" if session_id in readers else "new"
        self._exclusive[class_name] = session_id
        readers.add(session_id)
        return grant

    def _conflict_message(self, class_name: str, blockers: Set[int]) -> str:
        holder = self._exclusive.get(class_name)
        if holder is not None and holder in blockers:
            return (f"class {class_name!r} is write-locked by session "
                    f"{holder}")
        return (f"class {class_name!r} is read-locked by sessions "
                f"{sorted(blockers)}")

    # -- Deadlock detection ------------------------------------------------------

    def _find_victim(self, start: int) -> Optional[int]:
        """DFS the waits-for graph for a cycle through ``start``; return
        the youngest session on the cycle, or None.  Doomed sessions are
        excluded — they are already aborting, so a cycle through them is
        already broken (and would otherwise be re-counted every wait
        slice)."""
        graph: Dict[int, List[int]] = {}
        for sid, (class_name, mode) in self._waits.items():
            if sid in self._doomed:
                continue
            blockers = self._blockers(sid, class_name, mode) - self._doomed
            if blockers:
                graph[sid] = sorted(blockers)
        path = [start]
        on_path = {start}

        def dfs(node: int) -> bool:
            for nxt in graph.get(node, ()):
                if nxt == start:
                    return True
                if nxt in on_path or nxt not in graph:
                    continue
                path.append(nxt)
                on_path.add(nxt)
                if dfs(nxt):
                    return True
                path.pop()
                on_path.discard(nxt)
            return False

        if dfs(start):
            return max(path)
        return None

    # -- Release -----------------------------------------------------------------

    def release_all(self, session_id: int) -> None:
        with self._cond:
            for readers in self._shared.values():
                readers.discard(session_id)
            for class_name in [c for c, holder in self._exclusive.items()
                               if holder == session_id]:
                del self._exclusive[class_name]
            self._doomed.discard(session_id)
            self._cond.notify_all()

    def rollback(self, session_id: int,
                 acquisitions: List[Tuple[str, str]]) -> None:
        """Undo a statement's partial lock acquisition after a mid-
        statement error: new locks are dropped, upgrades are demoted
        back to shared, pre-held locks are untouched."""
        with self._cond:
            for class_name, grant in reversed(acquisitions):
                if grant == "held":
                    continue
                if self._exclusive.get(class_name) == session_id:
                    del self._exclusive[class_name]
                if grant == "new":
                    readers = self._shared.get(class_name)
                    if readers is not None:
                        readers.discard(session_id)
            self._cond.notify_all()

    # -- Introspection -----------------------------------------------------------

    def holdings(self, session_id: int) -> Dict[str, str]:
        with self._mutex:
            held = {}
            for class_name, holder in self._exclusive.items():
                if holder == session_id:
                    held[class_name] = "exclusive"
            for class_name, readers in self._shared.items():
                if session_id in readers and class_name not in held:
                    held[class_name] = "shared"
            return held

    def statistics(self) -> Dict[str, int]:
        with self._mutex:
            return {
                "deadlocks": self.deadlocks,
                "timeouts": self.timeouts,
                "waits": self.waits,
                "waiting_now": len(self._waits),
                "exclusive_held": len(self._exclusive),
                "shared_held": sum(1 for r in self._shared.values() if r),
            }


class Session:
    """One client's transactional view of a shared database.

    Each session owns a transaction that opens lazily at its first
    update statement and closes at :meth:`commit` / :meth:`abort`.
    Sessions are safe to drive from concurrent threads (one thread per
    session): updates serialize on class locks plus the store's write
    mutex; MVCC Retrieves run lock-free against a pinned snapshot.

    Parameters
    ----------
    mvcc:
        snapshot-isolated Retrieves (default).  ``False`` restores
        shared-lock reads — exact legacy semantics, including shared
        read-cache population.
    lock_timeout:
        per-session lock-wait timeout in seconds; ``None`` uses the
        lock manager's default, ``0`` means fail-fast.
    max_deadlock_retries:
        automatic replays of a single statement aborted as a deadlock
        victim (only when that statement opened the transaction — an
        older victim transaction cannot be replayed and the error
        propagates to the caller).
    """

    def __init__(self, database, mvcc: bool = True,
                 lock_timeout: Optional[float] = None,
                 max_deadlock_retries: int = 3):
        counter = getattr(database, "_session_ids", None)
        if counter is None:
            counter = database._session_ids = itertools.count(1)
        self.session_id = next(counter)
        self.database = database
        locks = getattr(database, "_lock_manager", None)
        if locks is None:
            locks = database._lock_manager = LockManager()
        self.locks: LockManager = locks
        self.mvcc = mvcc
        self.lock_timeout = lock_timeout
        self.max_deadlock_retries = max_deadlock_retries
        #: statements replayed after this session lost a deadlock
        self.deadlock_retries = 0
        self._transaction = None
        self._statements_in_txn = 0
        self._retry_rng = random.Random(self.session_id * 7919)
        if mvcc:
            database.store.enable_mvcc()

    # -- Statements -------------------------------------------------------------

    def execute(self, text, timeout: Optional[float] = None):
        """Run one DML statement.  ``timeout`` bounds this statement's
        lock waits (overriding the session's ``lock_timeout``)."""
        statement = parse_dml(text) if isinstance(text, str) else text
        if self.mvcc and isinstance(statement, RetrieveQuery):
            return self._snapshot_retrieve(statement)
        return self._locked_statement(statement, timeout)

    def query(self, text, timeout: Optional[float] = None):
        return self.execute(text, timeout)

    def _snapshot_retrieve(self, query: RetrieveQuery):
        """Lock-free Retrieve at a pinned commit epoch.  Runs on a
        private executor so per-query memo shards can never leak rows
        across snapshots."""
        database = self.database
        store = database.store
        txn = self._transaction
        txn_id = txn.transaction_id if txn is not None and txn.active \
            else None
        snap = store.begin_snapshot(txn_id)
        try:
            with store.snapshot_scope(snap):
                return database._run_retrieve(
                    query, executor=database._statement_executor())
        finally:
            store.end_snapshot(snap)

    def _locked_statement(self, statement, timeout: Optional[float]):
        attempt = 0
        while True:
            try:
                return self._execute_locked(statement, timeout)
            except DeadlockError as exc:
                if not getattr(exc, "retryable", False) \
                        or attempt >= self.max_deadlock_retries:
                    raise
                attempt += 1
                self.deadlock_retries += 1
                time.sleep(self._backoff(attempt))

    def _backoff(self, attempt: int) -> float:
        """Bounded exponential backoff with seeded jitter (the
        ``RetryPolicy`` shape, scaled for lock contention)."""
        base = min(0.002 * (2 ** (attempt - 1)), 0.05)
        return base * (0.5 + self._retry_rng.random())

    def _execute_locked(self, statement, timeout: Optional[float]):
        if timeout is None:
            timeout = self.lock_timeout
        # "Fresh" = this statement would open the transaction, so a
        # deadlock abort loses no prior work and the statement can be
        # replayed automatically.
        fresh = self._transaction is None or not self._transaction.active
        acquired: List[Tuple[str, str]] = []
        try:
            self._lock_for(statement, acquired, timeout)
        except DeadlockError as exc:
            # Victim protocol: abort the WHOLE transaction — the cycle
            # is waiting for locks this session already holds.
            self.abort()
            exc.retryable = fresh
            raise
        except BaseException:
            # Mid-statement acquisition failure (timeout, qualification
            # error, …): drop only what this statement took; the
            # transaction and its earlier locks survive.
            self.locks.rollback(self.session_id, acquired)
            raise
        txn = self._ensure_transaction()
        store = self.database.store
        with store.write_mutex:
            with store.transactions.activate(txn):
                if isinstance(statement, RetrieveQuery):
                    result = self.database._run_retrieve(statement)
                else:
                    result = self.database.updates.execute(statement)
        self._statements_in_txn += 1
        return result

    # -- Transaction boundaries --------------------------------------------------

    def commit(self) -> None:
        txn = self._transaction
        store = self.database.store
        try:
            if txn is not None and txn.active:
                with store.write_mutex:
                    with store.transactions.activate(txn):
                        try:
                            self.database.constraints.before_commit()
                        except BaseException:
                            # A failed deferred-constraint check must not
                            # leave the transaction open holding locks.
                            self.database.constraints.reset_deferred()
                            store.transactions.abort_detached(txn)
                            raise
                        store.transactions.commit_detached(txn)
        finally:
            self._transaction = None
            self._statements_in_txn = 0
            self.locks.release_all(self.session_id)

    def abort(self) -> None:
        txn = self._transaction
        store = self.database.store
        try:
            if txn is not None and txn.active:
                with store.write_mutex:
                    with store.transactions.activate(txn):
                        self.database.constraints.reset_deferred()
                        store.transactions.abort_detached(txn)
        finally:
            self._transaction = None
            self._statements_in_txn = 0
            self.locks.release_all(self.session_id)

    def holdings(self) -> Dict[str, str]:
        return self.locks.holdings(self.session_id)

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        if exc_type is None:
            self.commit()
        else:
            self.abort()
        return False

    # -- Internals ---------------------------------------------------------------

    def _ensure_transaction(self):
        if self._transaction is None or not self._transaction.active:
            self._transaction = \
                self.database.store.transactions.begin_detached()
            self._statements_in_txn = 0
        return self._transaction

    def _lock_for(self, statement, acquired: List[Tuple[str, str]],
                  timeout: Optional[float]) -> None:
        schema = self.database.schema
        if isinstance(statement, RetrieveQuery):
            for class_name in self._retrieve_classes(statement):
                grant = self.locks.acquire_shared(self.session_id,
                                                  class_name, timeout)
                acquired.append((class_name, grant))
            return
        if isinstance(statement, InsertStatement):
            base = schema.get_class(statement.class_name).base_class_name
            touched = {base, statement.class_name,
                       *schema.graph.insertion_path(base,
                                                    statement.class_name)}
            touched |= self._assignment_partners(statement.class_name,
                                                 statement.assignments)
        elif isinstance(statement, ModifyStatement):
            touched = {statement.class_name}
            touched |= self._assignment_partners(statement.class_name,
                                                 statement.assignments)
        elif isinstance(statement, DeleteStatement):
            # Deletion cascades to subclass roles and drops every EVA
            # instance of the removed roles: lock all partner classes.
            touched = {statement.class_name}
            touched.update(schema.graph.descendants(statement.class_name))
            for class_name in list(touched):
                for eva in schema.get_class(class_name).immediate_evas():
                    touched.add(eva.range_class_name)
        else:
            raise SimError(f"cannot lock for {statement!r}")
        for class_name in sorted(touched):
            grant = self.locks.acquire_exclusive(self.session_id,
                                                 class_name, timeout)
            acquired.append((class_name, grant))

    def _assignment_partners(self, class_name: str, assignments) -> set:
        """Range classes of the EVAs an assignment list writes."""
        schema = self.database.schema
        sim_class = schema.get_class(class_name)
        partners = set()
        for assignment in assignments:
            if not sim_class.has_attribute(assignment.attribute):
                continue
            attr = sim_class.attribute(assignment.attribute)
            if attr.is_eva:
                partners.add(attr.range_class_name)
        return partners

    def _retrieve_classes(self, query: RetrieveQuery) -> List[str]:
        tree = self.database.qualifier.resolve_retrieve(query)
        classes = set()

        def visit(node):
            if node.class_name:
                classes.add(node.class_name)
            for child in node.children.values():
                visit(child)
        for root in tree.roots:
            visit(root)
        return sorted(classes)

    def __repr__(self):
        state = "open" if self._transaction and self._transaction.active \
            else "idle"
        mode = "mvcc" if self.mvcc else "2pl-read"
        return f"<Session #{self.session_id} {state} {mode}>"
