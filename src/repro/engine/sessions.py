"""Multi-session concurrency control.

The paper's SIM leans on DMSII for concurrent transactions (§1: SIM is
"capable of supporting commercial application systems ... that require
very high transaction processing rates").  This module supplies the
substrate's equivalent: multiple *sessions* over one database — now from
concurrent threads — isolated by strict two-phase locking with
**multi-granularity** (class + entity) locks, plus MVCC snapshot
isolation for Retrieves:

* a Modify/Delete whose qualification names specific entities takes an
  *intention-exclusive* (IX) lock on the class and exclusive (X) locks
  on just those entities, keyed ``(class, surrogate)`` — so two
  sessions updating **disjoint entities of one class** no longer
  serialize.  Inserts, cascading deletes, unqualified updates and EVA
  assignments fall back to a class-level X lock, which the IX locks
  make mutually exclusive with every entity-granular writer;
* all locks are held until COMMIT/ABORT (strict 2PL); a conflicting
  request *blocks* on a condition variable until the holder releases,
  the configurable timeout expires (:class:`LockTimeout`), or
  waits-for-graph cycle detection picks a deadlock victim
  (:class:`DeadlockError` — the youngest session in the cycle,
  deterministically);
* a session aborted as a deadlock victim while opening a fresh
  transaction is retried automatically with bounded, seeded backoff
  (the shape of :class:`repro.storage.faults.RetryPolicy`);
* a Retrieve on an MVCC session takes NO locks at all: it pins a commit
  epoch and reads pre-image version chains
  (:mod:`repro.mapper.versions`), so readers never block writers and
  writers never block readers.  ``Session(db, mvcc=False)`` restores
  shared-lock Retrieves (which run on a private executor and take no
  store latch, so two shared-lock readers overlap), and
  ``lock_timeout=0`` restores the legacy fail-fast behavior (immediate
  :class:`LockConflict`).

Statement execution no longer funnels through a store-wide write mutex:
each store mutator takes the short per-unit latch of the single storage
unit it writes (``RecordFile.latch``), and only the commit point — the
MVCC epoch bump plus the WAL commit record — runs under the store's
``commit_latch``.  Two entity-granular writers to one class therefore
interleave between record operations; their lock sets guarantee the
operations themselves touch different records.

Entity-granular qualification is resolved *before* the locks are taken
(a latch-free read), so the resolved set is only a hint: execution
re-runs the qualification under the locks and restricts the statement
to the intersection.  An entity that started matching after resolution
is skipped (it was never locked); one that stopped matching is simply
not touched.

Example::

    alice, bob = Session(db), Session(db)
    alice.execute('Modify course(credits := 5) Where course-no = 1')
    bob.query('From course Retrieve title')     # snapshot: sees credits=3
    alice.commit()
    bob.query('From course Retrieve title')     # now sees credits=5
"""

from __future__ import annotations

import itertools
import random
import threading
import time
from typing import Dict, List, Optional, Set, Tuple

from repro.dml.ast import (
    DeleteStatement,
    InsertStatement,
    ModifyStatement,
    RetrieveQuery,
)
from repro.dml.parser import parse_dml
from repro.engine.lockdep import RankedCondition, RankedLock
from repro.engine.updates import UpdateEngine
from repro.errors import SimError


class LockConflict(SimError):
    """A lock request conflicts with another session's holding."""


class LockTimeout(LockConflict):
    """A lock wait exceeded its timeout (the holder may just be slow —
    the statement failed but the transaction is still open)."""


class DeadlockError(LockConflict):
    """This session was chosen as a deadlock victim; its transaction has
    been (or must be) aborted to break the cycle."""


#: upper bound on one condition wait, so a doomed victim notices quickly
#: even if a notify is lost to timing
_WAIT_SLICE = 0.1

#: held mode -> requested modes it already satisfies
_COVERS: Dict[str, frozenset] = {
    "IS": frozenset({"IS"}),
    "IX": frozenset({"IS", "IX"}),
    "S": frozenset({"IS", "S"}),
    "SIX": frozenset({"IS", "IX", "S", "SIX"}),
    "X": frozenset({"IS", "IX", "S", "SIX", "X"}),
}

#: requested mode -> held modes (of OTHER sessions) compatible with it —
#: the classic multi-granularity compatibility matrix (Gray et al.)
_COMPAT: Dict[str, frozenset] = {
    "IS": frozenset({"IS", "IX", "S", "SIX"}),
    "IX": frozenset({"IS", "IX"}),
    "S": frozenset({"IS", "S"}),
    "SIX": frozenset({"IS"}),
    "X": frozenset(),
}

#: internal mode -> introspection name
_MODE_NAMES: Dict[str, str] = {
    "IS": "intention-shared",
    "IX": "intention-exclusive",
    "S": "shared",
    "SIX": "shared-intention-exclusive",
    "X": "exclusive",
}


def _combine(held: str, requested: str) -> str:
    """Least mode at least as strong as both (the upgrade lattice)."""
    if held == requested:
        return held
    pair = {held, requested}
    if "X" in pair:
        return "X"
    if "SIX" in pair or pair == {"IX", "S"}:
        return "SIX"
    if pair == {"IS", "IX"}:
        return "IX"
    return "S"      # {IS, S}


def _key_label(key) -> str:
    if isinstance(key, tuple):
        return f"entity {key[1]} of class {key[0]!r}"
    return f"class {key!r}"


class LockManager:
    """Blocking multi-granularity locks: classes and single entities.

    Lock keys are either a class name (``str``) or an entity key
    ``(class_name, surrogate)``; each key maps to the sessions holding
    it and their modes.  One mutex + condition covers all keys: lock
    traffic is a few acquisitions per statement, so a global condition
    with ``notify_all`` on every release is simpler than per-key queues
    and plenty fast.  Deadlocks are resolved by detection, not timeout:
    every time a session is about to wait, it searches the waits-for
    graph for a cycle through itself and dooms the *youngest* session
    in the cycle (largest session id — deterministic under a fixed
    arrival order, and the youngest has the least work to redo).

    Compatibility is checked per key only: the multi-granularity
    protocol (take IX on the class before X on one of its entities)
    is what makes a class-level X block entity-level writers and vice
    versa.
    """

    def __init__(self, default_timeout: float = 10.0):
        # Rank 50: class/entity-lock traffic completes (and the
        # condition is released) before a statement's store mutations
        # take any per-unit latch (rank 42).
        self._mutex = RankedLock("sessions.class_locks")
        self._cond = RankedCondition(self._mutex)
        #: lock key -> {session id -> held mode}; entries are pruned as
        #: soon as their last holder releases, so the map stays bounded
        #: by the *live* lock population, not by every key ever touched
        self._holders: Dict[object, Dict[int, str]] = {}
        #: sessions currently blocked: sid -> (key, mode)
        self._waits: Dict[int, Tuple[object, str]] = {}
        #: deadlock victims that must abort at their next wakeup
        self._doomed: Set[int] = set()
        self.default_timeout = default_timeout
        self.deadlocks = 0
        self.timeouts = 0
        self.waits = 0

    # -- Acquisition -------------------------------------------------------------

    def acquire_shared(self, session_id: int, class_name: str,
                       timeout: Optional[float] = None) -> str:
        """Take (or keep) a class-level shared lock; returns the grant
        kind — ``"held"`` (already sufficient), ``"new"``, or
        ``"upgraded"`` — for :meth:`rollback` bookkeeping."""
        return self.acquire(session_id, class_name, "S", timeout)[0]

    def acquire_exclusive(self, session_id: int, class_name: str,
                          timeout: Optional[float] = None) -> str:
        """Take (or upgrade to) a class-level exclusive lock; returns
        the grant kind as in :meth:`acquire_shared`."""
        return self.acquire(session_id, class_name, "X", timeout)[0]

    def acquire(self, session_id: int, key, mode: str,
                timeout: Optional[float] = None
                ) -> Tuple[str, Optional[str]]:
        """Take (or strengthen to) ``mode`` on ``key``; returns
        ``(grant, previous_mode)`` — the pair :meth:`rollback` needs to
        undo a partial statement exactly."""
        if mode not in _COMPAT:
            raise SimError(f"unknown lock mode {mode!r}")
        if timeout is None:
            timeout = self.default_timeout
        deadline = time.monotonic() + timeout if timeout > 0 else None
        waited = False
        with self._cond:
            try:
                while True:
                    # A doomed victim aborts before taking anything new —
                    # its locks are what the cycle is waiting for.
                    if session_id in self._doomed:
                        self._doomed.discard(session_id)
                        raise DeadlockError(
                            f"session {session_id} chosen as deadlock "
                            f"victim while locking {_key_label(key)}")
                    blockers = self._blockers(session_id, key, mode)
                    if not blockers:
                        return self._grant(session_id, key, mode)
                    if timeout == 0:
                        # Legacy fail-fast mode: no waiting, no wait-graph.
                        raise LockConflict(
                            self._conflict_message(key, blockers))
                    if not waited:
                        waited = True
                        self.waits += 1
                    self._waits[session_id] = (key, mode)
                    victim = self._find_victim(session_id)
                    if victim is not None:
                        self.deadlocks += 1
                        if victim == session_id:
                            raise DeadlockError(
                                f"session {session_id} chosen as deadlock "
                                f"victim while locking {_key_label(key)}")
                        self._doomed.add(victim)
                        self._cond.notify_all()
                        continue
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        self.timeouts += 1
                        raise LockTimeout(
                            f"session {session_id} timed out after "
                            f"{timeout:.3g}s waiting for "
                            f"{_key_label(key)} "
                            f"({self._conflict_message(key, blockers)})")
                    # Predicate-loop wait (SIM304): a spurious wakeup —
                    # or a notify_all meant for another key — must not
                    # fall through to the grant check with stale state;
                    # wait_for re-evaluates under the lock until the
                    # session is doomed, unblocked, or the slice expires.
                    self._cond.wait_for(
                        lambda: session_id in self._doomed
                        or not self._blockers(session_id, key, mode),
                        timeout=min(remaining, _WAIT_SLICE))
            finally:
                self._waits.pop(session_id, None)

    def _blockers(self, session_id: int, key, mode: str) -> Set[int]:
        """Sessions whose holdings on ``key`` are incompatible."""
        holders = self._holders.get(key)
        if not holders:
            return set()
        compatible = _COMPAT[mode]
        return {sid for sid, held in holders.items()
                if sid != session_id and held not in compatible}

    def _grant(self, session_id: int, key, mode: str
               ) -> Tuple[str, Optional[str]]:
        holders = self._holders.setdefault(key, {})
        previous = holders.get(session_id)
        if previous is not None and mode in _COVERS[previous]:
            return "held", previous
        holders[session_id] = _combine(previous, mode) \
            if previous is not None else mode
        return ("upgraded" if previous is not None else "new"), previous

    def _conflict_message(self, key, blockers: Set[int]) -> str:
        holders = self._holders.get(key, {})
        label = _key_label(key)
        writer = next((sid for sid in sorted(blockers)
                       if holders.get(sid) == "X"), None)
        if writer is not None:
            return f"{label} is write-locked by session {writer}"
        if all(holders.get(sid) in ("S", "IS") for sid in blockers):
            return f"{label} is read-locked by sessions {sorted(blockers)}"
        modes = ", ".join(
            f"{sid}:{_MODE_NAMES.get(holders.get(sid), '?')}"
            for sid in sorted(blockers))
        return f"{label} is locked by sessions [{modes}]"

    # -- Deadlock detection ------------------------------------------------------

    def _find_victim(self, start: int) -> Optional[int]:
        """DFS the waits-for graph for a cycle through ``start``; return
        the youngest session on the cycle, or None.  Doomed sessions are
        excluded — they are already aborting, so a cycle through them is
        already broken (and would otherwise be re-counted every wait
        slice)."""
        graph: Dict[int, List[int]] = {}
        for sid, (key, mode) in self._waits.items():
            if sid in self._doomed:
                continue
            blockers = self._blockers(sid, key, mode) - self._doomed
            if blockers:
                graph[sid] = sorted(blockers)
        path = [start]
        on_path = {start}

        def dfs(node: int) -> bool:
            for nxt in graph.get(node, ()):
                if nxt == start:
                    return True
                if nxt in on_path or nxt not in graph:
                    continue
                path.append(nxt)
                on_path.add(nxt)
                if dfs(nxt):
                    return True
                path.pop()
                on_path.discard(nxt)
            return False

        if dfs(start):
            return max(path)
        return None

    # -- Release -----------------------------------------------------------------

    def release_all(self, session_id: int) -> None:
        with self._cond:
            for key in [k for k, holders in self._holders.items()
                        if session_id in holders]:
                holders = self._holders[key]
                del holders[session_id]
                if not holders:
                    # Prune, or the map grows one empty entry per key
                    # ever locked (entity keys would make that unbounded).
                    del self._holders[key]
            self._doomed.discard(session_id)
            self._cond.notify_all()

    def rollback(self, session_id: int, acquisitions: List[tuple]) -> None:
        """Undo a statement's partial lock acquisition after a mid-
        statement error: new locks are dropped, upgrades are demoted
        back to the mode held before, pre-held locks are untouched.

        Accepts the 3-tuples ``(key, grant, previous_mode)`` that
        :meth:`acquire` hands back, and — for older callers — legacy
        2-tuples ``(class_name, grant)``, where an upgrade demotes to
        shared (the only upgrade the two-mode manager had)."""
        with self._cond:
            for acquisition in reversed(acquisitions):
                if len(acquisition) == 2:
                    key, grant = acquisition
                    previous = "S"
                else:
                    key, grant, previous = acquisition
                if grant == "held":
                    continue
                holders = self._holders.get(key)
                if holders is None or session_id not in holders:
                    continue
                if grant == "new":
                    del holders[session_id]
                    if not holders:
                        del self._holders[key]
                else:       # upgraded
                    holders[session_id] = previous
            self._cond.notify_all()

    # -- Introspection -----------------------------------------------------------

    def holdings(self, session_id: int) -> Dict[str, str]:
        """Class-level holdings, mode names spelled out (``"exclusive"``,
        ``"intention-exclusive"``, …)."""
        with self._mutex:
            return {key: _MODE_NAMES[holders[session_id]]
                    for key, holders in self._holders.items()
                    if not isinstance(key, tuple)
                    and session_id in holders}

    def entity_holdings(self, session_id: int
                        ) -> Dict[Tuple[str, int], str]:
        """Entity-level holdings: ``(class, surrogate) -> mode name``."""
        with self._mutex:
            return {key: _MODE_NAMES[holders[session_id]]
                    for key, holders in self._holders.items()
                    if isinstance(key, tuple) and session_id in holders}

    def statistics(self) -> Dict[str, int]:
        with self._mutex:
            class_entries = [(key, holders)
                             for key, holders in self._holders.items()
                             if not isinstance(key, tuple)]
            return {
                "deadlocks": self.deadlocks,
                "timeouts": self.timeouts,
                "waits": self.waits,
                "waiting_now": len(self._waits),
                "exclusive_held": sum(
                    1 for _, h in class_entries if "X" in h.values()),
                "shared_held": sum(
                    1 for _, h in class_entries
                    if any(m in ("S", "SIX") for m in h.values())),
                "intention_held": sum(
                    1 for _, h in class_entries
                    if any(m in ("IS", "IX", "SIX") for m in h.values())),
                "entity_exclusive_held": sum(
                    1 for key, h in self._holders.items()
                    if isinstance(key, tuple) and "X" in h.values()),
                "tracked_keys": len(self._holders),
            }


#: guards the lazy re-creation of a database's session-id counter and
#: lock manager (only reachable for Database-like objects built without
#: __init__'s eager wiring, e.g. test doubles) — two racing first
#: Sessions must not each install their own LockManager
_FALLBACK_INIT_LOCK = threading.Lock()


class Session:
    """One client's transactional view of a shared database.

    Each session owns a transaction that opens lazily at its first
    update statement and closes at :meth:`commit` / :meth:`abort`.
    Sessions are safe to drive from concurrent threads (one thread per
    session): updates isolate via class/entity locks, store mutations
    via short per-unit latches; MVCC Retrieves run lock-free against a
    pinned snapshot.

    Parameters
    ----------
    mvcc:
        snapshot-isolated Retrieves (default).  ``False`` restores
        shared-lock reads.
    lock_timeout:
        per-session lock-wait timeout in seconds; ``None`` uses the
        lock manager's default, ``0`` means fail-fast.
    max_deadlock_retries:
        automatic replays of a single statement aborted as a deadlock
        victim (only when that statement opened the transaction — an
        older victim transaction cannot be replayed and the error
        propagates to the caller).
    entity_locks:
        lock qualified Modify/Delete statements at entity granularity
        (default).  ``False`` restores class-granularity exclusive
        locks for every update — the legacy contention shape.
    """

    def __init__(self, database, mvcc: bool = True,
                 lock_timeout: Optional[float] = None,
                 max_deadlock_retries: int = 3,
                 entity_locks: bool = True):
        counter = getattr(database, "_session_ids", None)
        locks = getattr(database, "_lock_manager", None)
        if counter is None or locks is None:
            with _FALLBACK_INIT_LOCK:
                counter = getattr(database, "_session_ids", None)
                if counter is None:
                    counter = database._session_ids = itertools.count(1)
                locks = getattr(database, "_lock_manager", None)
                if locks is None:
                    locks = database._lock_manager = LockManager()
        self.session_id = next(counter)
        self.database = database
        self.locks: LockManager = locks
        self.mvcc = mvcc
        self.lock_timeout = lock_timeout
        self.max_deadlock_retries = max_deadlock_retries
        self.entity_locks = entity_locks
        #: statements replayed after this session lost a deadlock
        self.deadlock_retries = 0
        self._transaction = None
        self._statements_in_txn = 0
        self._retry_rng = random.Random(self.session_id * 7919)
        if mvcc:
            database.store.enable_mvcc()

    # -- Statements -------------------------------------------------------------

    def execute(self, text, timeout: Optional[float] = None):
        """Run one DML statement.  ``timeout`` bounds this statement's
        lock waits (overriding the session's ``lock_timeout``)."""
        statement = parse_dml(text) if isinstance(text, str) else text
        if self.mvcc and isinstance(statement, RetrieveQuery):
            return self._snapshot_retrieve(statement)
        return self._locked_statement(statement, timeout)

    def query(self, text, timeout: Optional[float] = None):
        return self.execute(text, timeout)

    def _snapshot_retrieve(self, query: RetrieveQuery):
        """Lock-free Retrieve at a pinned commit epoch.  Runs on a
        private executor so per-query memo shards can never leak rows
        across snapshots."""
        database = self.database
        store = database.store
        txn = self._transaction
        txn_id = txn.transaction_id if txn is not None and txn.active \
            else None
        snap = store.begin_snapshot(txn_id)
        try:
            with store.snapshot_scope(snap):
                return database._run_retrieve(
                    query, executor=database._statement_executor())
        finally:
            store.end_snapshot(snap)

    def _locked_statement(self, statement, timeout: Optional[float]):
        attempt = 0
        while True:
            try:
                return self._execute_locked(statement, timeout)
            except DeadlockError as exc:
                if not getattr(exc, "retryable", False) \
                        or attempt >= self.max_deadlock_retries:
                    raise
                attempt += 1
                self.deadlock_retries += 1
                time.sleep(self._backoff(attempt))

    def _backoff(self, attempt: int) -> float:
        """Bounded exponential backoff with seeded jitter (the
        ``RetryPolicy`` shape, scaled for lock contention)."""
        base = min(0.002 * (2 ** (attempt - 1)), 0.05)
        return base * (0.5 + self._retry_rng.random())

    def _execute_locked(self, statement, timeout: Optional[float]):
        if timeout is None:
            timeout = self.lock_timeout
        # "Fresh" = this statement would open the transaction, so a
        # deadlock abort loses no prior work and the statement can be
        # replayed automatically.
        fresh = self._transaction is None or not self._transaction.active
        acquired: List[tuple] = []
        try:
            restrict = self._lock_for(statement, acquired, timeout)
        except DeadlockError as exc:
            # Victim protocol: abort the WHOLE transaction — the cycle
            # is waiting for locks this session already holds.
            self.abort()
            exc.retryable = fresh
            raise
        except BaseException:
            # Mid-statement acquisition failure (timeout, qualification
            # error, …): drop only what this statement took; the
            # transaction and its earlier locks survive.
            self.locks.rollback(self.session_id, acquired)
            raise
        database = self.database
        store = database.store
        txn = self._ensure_transaction()
        # Per-statement executor and engine: no shared memo/evaluator
        # state between concurrent statements, and — unlike the old
        # store-wide write mutex — no statement-scope serialization at
        # all.  Store mutators latch the one unit they write.
        executor = database._statement_executor()
        with store.transactions.activate(txn):
            if isinstance(statement, RetrieveQuery):
                result = database._run_retrieve(statement,
                                                executor=executor)
            else:
                engine = UpdateEngine(executor,
                                      constraints=database.constraints)
                result = engine.execute(statement, restrict_to=restrict)
        self._statements_in_txn += 1
        return result

    # -- Transaction boundaries --------------------------------------------------

    def commit(self) -> None:
        txn = self._transaction
        database = self.database
        store = database.store
        try:
            if txn is not None and txn.active:
                with store.transactions.activate(txn):
                    try:
                        database.constraints.before_commit(
                            executor=database._statement_executor())
                    except BaseException:
                        # A failed deferred-constraint check must not
                        # leave the transaction open holding locks.
                        database.constraints.reset_deferred()
                        store.transactions.abort_detached(txn)
                        raise
                    # The commit critical section: the MVCC epoch bump,
                    # the data-page flush and the WAL commit record move
                    # as one atomic unit relative to other committers.
                    with store.commit_latch:
                        store.transactions.commit_detached(txn)
        finally:
            self._transaction = None
            self._statements_in_txn = 0
            self.locks.release_all(self.session_id)

    def abort(self) -> None:
        txn = self._transaction
        store = self.database.store
        try:
            if txn is not None and txn.active:
                # No store-wide section: undo replay goes through the
                # normal mutators, each latching the unit it restores,
                # and this session's exclusive locks still cover every
                # record the transaction touched.
                with store.transactions.activate(txn):
                    self.database.constraints.reset_deferred()
                    store.transactions.abort_detached(txn)
        finally:
            self._transaction = None
            self._statements_in_txn = 0
            self.locks.release_all(self.session_id)

    def holdings(self) -> Dict[str, str]:
        return self.locks.holdings(self.session_id)

    def entity_holdings(self) -> Dict[Tuple[str, int], str]:
        return self.locks.entity_holdings(self.session_id)

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        if exc_type is None:
            self.commit()
        else:
            self.abort()
        return False

    # -- Internals ---------------------------------------------------------------

    def _ensure_transaction(self):
        if self._transaction is None or not self._transaction.active:
            self._transaction = \
                self.database.store.transactions.begin_detached()
            self._statements_in_txn = 0
        return self._transaction

    def _lock_for(self, statement, acquired: List[tuple],
                  timeout: Optional[float]) -> Optional[List[int]]:
        """Acquire this statement's locks; appends ``(key, grant,
        previous_mode)`` records to ``acquired`` for partial rollback.

        Returns the list of entity-locked surrogates when the statement
        locked at entity granularity (execution must restrict itself to
        them), else None (class-level exclusive fallback).
        """
        schema = self.database.schema
        if isinstance(statement, RetrieveQuery):
            for class_name in self._retrieve_classes(statement):
                acquired.append(
                    (class_name,) + self.locks.acquire(
                        self.session_id, class_name, "S", timeout))
            return None
        if isinstance(statement, InsertStatement):
            # Inserts create entities the qualification cannot name yet
            # (a phantom by construction): always class-exclusive.
            base = schema.get_class(statement.class_name).base_class_name
            touched = {base, statement.class_name,
                       *schema.graph.insertion_path(base,
                                                    statement.class_name)}
            touched |= self._assignment_partners(statement.class_name,
                                                 statement.assignments)
        elif isinstance(statement, ModifyStatement):
            if (self.entity_locks and statement.where is not None
                    and not self._assignment_partners(
                        statement.class_name, statement.assignments)):
                return self._lock_entities(statement.class_name,
                                           statement.where, acquired,
                                           timeout)
            touched = {statement.class_name}
            touched |= self._assignment_partners(statement.class_name,
                                                 statement.assignments)
        elif isinstance(statement, DeleteStatement):
            # Deletion cascades to subclass roles and drops every EVA
            # instance of the removed roles: entity granularity is only
            # safe when there is nothing to cascade into.
            if (self.entity_locks and statement.where is not None
                    and not schema.graph.descendants(statement.class_name)
                    and not schema.get_class(
                        statement.class_name).immediate_evas()):
                return self._lock_entities(statement.class_name,
                                           statement.where, acquired,
                                           timeout)
            touched = {statement.class_name}
            touched.update(schema.graph.descendants(statement.class_name))
            for class_name in list(touched):
                for eva in schema.get_class(class_name).immediate_evas():
                    touched.add(eva.range_class_name)
        else:
            raise SimError(f"cannot lock for {statement!r}")
        for class_name in sorted(touched):
            acquired.append(
                (class_name,) + self.locks.acquire(
                    self.session_id, class_name, "X", timeout))
        return None

    def _lock_entities(self, class_name: str, where, acquired: List[tuple],
                       timeout: Optional[float]) -> List[int]:
        """IX on the class, X on each entity the qualification names.

        Resolution runs latch-free *before* any lock is taken, so it is
        a hint; the caller re-selects under the locks and intersects.
        Surrogates are locked in sorted order, so two sessions after
        overlapping entity sets collide in a deterministic order."""
        targets = self._resolve_targets(class_name, where)
        acquired.append(
            (class_name,) + self.locks.acquire(
                self.session_id, class_name, "IX", timeout))
        for surrogate in targets:
            key = (class_name, surrogate)
            acquired.append(
                (key,) + self.locks.acquire(
                    self.session_id, key, "X", timeout))
        return targets

    def _resolve_targets(self, class_name: str, where) -> List[int]:
        """Pre-lock qualification: which entities would this statement
        touch right now?  A private executor keeps memo state off the
        shared one; the read takes no latch (record slots are replaced
        copy-on-write, never mutated in place)."""
        executor = self.database._statement_executor()
        return sorted(executor.select_entities(class_name, where))

    def _assignment_partners(self, class_name: str, assignments) -> set:
        """Range classes of the EVAs an assignment list writes."""
        schema = self.database.schema
        sim_class = schema.get_class(class_name)
        partners = set()
        for assignment in assignments:
            if not sim_class.has_attribute(assignment.attribute):
                continue
            attr = sim_class.attribute(assignment.attribute)
            if attr.is_eva:
                partners.add(attr.range_class_name)
        return partners

    def _retrieve_classes(self, query: RetrieveQuery) -> List[str]:
        tree = self.database.qualifier.resolve_retrieve(query)
        classes = set()

        def visit(node):
            if node.class_name:
                classes.add(node.class_name)
            for child in node.children.values():
                visit(child)
        for root in tree.roots:
            visit(root)
        return sorted(classes)

    def __repr__(self):
        state = "open" if self._transaction and self._transaction.active \
            else "idle"
        mode = "mvcc" if self.mvcc else "2pl-read"
        return f"<Session #{self.session_id} {state} {mode}>"
