"""The Query Driver: executing DML over the Mapper (paper Figure 1).

* :mod:`repro.engine.access` — entity access helpers and range-variable
  domains (including the dummy-instance rule for TYPE 3 variables);
* :mod:`repro.engine.expressions` — 3-valued expression evaluation,
  aggregates with delimited scope, quantifiers, ISA, pattern matching;
* :mod:`repro.engine.executor` — the nested-loop semantics program of
  §4.5 over the labelled query tree;
* :mod:`repro.engine.output` — fully tabular and fully structured output;
* :mod:`repro.engine.updates` — INSERT / MODIFY / DELETE semantics (§4.8);
* :mod:`repro.engine.constraints` — VERIFY enforcement via trigger
  detection (§3.3).
"""

from repro.engine.access import DUMMY, EntityAccessor
from repro.engine.executor import QueryExecutor
from repro.engine.output import ResultSet, StructuredRecord
from repro.engine.updates import UpdateEngine
from repro.engine.constraints import ConstraintManager
from repro.engine.sessions import (DeadlockError, LockConflict, LockManager,
                                   LockTimeout, Session)

__all__ = [
    "DUMMY",
    "EntityAccessor",
    "QueryExecutor",
    "ResultSet",
    "StructuredRecord",
    "UpdateEngine",
    "ConstraintManager",
    "LockConflict",
    "LockTimeout",
    "DeadlockError",
    "LockManager",
    "Session",
]
