"""INSERT / MODIFY / DELETE semantics (paper §4.8).

* INSERT without FROM creates a new entity with all superclass roles up to
  the base class; INSERT ... FROM extends an existing entity's roles
  downward, adding intermediate roles "as needed".
* MODIFY updates immediate and inherited attributes; EVA assignment uses
  ``<object> WITH (<bool>)`` selectors and INCLUDE/EXCLUDE for MV
  attributes.
* DELETE removes the entity's role in the named class and all its subclass
  roles; superclass roles survive.  Immediate EVAs of removed roles are
  automatically deleted (structural integrity lives in the Mapper).

Every statement runs under a savepoint: an integrity failure (type,
REQUIRED, UNIQUE, MAX, or a VERIFY assertion) rolls the statement back and
re-raises, leaving the database exactly as before the statement.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.errors import (
    CardinalityViolation,
    CatalogError,
    IntegrityError,
    RequiredViolation,
)
from repro.dml.ast import (
    Assignment,
    DeleteStatement,
    EntitySelector,
    InsertStatement,
    ModifyStatement,
    Path,
)
from repro.dml.query_tree import QueryTree
from repro.engine.executor import QueryExecutor
from repro.naming import canon
from repro.types.tvl import NULL, UNKNOWN, is_null


class _Touches:
    """What one statement touched, for trigger detection (§3.3)."""

    def __init__(self):
        self.keys: set = set()
        self.entities: set = set()

    def dva(self, owner: str, attr: str, surrogate: int) -> None:
        self.keys.add(("attr", owner, attr))
        self.entities.add(surrogate)

    def eva(self, eva_attr, source: int, target: int) -> None:
        self.keys.add(("attr", eva_attr.owner_name, eva_attr.name))
        inverse = eva_attr.inverse
        self.keys.add(("attr", inverse.owner_name, inverse.name))
        self.entities.add(source)
        self.entities.add(target)

    def role(self, class_name: str, surrogate: int) -> None:
        self.keys.add(("class", class_name))
        self.entities.add(surrogate)


class UpdateEngine:
    """Executes update statements over a Mapper store."""

    def __init__(self, executor: QueryExecutor, constraints=None):
        self.executor = executor
        self.store = executor.store
        self.schema = executor.schema
        self.qualifier = executor.qualifier
        self.evaluator = executor.evaluator
        self.constraints = constraints  # ConstraintManager or None

    # -- Dispatch ---------------------------------------------------------------

    def execute(self, statement, restrict_to=None) -> int:
        """Run one update statement; returns the number of affected
        entities.  Atomic per statement.

        ``restrict_to`` — optional set of surrogates a concurrent session
        entity-locked for this statement: MODIFY/DELETE only touch the
        selected entities that are also in the set, shielding writes from
        entities whose membership changed between lock resolution and
        execution (see :mod:`repro.engine.sessions`).
        """
        transactions = self.store.transactions
        own_transaction = not transactions.in_transaction()
        if own_transaction:
            transactions.begin()
        savepoint = transactions.current.savepoint()
        if self.store.history is not None:
            self.store.history.tick()   # one logical instant per statement
        touches = _Touches()
        try:
            if isinstance(statement, InsertStatement):
                count = self._insert(statement, touches)
            elif isinstance(statement, ModifyStatement):
                count = self._modify(statement, touches, restrict_to)
            elif isinstance(statement, DeleteStatement):
                count = self._delete(statement, touches, restrict_to)
            else:
                raise CatalogError(f"not an update statement: {statement!r}")
            if self.constraints is not None:
                self.constraints.after_statement(touches,
                                                 executor=self.executor)
        except Exception as exc:
            try:
                transactions.current.rollback_to(savepoint)
                if own_transaction:
                    transactions.abort()
            except Exception:
                # The cleanup itself failed (e.g. the device died mid
                # statement).  The statement's own error is the diagnosis
                # the caller needs; re-raising it here keeps the rollback
                # failure reachable as its __context__ instead of letting
                # it mask the original.
                raise exc
            raise
        if own_transaction:
            transactions.commit()
        return count

    # -- INSERT ------------------------------------------------------------------

    def _insert(self, statement: InsertStatement, touches: _Touches) -> int:
        sim_class = self.schema.get_class(statement.class_name)
        if statement.from_class is None:
            surrogate = self.store.new_surrogate()
            base = sim_class.base_class_name
            chain = [base]
            if statement.class_name != base:
                chain += self.schema.graph.insertion_path(
                    base, statement.class_name)
            self._extend_roles(surrogate, chain, statement.assignments,
                               touches, new_entity=True)
            return 1

        # Role extension: INSERT <class1> FROM <class2> WHERE ...
        from_class = self.schema.get_class(statement.from_class)
        if not self.schema.graph.is_ancestor(from_class.name, sim_class.name):
            raise IntegrityError(
                f"{from_class.name!r} is not an ancestor of "
                f"{sim_class.name!r}")
        selected = self.executor.select_entities(from_class.name,
                                                 statement.from_where)
        chain_all = self.schema.graph.insertion_path(from_class.name,
                                                     sim_class.name)
        count = 0
        for surrogate in selected:
            chain = [c for c in chain_all
                     if not self.store.has_role(surrogate, c)]
            if sim_class.name not in chain:
                raise IntegrityError(
                    f"entity {surrogate} already has role "
                    f"{sim_class.name!r}")
            self._extend_roles(surrogate, chain, statement.assignments,
                               touches, new_entity=False)
            count += 1
        return count

    def _extend_roles(self, surrogate: int, chain: List[str],
                      assignments: List[Assignment], touches: _Touches,
                      new_entity: bool) -> None:
        chain_set = set(chain)
        dva_values: Dict[str, Dict[str, object]] = {c: {} for c in chain}
        eva_assignments: List[Tuple[Assignment, object]] = []

        for assignment in assignments:
            attr = self._assignable_attribute(chain_set, assignment.attribute)
            if attr.is_eva:
                eva_assignments.append((assignment, attr))
                continue
            if assignment.op != "set":
                if not attr.multi_valued:
                    raise IntegrityError(
                        f"INCLUDE/EXCLUDE need a multi-valued attribute, "
                        f"not {attr.name!r}")
                eva_assignments.append((assignment, attr))
                continue
            value = self._scalar_rhs(attr.owner_name, surrogate,
                                     assignment.value, inserting=True)
            if attr.multi_valued:
                values = value if isinstance(value, (list, tuple)) else [value]
                validated = [attr.data_type.validate(v) for v in values]
                self._check_mv_bounds(attr, validated)
                dva_values[attr.owner_name][attr.name] = \
                    self.store._encode_mv(attr, validated)
            else:
                dva_values[attr.owner_name][attr.name] = \
                    attr.data_type.validate(value)

        for class_name in chain:
            self.store.add_role(surrogate, class_name, dva_values[class_name])
            touches.role(class_name, surrogate)
            for attr_name in dva_values[class_name]:
                touches.dva(class_name, attr_name, surrogate)

        for assignment, attr in eva_assignments:
            self._apply_collection_assignment(surrogate, attr, assignment,
                                              touches)

        self._check_required(surrogate, chain)

    def _assignable_attribute(self, chain_set, attr_name: str):
        for class_name in chain_set:
            sim_class = self.schema.get_class(class_name)
            attr = sim_class.immediate_attributes.get(canon(attr_name))
            if attr is not None:
                if attr.system_maintained:
                    raise IntegrityError(
                        f"attribute {attr.name!r} is system-maintained")
                return attr
        raise IntegrityError(
            f"attribute {attr_name!r} is not an immediate attribute of the "
            f"inserted classes {sorted(chain_set)}")

    def _check_required(self, surrogate: int, chain: List[str]) -> None:
        for class_name in chain:
            sim_class = self.schema.get_class(class_name)
            for attr in sim_class.immediate_attributes.values():
                if not attr.options.required or attr.system_maintained:
                    continue
                if attr.is_eva:
                    if not self.store.eva_targets(surrogate, attr):
                        raise RequiredViolation(
                            f"EVA {class_name}.{attr.name} is REQUIRED")
                else:
                    value = self.store.read_dva(surrogate, attr)
                    empty = (value == [] if attr.multi_valued
                             else is_null(value))
                    if empty:
                        raise RequiredViolation(
                            f"attribute {class_name}.{attr.name} is REQUIRED")

    # -- MODIFY -------------------------------------------------------------------

    def _modify(self, statement: ModifyStatement, touches: _Touches,
                restrict_to=None) -> int:
        sim_class = self.schema.get_class(statement.class_name)
        selected = self.executor.select_entities(sim_class.name,
                                                 statement.where)
        if restrict_to is not None:
            allowed = set(restrict_to)
            selected = [s for s in selected if s in allowed]
        for surrogate in selected:
            for assignment in statement.assignments:
                self._apply_modify_assignment(sim_class, surrogate,
                                              assignment, touches)
        return len(selected)

    def _apply_modify_assignment(self, sim_class, surrogate: int,
                                 assignment: Assignment,
                                 touches: _Touches) -> None:
        attr = sim_class.attribute(assignment.attribute)
        if attr.system_maintained:
            raise IntegrityError(
                f"attribute {attr.name!r} is system-maintained")
        if attr.is_eva or attr.multi_valued:
            self._apply_collection_assignment(surrogate, attr, assignment,
                                              touches)
            return
        if assignment.op != "set":
            raise IntegrityError(
                f"INCLUDE/EXCLUDE need a multi-valued attribute, not "
                f"{attr.name!r}")
        value = self._scalar_rhs(sim_class.name, surrogate, assignment.value)
        validated = attr.data_type.validate(value)
        if attr.options.required and is_null(validated):
            raise RequiredViolation(
                f"attribute {attr.owner_name}.{attr.name} is REQUIRED")
        self.store.write_dva(surrogate, attr, validated)
        touches.dva(attr.owner_name, attr.name, surrogate)

    # -- Collection (EVA / MV DVA) assignments ---------------------------------------

    def _apply_collection_assignment(self, surrogate: int, attr,
                                     assignment: Assignment,
                                     touches: _Touches) -> None:
        if attr.is_eva:
            self._apply_eva_assignment(surrogate, attr, assignment, touches)
        else:
            self._apply_mv_dva_assignment(surrogate, attr, assignment,
                                          touches)

    def _apply_eva_assignment(self, surrogate: int, eva,
                              assignment: Assignment,
                              touches: _Touches) -> None:
        op = assignment.op
        targets = self._selector_targets(surrogate, eva, assignment.value,
                                         excluding=(op == "exclude"))
        current = self.store.eva_targets(surrogate, eva)

        if op == "set" and not eva.multi_valued:
            if len(targets) != 1:
                raise IntegrityError(
                    f"assignment to single-valued EVA {eva.name!r} selected "
                    f"{len(targets)} entities")
            for old in current:
                self.store.eva_exclude(surrogate, eva, old)
                touches.eva(eva, surrogate, old)
            self._include_checked(surrogate, eva, targets[0], touches)
            return

        if op == "set":
            for old in current:
                self.store.eva_exclude(surrogate, eva, old)
                touches.eva(eva, surrogate, old)
            for target in targets:
                self._include_checked(surrogate, eva, target, touches)
            return

        if op == "include":
            if not eva.multi_valued and (current or len(targets) > 1):
                raise IntegrityError(
                    f"INCLUDE would give single-valued EVA {eva.name!r} "
                    f"multiple values")
            for target in targets:
                if target not in current:
                    self._include_checked(surrogate, eva, target, touches)
            return

        if op == "exclude":
            removed_any = False
            for target in targets:
                if self.store.eva_exclude(surrogate, eva, target):
                    removed_any = True
                    touches.eva(eva, surrogate, target)
            if removed_any and eva.options.required \
                    and not self.store.eva_targets(surrogate, eva):
                raise RequiredViolation(
                    f"EVA {eva.owner_name}.{eva.name} is REQUIRED")
            return
        raise IntegrityError(f"unknown assignment op {op!r}")

    def _include_checked(self, surrogate: int, eva, target: int,
                         touches: _Touches) -> None:
        """Include an EVA instance, then enforce MAX on both sides."""
        current = self.store.eva_targets(surrogate, eva)
        if target in current:
            return
        self.store.eva_include(surrogate, eva, target)
        touches.eva(eva, surrogate, target)
        maximum = eva.options.max_cardinality
        if maximum is not None and \
                len(self.store.eva_targets(surrogate, eva)) > maximum:
            raise CardinalityViolation(
                f"EVA {eva.owner_name}.{eva.name} exceeds MAX {maximum}")
        inverse = eva.inverse
        maximum = inverse.options.max_cardinality
        if maximum is not None and \
                len(self.store.eva_targets(target, inverse)) > maximum:
            raise CardinalityViolation(
                f"EVA {inverse.owner_name}.{inverse.name} exceeds MAX "
                f"{maximum}")
        if not inverse.multi_valued:
            partners = self.store.eva_targets(target, inverse)
            if len(partners) > 1:
                raise CardinalityViolation(
                    f"EVA {inverse.owner_name}.{inverse.name} is "
                    f"single-valued; entity {target} would have "
                    f"{len(partners)} values")

    def _apply_mv_dva_assignment(self, surrogate: int, attr,
                                 assignment: Assignment,
                                 touches: _Touches) -> None:
        if isinstance(assignment.value, EntitySelector):
            raise IntegrityError(
                f"{attr.name!r} is data-valued; WITH selectors apply to "
                f"EVAs")
        value = self._scalar_rhs(attr.owner_name, surrogate, assignment.value)
        op = assignment.op
        if op == "set":
            values = value if isinstance(value, (list, tuple)) else [value]
            validated = [attr.data_type.validate(v) for v in values]
            self._check_mv_bounds(attr, validated)
            self.store.write_dva(surrogate, attr, validated)
        elif op == "include":
            validated = attr.data_type.validate(value)
            current = self.store.read_dva(surrogate, attr)
            if attr.options.distinct and validated in current:
                return
            self._check_mv_bounds(attr, current + [validated])
            self.store.mv_include(surrogate, attr, validated)
        elif op == "exclude":
            validated = attr.data_type.validate(value)
            self.store.mv_exclude(surrogate, attr, validated)
        else:
            raise IntegrityError(f"unknown assignment op {op!r}")
        touches.dva(attr.owner_name, attr.name, surrogate)

    def _check_mv_bounds(self, attr, values) -> None:
        maximum = attr.options.max_cardinality
        if maximum is not None and len(values) > maximum:
            raise CardinalityViolation(
                f"attribute {attr.owner_name}.{attr.name} exceeds MAX "
                f"{maximum}")
        if attr.options.distinct and len(set(values)) != len(values):
            raise IntegrityError(
                f"attribute {attr.owner_name}.{attr.name} is DISTINCT")

    # -- Selectors and RHS evaluation --------------------------------------------------

    def _selector_targets(self, surrogate: int, eva, value,
                          excluding: bool) -> List[int]:
        """Resolve the target entities of an EVA assignment.

        ``<class> WITH (<bool>)`` selects members of the EVA's range class;
        for exclusions the object name is the EVA itself and the candidates
        are the entity's current targets (paper §4.8).  A bare path naming
        the range class selects all its members.
        """
        if isinstance(value, EntitySelector):
            selector = value
        elif isinstance(value, Path) and len(value.steps) == 1:
            selector = EntitySelector(value.steps[0].name, None)
        else:
            raise IntegrityError(
                f"EVA {eva.name!r} assignment needs a WITH selector")

        range_class = self.schema.get_class(eva.range_class_name)
        if excluding and selector.name == eva.name:
            candidates = self.store.eva_targets(surrogate, eva)
            if selector.where is None:
                return list(candidates)
            matched = set(self.executor.select_entities(
                range_class.name, selector.where))
            return [c for c in candidates if c in matched]
        if selector.name != range_class.name and \
                not self.schema.graph.is_ancestor(range_class.name,
                                                  selector.name):
            raise IntegrityError(
                f"selector class {selector.name!r} is not the range class "
                f"of EVA {eva.name!r} ({range_class.name!r})")
        return self.executor.select_entities(selector.name, selector.where)

    def _scalar_rhs(self, class_name: str, surrogate: int, expression,
                    inserting: bool = False):
        """Evaluate an assignment RHS for one entity.

        The expression is resolved in a fresh scope anchored at the entity
        (so ``salary := 1.1 * salary`` reads the entity's own salary); a
        multi-instance RHS is an error unless all instances agree.
        """
        if isinstance(expression, EntitySelector):
            raise IntegrityError(
                "WITH selectors only apply to entity-valued attributes")
        tree = QueryTree()
        root = tree.add_root(canon(class_name), canon(class_name))
        scope_nodes = self.qualifier.resolve_anchored(tree, root, expression)
        env = {root.id: surrogate}
        values = []
        for _ in self.evaluator.enumerate_scope(scope_nodes, env):
            values.append(self.evaluator.value(expression, env))
        if not values:
            return NULL
        first = values[0]
        for other in values[1:]:
            if other != first:
                raise IntegrityError(
                    "assignment expression yields multiple distinct values")
        return NULL if first is UNKNOWN else first

    # -- DELETE ---------------------------------------------------------------------

    def _delete(self, statement: DeleteStatement, touches: _Touches,
                restrict_to=None) -> int:
        sim_class = self.schema.get_class(statement.class_name)
        selected = self.executor.select_entities(sim_class.name,
                                                 statement.where)
        if restrict_to is not None:
            allowed = set(restrict_to)
            selected = [s for s in selected if s in allowed]
        for surrogate in selected:
            partners = self._partners_of(surrogate, sim_class.name)
            roles = [sim_class.name] + [
                d for d in self.schema.graph.descendants(sim_class.name)
                if self.store.has_role(surrogate, d)]
            self.store.remove_role(surrogate, sim_class.name)
            for role in roles:
                touches.role(role, surrogate)
            touches.entities.add(surrogate)
            self._check_partner_required(partners)
            touches.entities.update(s for s, _ in partners)
        return len(selected)

    def _partners_of(self, surrogate: int, class_name: str
                     ) -> List[Tuple[int, object]]:
        """Entities related to ``surrogate`` through EVAs of the roles
        about to be removed, with the partner-side EVA (for REQUIRED
        re-checks after the cascade)."""
        partners: List[Tuple[int, object]] = []
        roles = [class_name] + [
            d for d in self.schema.graph.descendants(class_name)
            if self.store.has_role(surrogate, d)]
        for role in roles:
            sim_class = self.schema.get_class(role)
            for eva in sim_class.immediate_evas():
                for target in self.store.eva_targets(surrogate, eva):
                    partners.append((target, eva.inverse))
        return partners

    def _check_partner_required(self, partners) -> None:
        for surrogate, inverse_eva in partners:
            if not inverse_eva.options.required:
                continue
            if not self.store.has_role(surrogate, inverse_eva.owner_name):
                continue
            if not self.store.eva_targets(surrogate, inverse_eva):
                raise RequiredViolation(
                    f"deleting would leave entity {surrogate} without the "
                    f"REQUIRED EVA {inverse_eva.owner_name}."
                    f"{inverse_eva.name}")
