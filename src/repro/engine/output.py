"""Output forms: fully tabular and fully structured (paper §4.5).

Fully tabular: "one format describes every output record" — a flat table.

Fully structured: "the number of different output formats is equal to the
count of TYPE 1 and TYPE 3 variables in the query"; records carry level
numbers, and nesting follows the depth-first order of the loop variables —
the form the host-language interfaces consume.  Transitive closure
instances add their closure level to the record level, preserving the
tree structure of the closure (§4.7).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.types.tvl import is_null


@dataclass
class StructuredRecord:
    """One record of a fully structured result."""

    level: int
    format_name: str
    values: Dict[str, object]

    def __repr__(self):
        inner = ", ".join(f"{k}={v!r}" for k, v in self.values.items())
        return f"<{'  ' * self.level}{self.format_name}: {inner}>"


class ResultSet:
    """The result of a Retrieve: rows plus presentation helpers."""

    def __init__(self, columns: Sequence[str], rows: List[tuple],
                 structured: Optional[List[StructuredRecord]] = None,
                 formats: Optional[List[str]] = None, perf=None):
        self.columns = list(columns)
        self.rows = rows
        self._structured = structured
        self.formats = formats or []
        #: read-path counter delta for this query (PerfCounters or None)
        self.perf = perf
        #: non-error static-analysis diagnostics (warnings/notes) the
        #: front end attached — see :mod:`repro.analysis`
        self.diagnostics: List = []
        #: the statement's trace span tree when tracing was enabled
        #: (:mod:`repro.trace`); render with :meth:`explain_analyze`
        self.trace = None
        #: node id -> [loop entries, instances bound] from a traced run
        self.node_stats = None

    def explain_analyze(self) -> str:
        """The EXPLAIN ANALYZE view of this query's traced execution:
        the annotated query tree with per-node TYPE labels, estimated vs.
        actual cardinalities, and per-layer timings."""
        if self.trace is None:
            raise ValueError(
                "query was not traced; enable tracing "
                "(Database.enable_tracing()) and re-run it")
        return self.trace.render()

    def __len__(self):
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def __getitem__(self, index):
        return self.rows[index]

    @property
    def structured(self) -> List[StructuredRecord]:
        if self._structured is None:
            raise ValueError(
                "query was not executed in STRUCTURE mode")
        return self._structured

    def scalar(self):
        """The single value of a one-row, one-column result."""
        if len(self.rows) != 1 or len(self.columns) != 1:
            raise ValueError(
                f"scalar() needs a 1x1 result, got "
                f"{len(self.rows)}x{len(self.columns)}")
        return self.rows[0][0]

    def column(self, name_or_index) -> List:
        if isinstance(name_or_index, int):
            index = name_or_index
        else:
            index = self.columns.index(name_or_index)
        return [row[index] for row in self.rows]

    def to_dicts(self) -> List[Dict[str, object]]:
        return [dict(zip(self.columns, row)) for row in self.rows]

    def pretty(self, max_rows: int = 50) -> str:
        """Render the table the way IQF would print it; '?' is null."""
        def render(value):
            if is_null(value):
                return "?"
            return str(value)

        header = self.columns
        body = [[render(v) for v in row] for row in self.rows[:max_rows]]
        widths = [len(h) for h in header]
        for row in body:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [
            "  ".join(h.ljust(widths[i]) for i, h in enumerate(header)),
            "  ".join("-" * widths[i] for i in range(len(header))),
        ]
        for row in body:
            lines.append("  ".join(cell.ljust(widths[i])
                                   for i, cell in enumerate(row)))
        if len(self.rows) > max_rows:
            lines.append(f"... ({len(self.rows) - max_rows} more rows)")
        return "\n".join(lines)

    def __repr__(self):
        return f"<ResultSet {len(self.rows)} rows x {len(self.columns)} cols>"


def build_structured(loop_nodes, node_targets: Dict[int, List[int]],
                     columns: Sequence[str],
                     snapshots: List[Tuple[tuple, tuple]]
                     ) -> List[StructuredRecord]:
    """Convert qualifying loop-variable snapshots into structured records.

    ``snapshots`` holds, per qualifying combination, the tuple of loop-node
    instances (in DF order) and the evaluated target values.  A record for
    node *i* is emitted whenever the instance of node *i* or any node
    before it differs from the previous snapshot — exactly the grouping the
    nested loops imply.
    """
    records: List[StructuredRecord] = []
    previous: Optional[tuple] = None
    for instances, values in snapshots:
        changed_from = 0
        if previous is not None:
            changed_from = len(instances)
            for i, (old, new) in enumerate(zip(previous, instances)):
                if old != new:
                    changed_from = i
                    break
        for i in range(changed_from, len(loop_nodes)):
            node = loop_nodes[i]
            targets = node_targets.get(node.id, [])
            if not targets:
                # Formats exist only for nodes carrying target items.
                continue
            level = _node_level(node, instances, loop_nodes, i)
            record_values = {columns[t]: values[t] for t in targets}
            records.append(StructuredRecord(
                level, _format_name(node), record_values))
        previous = instances
    return records


def _format_name(node) -> str:
    if node.kind == "root":
        return node.var_name
    if node.kind == "eva":
        return node.eva.name
    return node.mv_attr.name


def _node_level(node, instances, loop_nodes, index) -> int:
    """Structural level: tree depth plus transitive closure level."""
    level = 0
    current = node
    while current is not None:
        if current.kind != "root":
            level += 1
        if current.kind == "eva" and current.transitive:
            try:
                position = loop_nodes.index(current)
            except ValueError:
                position = None
            if position is not None:
                instance = instances[position]
                if isinstance(instance, tuple):
                    level += instance[1] - 1
        current = current.parent
    return level
