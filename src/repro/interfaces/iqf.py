"""An IQF-flavoured interactive query facility.

The paper's IQF is a menu-based query product; ours is a line-oriented
session suitable for terminals and scripts:

* DML statements (terminated by ``;`` or end of line block) run against
  the database;
* dot-commands provide catalog and tuning information:
  ``.schema``, ``.classes``, ``.stats``, ``.explain <query>``,
  ``.design``, ``.io``, ``.perf``, ``.help``.
"""

from __future__ import annotations

import io
import sys
from typing import Optional, TextIO

from repro.database import Database
from repro.errors import SimError


_HELP = """Commands:
  <DML statement>;        run Retrieve / Insert / Modify / Delete
  .schema                 print the schema DDL
  .classes                list classes with entity counts
  .stats                  schema and constraint statistics
  .design                 physical mapping decisions
  .explain <retrieve>     optimizer strategy report
  .trace <retrieve>       EXPLAIN ANALYZE: run traced, print the span tree
  .trace on|off           leave tracing on for following statements
  .analyze                collect optimizer statistics
  .lint                   run the schema linter (simcheck) on the schema
  .perf                   read-path cache / memoization counters
  .set [batch-size <n> | parallelism <n> | rewrite on|off]
                          show or change executor/optimizer knobs
  .materialize <name> join <class> <eva>
  .materialize <name> closure <class> <eva> [<eva> ...]
                          declare a materialized derived relation
  .materialized           list declared materializations
  .refresh <name>         recompute one materialization
  .dematerialize <name>   drop a materialization
  .save <path>            persist the database to a file
  .io                     block I/O counters (and reset)
  .help                   this text
  .quit                   leave the session
"""


class IQFSession:
    """One interactive session against a database."""

    def __init__(self, database: Database, out: Optional[TextIO] = None):
        self.database = database
        self.out = out or sys.stdout
        self.done = False

    # -- One command ----------------------------------------------------------------

    def handle(self, line: str) -> None:
        line = line.strip()
        if not line:
            return
        if line.startswith("."):
            self._command(line)
            return
        try:
            result = self.database.execute(line)
        except SimError as exc:
            self._print(f"error: {exc}")
            return
        if isinstance(result, int):
            self._print(f"{result} entities affected")
        else:
            for diagnostic in getattr(result, "diagnostics", []):
                if diagnostic.severity == "warning":
                    self._print(diagnostic.describe())
            self._print(result.pretty())
            self._print(f"({len(result)} rows)")

    def _command(self, line: str) -> None:
        parts = line.split(None, 1)
        command = parts[0].lower()
        argument = parts[1] if len(parts) > 1 else ""
        if command in (".quit", ".exit"):
            self.done = True
        elif command == ".help":
            self._print(_HELP)
        elif command == ".schema":
            self._print(self.database.schema.ddl())
        elif command == ".classes":
            for sim_class in self.database.schema.classes():
                count = self.database.store.class_count(sim_class.name)
                kind = "base" if sim_class.is_base else "sub "
                self._print(f"  {kind} {sim_class.name:<28} {count} entities")
        elif command == ".stats":
            for key, value in self.database.statistics().items():
                self._print(f"  {key}: {value}")
        elif command == ".design":
            self._print(self.database.design.describe())
        elif command == ".explain":
            if not argument:
                self._print("usage: .explain <retrieve statement>")
                return
            try:
                self._print(self.database.explain(argument))
            except SimError as exc:
                self._print(f"error: {exc}")
        elif command == ".trace":
            if not argument:
                self._print("usage: .trace <retrieve statement> | on | off")
                return
            if argument.lower() in ("on", "off"):
                if argument.lower() == "on":
                    self.database.enable_tracing()
                    self._print("tracing on")
                else:
                    self.database.disable_tracing()
                    self._print("tracing off")
                return
            was_enabled = (self.database.trace is not None
                           and self.database.trace.enabled)
            self.database.enable_tracing()
            try:
                result = self.database.execute(argument.rstrip(";"))
            except SimError as exc:
                self._print(f"error: {exc}")
                return
            finally:
                if not was_enabled:
                    self.database.disable_tracing()
            if isinstance(result, int):
                self._print(self.database.trace.last().render())
                self._print(f"{result} entities affected")
            else:
                self._print(result.explain_analyze())
                self._print(f"({len(result)} rows)")
        elif command == ".lint":
            from repro.analysis import lint_schema
            diagnostics = lint_schema(self.database.schema)
            for diagnostic in diagnostics:
                self._print(diagnostic.describe())
            if not diagnostics:
                self._print("schema is clean")
        elif command == ".analyze":
            statistics = self.database.analyze()
            self._print(f"analyzed {len(statistics.class_cardinality)} "
                        f"classes, {len(statistics.attributes)} attributes,"
                        f" {len(statistics.evas)} EVA directions")
        elif command == ".save":
            if not argument:
                self._print("usage: .save <path>")
                return
            try:
                self.database.save(argument)
                self._print(f"saved to {argument}")
            except SimError as exc:
                self._print(f"error: {exc}")
        elif command == ".set":
            from repro.engine.operators import validate_batch_size
            from repro.engine.parallel import validate_parallelism
            executor = self.database.executor
            if not argument:
                self._print(f"  batch-size: {executor.batch_size}")
                self._print(f"  parallelism: {executor.parallelism}")
                state = "on" if self.database.rewrite else "off"
                self._print(f"  rewrite: {state}")
                return
            parts = argument.split()
            knob = parts[0].lower() if parts else ""
            if (len(parts) != 2
                    or knob not in ("batch-size", "parallelism", "rewrite")):
                self._print("usage: .set [batch-size <n> | parallelism <n>"
                            " | rewrite on|off]")
                return
            if knob == "rewrite":
                if parts[1].lower() not in ("on", "off"):
                    self._print("usage: .set rewrite on|off")
                    return
                self.database.rewrite = parts[1].lower() == "on"
                self._print(f"rewrite {parts[1].lower()}")
                return
            try:
                value = int(parts[1])
                if knob == "batch-size":
                    executor.batch_size = validate_batch_size(value)
                else:
                    executor.parallelism = validate_parallelism(value)
            except (ValueError, SimError) as exc:
                self._print(f"error: {exc}")
                return
            self._print(f"{knob} set to {value}")
        elif command == ".materialize":
            parts = argument.split()
            if len(parts) < 4 or parts[1].lower() not in ("join", "closure"):
                self._print("usage: .materialize <name> join <class> <eva>"
                            " | .materialize <name> closure <class>"
                            " <eva> [<eva> ...]")
                return
            try:
                mat = self.database.materialize(parts[0], parts[1],
                                                parts[2], parts[3:])
                self._print(mat.describe())
            except SimError as exc:
                self._print(f"error: {exc}")
        elif command == ".materialized":
            mats = self.database.list_materializations()
            if not mats:
                self._print("no materializations declared")
            for mat in mats:
                self._print(f"  {mat.describe()}")
        elif command == ".refresh":
            if not argument:
                self._print("usage: .refresh <name>")
                return
            try:
                mat = self.database.refresh_materialization(argument.strip())
                self._print(mat.describe())
            except SimError as exc:
                self._print(f"error: {exc}")
        elif command == ".dematerialize":
            if not argument:
                self._print("usage: .dematerialize <name>")
                return
            try:
                self.database.drop_materialization(argument.strip())
                self._print(f"dropped {argument.strip()}")
            except SimError as exc:
                self._print(f"error: {exc}")
        elif command == ".io":
            self._print(repr(self.database.io_stats))
            self.database.reset_io_stats()
        elif command == ".perf":
            self._print(self.database.perf.describe())
            recorder = self.database.trace
            if recorder is not None and recorder.statements:
                self._print(recorder.histograms.describe())
        else:
            self._print(f"unknown command {command!r}; try .help")

    def _print(self, text: str) -> None:
        print(text, file=self.out)

    # -- Loops -------------------------------------------------------------------------

    def run(self, source: Optional[TextIO] = None,
            prompt: str = "sim> ") -> None:
        """Interactive loop; reads from ``source`` (default stdin)."""
        source = source or sys.stdin
        interactive = source is sys.stdin and sys.stdin.isatty()
        buffered = ""
        while not self.done:
            if interactive:
                self.out.write(prompt if not buffered else "...> ")
                self.out.flush()
            line = source.readline()
            if not line:
                break
            stripped = line.strip()
            if not buffered and stripped.startswith("."):
                self.handle(stripped)
                continue
            buffered += line
            if stripped.endswith(";") or not stripped:
                statement = buffered.strip()
                buffered = ""
                if statement:
                    self.handle(statement)
        if buffered.strip():
            self.handle(buffered.strip())


def run_script(database: Database, script: str) -> str:
    """Run an IQF script (statements and dot-commands) and return the
    transcript — used by the examples and tests."""
    out = io.StringIO()
    session = IQFSession(database, out)
    session.run(io.StringIO(script))
    return out.getvalue()
