"""A multi-client network front end over :class:`~repro.engine.sessions.
Session` (paper §1: SIM ran as a shared server under the BTOS/CTOS
message-based OS; clients talked to it through a request port).

The transport is deliberately simple — newline-delimited JSON over TCP —
so any language can drive it, and the interesting parts live where the
paper's did: session management, admission control, and fault tolerance.

* one :class:`~repro.engine.sessions.Session` per connection, so each
  client gets its own transaction, lock identity, and deadlock-retry
  budget; a dropped connection aborts its open transaction and releases
  every lock it held;
* admission control: at most ``max_sessions`` statements execute at
  once; up to ``queue_depth`` more wait their turn, and beyond that the
  server *sheds* the statement with a typed :class:`~repro.errors.
  ServerOverloaded` error instead of letting latency grow without bound;
* per-statement timeouts: the server-wide ``statement_timeout`` (or a
  per-request override) bounds each statement's lock waits, so a client
  stuck behind a long writer gets a clean ``LockTimeout`` back, not a
  hung socket;
* graceful shutdown: :meth:`SimServer.stop` stops accepting, lets
  in-flight statements drain, then aborts whatever transactions remain
  open so no lock outlives the server.

Wire protocol — requests are one JSON object per line::

    {"op": "execute", "text": "Modify ...", "timeout": 2.0}
    {"op": "query",   "text": "From x Retrieve y"}
    {"op": "commit"} | {"op": "abort"} | {"op": "ping"}

and responses mirror them::

    {"ok": true, "result": 3}
    {"ok": true, "columns": ["y"], "rows": [[1], [2]]}
    {"ok": false, "error": "DeadlockError", "message": "..."}

:class:`SimClient` wraps the protocol for Python callers and re-raises
server-side failures as :class:`ServerError` (carrying the original
class name), except :class:`~repro.errors.ServerOverloaded`, which is
re-raised as itself so retry loops can catch the real type.
"""

from __future__ import annotations

import json
import socket
import threading
from typing import Any, Dict, List, Optional, Tuple

from repro.engine.lockdep import RankedCondition, RankedLock
from repro.engine.sessions import Session
from repro.errors import ServerOverloaded, SimError
from repro.types.tvl import is_null


def _jsonable(value):
    """A JSON-safe rendering of one result cell.  Nulls (UNKNOWN) map to
    JSON ``null``; anything non-primitive (dates, decimals) goes through
    ``str`` — the wire format is for clients, not round-tripping."""
    if is_null(value):
        return None
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    return str(value)


class ServerError(SimError):
    """A server-side failure relayed to the client.  ``remote_type``
    names the original exception class (e.g. ``"LockTimeout"``)."""

    def __init__(self, remote_type: str, message: str):
        self.remote_type = remote_type
        super().__init__(f"{remote_type}: {message}")


class _AdmissionGate:
    """Bounded two-stage admission: ``slots`` statements run, at most
    ``queue_depth`` wait, the rest are shed.  A plain semaphore cannot
    shed — it has no notion of queue length — so the gate tracks the
    waiter count under its own mutex and rejects before blocking."""

    def __init__(self, slots: int, queue_depth: int):
        self._slots = threading.BoundedSemaphore(slots)
        self._mutex = RankedLock("server.gate")
        self._queue_depth = queue_depth
        self._queued = 0
        self.shed = 0
        self.queued_peak = 0

    def __enter__(self):
        if self._slots.acquire(blocking=False):
            return self
        with self._mutex:
            if self._queued >= self._queue_depth:
                self.shed += 1
                raise ServerOverloaded(
                    f"server at capacity ({self._queued} statements "
                    f"already queued); retry after backoff")
            self._queued += 1
            self.queued_peak = max(self.queued_peak, self._queued)
        try:
            self._slots.acquire()
        finally:
            with self._mutex:
                self._queued -= 1
        return self

    def __exit__(self, exc_type, exc, tb):
        self._slots.release()
        return False


class SimServer:
    """A threaded socket server sharing one :class:`~repro.database.
    Database` across many client connections.

    Parameters
    ----------
    max_sessions:
        statements allowed to execute concurrently (admission slots).
    queue_depth:
        statements allowed to *wait* for a slot before new arrivals are
        shed with :class:`~repro.errors.ServerOverloaded`.
    statement_timeout:
        default lock-wait bound per statement, in seconds (a request's
        ``timeout`` field overrides it).
    session_kwargs:
        extra keyword arguments for each connection's ``Session``
        (``mvcc``, ``lock_timeout``, ``max_deadlock_retries``).
    """

    def __init__(self, database, host: str = "127.0.0.1", port: int = 0,
                 max_sessions: int = 8, queue_depth: int = 16,
                 statement_timeout: Optional[float] = None,
                 **session_kwargs):
        self.database = database
        self.statement_timeout = statement_timeout
        self.session_kwargs = session_kwargs
        self._gate = _AdmissionGate(max_sessions, queue_depth)
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind((host, port))
        self._sock.listen(64)
        self.address: Tuple[str, int] = self._sock.getsockname()[:2]
        self._accepting = False
        self._stopping = threading.Event()
        self._accept_thread: Optional[threading.Thread] = None
        self._conn_lock = RankedLock("server.connections")
        self._connections: Dict[int, Tuple[socket.socket, Session]] = {}
        self._conn_threads: List[threading.Thread] = []
        self._next_conn = 0
        self._inflight = 0
        self._drained = RankedCondition(self._conn_lock)
        self.statements = 0
        self.connections_served = 0

    @property
    def port(self) -> int:
        return self.address[1]

    # -- Lifecycle ---------------------------------------------------------------

    def start(self) -> "SimServer":
        with self._conn_lock:
            self._accepting = True
            self._accept_thread = threading.Thread(
                target=self._accept_loop, name="sim-server-accept",
                daemon=True)
            thread = self._accept_thread
        thread.start()
        return self

    def stop(self, drain_timeout: float = 10.0) -> None:
        """Graceful shutdown: stop accepting, wait up to ``drain_timeout``
        seconds for in-flight statements to drain, then close every
        connection (aborting its open transaction).  Idle connections —
        threads parked waiting for the next request — are not statements
        and are closed immediately once the drain completes."""
        self._stopping.set()
        with self._conn_lock:
            self._accepting = False
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass  # never connected to / platform quirk — close suffices
        try:
            self._sock.close()
        except OSError:
            pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=2.0)
        with self._drained:
            self._drained.wait_for(lambda: self._inflight == 0,
                                   timeout=drain_timeout)
            threads = list(self._conn_threads)
            conns = list(self._connections.values())
        # Wake every parked reader; its handler aborts the session on
        # the way out, so no lock outlives the server.
        for sock, _session in conns:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass
        for thread in threads:
            thread.join(timeout=max(1.0, drain_timeout))

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.stop()
        return False

    # -- Accept / connection handling --------------------------------------------

    def _accept_loop(self) -> None:
        while self._accepting:
            try:
                sock, _addr = self._sock.accept()
            except OSError:
                return  # socket closed by stop()
            with self._conn_lock:
                if self._stopping.is_set():
                    sock.close()
                    return
                self._next_conn += 1
                conn_id = self._next_conn
                session = Session(self.database, **self.session_kwargs)
                self._connections[conn_id] = (sock, session)
                thread = threading.Thread(
                    target=self._serve_connection,
                    args=(conn_id, sock, session),
                    name=f"sim-server-conn-{conn_id}", daemon=True)
                self._conn_threads.append(thread)
                self.connections_served += 1
            thread.start()

    def _serve_connection(self, conn_id: int, sock: socket.socket,
                          session: Session) -> None:
        reader = sock.makefile("rb")
        try:
            for raw in reader:
                line = raw.strip()
                if not line:
                    continue
                response = self._handle(session, line)
                if response is None:  # client said goodbye
                    break
                payload = (json.dumps(response) + "\n").encode("utf-8")
                try:
                    sock.sendall(payload)
                except OSError:
                    break
        finally:
            reader.close()
            try:
                sock.close()
            except OSError:
                pass
            # Fault tolerance: a vanished client must not strand locks.
            try:
                session.abort()
            except Exception:
                pass
            with self._conn_lock:
                self._connections.pop(conn_id, None)

    # -- Request dispatch --------------------------------------------------------

    def _handle(self, session: Session, line: bytes) -> Optional[Dict]:
        try:
            request = json.loads(line.decode("utf-8"))
            op = request.get("op")
            if op == "close":
                return None
            if op == "ping":
                return {"ok": True, "result": "pong"}
            if op == "commit":
                session.commit()
                return {"ok": True, "result": "committed"}
            if op == "abort":
                session.abort()
                return {"ok": True, "result": "aborted"}
            if op in ("execute", "query"):
                return self._statement(session, request)
            raise SimError(f"unknown op {op!r}")
        except Exception as exc:  # every failure becomes a typed reply
            return {"ok": False, "error": type(exc).__name__,
                    "message": str(exc)}

    def _statement(self, session: Session, request: Dict) -> Dict:
        if self._stopping.is_set():
            raise ServerOverloaded("server is shutting down")
        timeout = request.get("timeout", self.statement_timeout)
        with self._drained:
            self._inflight += 1
        try:
            with self._gate:
                result = session.execute(request["text"], timeout=timeout)
        finally:
            with self._drained:
                self._inflight -= 1
                self._drained.notify_all()
        with self._conn_lock:
            self.statements += 1
        if hasattr(result, "rows") and hasattr(result, "columns"):
            return {"ok": True, "columns": list(result.columns),
                    "rows": [[_jsonable(v) for v in row]
                             for row in result.rows]}
        return {"ok": True, "result": _jsonable(result)}

    # -- Introspection -----------------------------------------------------------

    def statistics(self) -> Dict[str, Any]:
        with self._conn_lock:
            open_connections = len(self._connections)
        return {
            "address": list(self.address),
            "connections_served": self.connections_served,
            "open_connections": open_connections,
            "statements": self.statements,
            "shed": self._gate.shed,
            "queued_peak": self._gate.queued_peak,
        }


class RemoteResult:
    """A client-side stand-in for :class:`~repro.engine.output.
    ResultSet`: columns + rows with the same access helpers."""

    def __init__(self, columns: List[str], rows: List[list]):
        self.columns = columns
        self.rows = [tuple(row) for row in rows]

    def __len__(self):
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def __getitem__(self, index):
        return self.rows[index]

    def scalar(self):
        if len(self.rows) != 1 or len(self.columns) != 1:
            raise ValueError(f"scalar() needs a 1x1 result, got "
                             f"{len(self.rows)}x{len(self.columns)}")
        return self.rows[0][0]

    def to_dicts(self) -> List[Dict[str, object]]:
        return [dict(zip(self.columns, row)) for row in self.rows]


class SimClient:
    """A blocking JSON-lines client for :class:`SimServer`.

    Each client holds one connection — hence one server-side session and
    transaction.  Server-side errors raise :class:`ServerError`, except
    overload sheds, which raise :class:`~repro.errors.ServerOverloaded`
    directly so callers can write typed retry loops.
    """

    def __init__(self, host: str, port: int, connect_timeout: float = 5.0):
        self._sock = socket.create_connection((host, port),
                                              timeout=connect_timeout)
        self._sock.settimeout(None)
        self._reader = self._sock.makefile("rb")
        self._lock = RankedLock("server.client")

    def _call(self, request: Dict) -> Dict:
        # Holding the lock across the round trip is the point: one
        # request/response pair at a time per connection.
        with self._lock:
            self._sock.sendall(  # noqa: SIM302
                (json.dumps(request) + "\n").encode("utf-8"))
            raw = self._reader.readline()  # noqa: SIM302
        if not raw:
            raise ServerError("ConnectionClosed",
                              "server closed the connection")
        response = json.loads(raw.decode("utf-8"))
        if response.get("ok"):
            return response
        if response.get("error") == "ServerOverloaded":
            raise ServerOverloaded(response.get("message", ""))
        raise ServerError(response.get("error", "SimError"),
                          response.get("message", ""))

    def execute(self, text: str, timeout: Optional[float] = None):
        request: Dict[str, Any] = {"op": "execute", "text": text}
        if timeout is not None:
            request["timeout"] = timeout
        response = self._call(request)
        if "columns" in response:
            return RemoteResult(response["columns"], response["rows"])
        return response.get("result")

    def query(self, text: str, timeout: Optional[float] = None):
        return self.execute(text, timeout=timeout)

    def commit(self) -> None:
        self._call({"op": "commit"})

    def abort(self) -> None:
        self._call({"op": "abort"})

    def ping(self) -> bool:
        return self._call({"op": "ping"}).get("result") == "pong"

    def close(self) -> None:
        try:
            with self._lock:
                self._sock.sendall(b'{"op": "close"}\n')  # noqa: SIM302
        except OSError:
            pass
        try:
            self._reader.close()
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        if exc_type is None:
            try:
                self.commit()
            except ServerError:
                pass
        else:
            try:
                self.abort()
            except (ServerError, OSError):
                pass
        self.close()
        return False
