"""Host-language interface: cursor-style access to query results.

The paper's InfoExec environment exposes SIM to COBOL, ALGOL and Pascal
programs; results arrive as *fully structured* output — multiple record
formats with level numbers (§4.5: "Such forms of output are particularly
useful in the host language interfaces to SIM").  :class:`HostSession`
provides the same shape for Python: open a cursor on a Retrieve statement
and fetch one structured record at a time.
"""

from __future__ import annotations

from typing import List, Optional

from repro.database import Database
from repro.dml.parser import parse_dml
from repro.engine.output import StructuredRecord
from repro.errors import SimError


class HostCursor:
    """A forward-only cursor over a query's structured records."""

    def __init__(self, records: List[StructuredRecord],
                 formats: List[str]):
        self._records = records
        self.formats = formats
        self._position = 0
        self.closed = False

    def fetch(self) -> Optional[StructuredRecord]:
        """The next record, or None at end of data."""
        self._ensure_open()
        if self._position >= len(self._records):
            return None
        record = self._records[self._position]
        self._position += 1
        return record

    def fetch_all(self) -> List[StructuredRecord]:
        self._ensure_open()
        remaining = self._records[self._position:]
        self._position = len(self._records)
        return remaining

    def rewind(self) -> None:
        self._ensure_open()
        self._position = 0

    def close(self) -> None:
        self.closed = True

    def _ensure_open(self):
        if self.closed:
            raise SimError("cursor is closed")

    def __iter__(self):
        while True:
            record = self.fetch()
            if record is None:
                return
            yield record

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
        return False


class HostSession:
    """A host program's connection to one database."""

    def __init__(self, database: Database):
        self.database = database

    def open_cursor(self, query_text: str) -> HostCursor:
        """Parse and run a Retrieve in STRUCTURE mode, returning a cursor.

        The statement may be written in TABLE mode; the session forces
        structured output, as the host interfaces do.
        """
        statement = parse_dml(query_text)
        if statement.kind != "retrieve":
            raise SimError("host cursors are opened on Retrieve statements")
        statement.mode = "structure"
        result = self.database.execute(statement)
        return HostCursor(result.structured, result.formats)

    def call(self, statement_text: str) -> int:
        """Run an update statement; returns the affected-entity count."""
        statement = parse_dml(statement_text)
        if statement.kind == "retrieve":
            raise SimError("call() takes an update statement")
        return self.database.execute(statement)

    def transaction(self):
        return self.database.transaction()
