"""Viewing an existing network-model (DMSII-like) database as SIM (§5).

"A utility program allows any existing DMSII database to be viewed as a
SIM database.  Semantics of data not readily apparent from its DMSII
description can be made known to SIM by the user.  For example, a
foreign-key based relationship between DMSII structures can be defined as
a SIM EVA."

DMSII is proprietary, so :class:`NetworkDatabase` provides a faithful
miniature of its model: record types ("data sets") with flat fields, and
owner–member *sets* linking them.  :func:`import_network_database` builds
the SIM schema and copies the data:

* each record type becomes a base class;
* each network set becomes an EVA/inverse pair (1:many);
* user hints promote foreign-key fields to EVAs (the field disappears in
  favour of the relationship) and declare key fields UNIQUE.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.database import Database
from repro.errors import SimError
from repro.naming import canon
from repro.schema.attribute import (
    AttributeOptions,
    DataValuedAttribute,
    EntityValuedAttribute,
)
from repro.schema.klass import SimClass
from repro.schema.schema import Schema
from repro.types.domain import (
    BooleanType,
    DataType,
    IntegerType,
    NumberType,
    RealType,
    StringType,
)


@dataclass
class NetworkRecordType:
    """A DMSII-style data set: flat, single-valued fields."""

    name: str
    fields: Dict[str, str]          # field name -> type word
    key_field: Optional[str] = None

    def __post_init__(self):
        self.name = canon(self.name)
        self.fields = {canon(k): v for k, v in self.fields.items()}
        if self.key_field is not None:
            self.key_field = canon(self.key_field)


@dataclass
class NetworkSet:
    """An owner–member set (the network model's 1:many link)."""

    name: str
    owner: str
    member: str

    def __post_init__(self):
        self.name = canon(self.name)
        self.owner = canon(self.owner)
        self.member = canon(self.member)


class NetworkDatabase:
    """A miniature network-model database: records + sets, in memory."""

    def __init__(self, name: str = "network"):
        self.name = name
        self.record_types: Dict[str, NetworkRecordType] = {}
        self.sets: Dict[str, NetworkSet] = {}
        self._records: Dict[str, List[dict]] = {}
        self._memberships: Dict[str, List[Tuple[int, int]]] = {}

    # -- Schema ------------------------------------------------------------------

    def add_record_type(self, record_type: NetworkRecordType) -> None:
        if record_type.name in self.record_types:
            raise SimError(f"record type {record_type.name!r} exists")
        self.record_types[record_type.name] = record_type
        self._records[record_type.name] = []

    def add_set(self, network_set: NetworkSet) -> None:
        if network_set.owner not in self.record_types \
                or network_set.member not in self.record_types:
            raise SimError(f"set {network_set.name!r} references unknown "
                           f"record types")
        self.sets[network_set.name] = network_set
        self._memberships[network_set.name] = []

    # -- Data ---------------------------------------------------------------------

    def store(self, type_name: str, record: dict) -> int:
        """STORE a record; returns its record number."""
        type_name = canon(type_name)
        record_type = self.record_types[type_name]
        cleaned = {canon(k): v for k, v in record.items()}
        unknown = set(cleaned) - set(record_type.fields)
        if unknown:
            raise SimError(f"unknown fields {sorted(unknown)} in "
                           f"{type_name!r}")
        self._records[type_name].append(cleaned)
        return len(self._records[type_name]) - 1

    def connect(self, set_name: str, owner_no: int, member_no: int) -> None:
        """Insert a member record into an owner's set occurrence."""
        self._memberships[canon(set_name)].append((owner_no, member_no))

    def records(self, type_name: str) -> List[dict]:
        return list(self._records[canon(type_name)])

    def memberships(self, set_name: str) -> List[Tuple[int, int]]:
        return list(self._memberships[canon(set_name)])


_TYPE_WORDS: Dict[str, DataType] = {
    "integer": IntegerType(),
    "number": NumberType(11, 2),
    "real": RealType(),
    "boolean": BooleanType(),
}


def _field_type(word: str) -> DataType:
    word = word.strip().lower()
    if word.startswith("string"):
        if "[" in word:
            length = int(word[word.index("[") + 1:word.index("]")])
            return StringType(length)
        return StringType(30)
    if word in _TYPE_WORDS:
        return _TYPE_WORDS[word]
    raise SimError(f"unknown network field type {word!r}")


def import_network_database(
        network: NetworkDatabase,
        foreign_keys: Optional[Dict[Tuple[str, str], str]] = None,
        unique_fields: Optional[List[Tuple[str, str]]] = None,
) -> Database:
    """Build a SIM database viewing ``network``.

    ``foreign_keys`` — user hints mapping (record type, field) to the
    referenced record type; each becomes a single-valued EVA named after
    the field (with ``-ref`` appended when the field is kept as a key
    lookup name), replacing the raw field.  The referenced type must have
    a ``key_field`` to resolve values.

    ``unique_fields`` — (record type, field) pairs declared UNIQUE.
    """
    foreign_keys = {(canon(t), canon(f)): canon(r)
                    for (t, f), r in (foreign_keys or {}).items()}
    unique_fields = {(canon(t), canon(f)) for t, f in (unique_fields or [])}
    for record_type in network.record_types.values():
        if record_type.key_field:
            unique_fields.add((record_type.name, record_type.key_field))

    schema = Schema(network.name)
    for record_type in network.record_types.values():
        sim_class = SimClass(record_type.name)
        for field_name, type_word in record_type.fields.items():
            if (record_type.name, field_name) in foreign_keys:
                target = foreign_keys[(record_type.name, field_name)]
                sim_class.add_attribute(EntityValuedAttribute(
                    field_name, target,
                    inverse_name=f"{field_name}-of",
                    options=AttributeOptions()))
                continue
            options = AttributeOptions(
                unique=(record_type.name, field_name) in unique_fields,
                required=field_name == record_type.key_field)
            sim_class.add_attribute(DataValuedAttribute(
                field_name, _field_type(type_word), options))
        schema.add_class(sim_class)

    # Network sets become 1:many EVA pairs: member -> owner single-valued,
    # inverse MV on the owner.
    for network_set in network.sets.values():
        member_class = schema.get_class(network_set.member)
        member_class.add_attribute(EntityValuedAttribute(
            f"{network_set.name}-owner", network_set.owner,
            inverse_name=f"{network_set.name}-members",
            options=AttributeOptions()))
    schema.resolve()

    database = Database(schema, constraint_mode="off")
    store = database.store

    # Copy data: record numbers -> surrogates.
    surrogate_of: Dict[Tuple[str, int], int] = {}
    deferred_fk: List[Tuple[int, object, str, object]] = []
    for record_type in network.record_types.values():
        sim_class = database.schema.get_class(record_type.name)
        for record_no, record in enumerate(network.records(record_type.name)):
            values = {}
            fk_values = []
            for field_name, value in record.items():
                if (record_type.name, field_name) in foreign_keys:
                    if value is not None:
                        fk_values.append((field_name, value))
                    continue
                values[field_name] = value
            surrogate = store.insert_entity(record_type.name, values)
            surrogate_of[(record_type.name, record_no)] = surrogate
            for field_name, value in fk_values:
                eva = sim_class.attribute(field_name)
                deferred_fk.append((surrogate, eva, value,
                                    foreign_keys[(record_type.name,
                                                  field_name)]))

    # Resolve foreign keys now that every target exists.
    for surrogate, eva, value, target_type in deferred_fk:
        key_field = network.record_types[target_type].key_field
        if key_field is None:
            raise SimError(
                f"record type {target_type!r} needs a key_field to be a "
                f"foreign-key target")
        matches = store.find_by_dva(target_type, key_field, value)
        if len(matches) != 1:
            raise SimError(
                f"foreign key {value!r} resolves to {len(matches)} "
                f"{target_type!r} records")
        store.eva_include(surrogate, eva, matches[0])

    # Copy set memberships.
    for network_set in network.sets.values():
        member_class = database.schema.get_class(network_set.member)
        eva = member_class.attribute(f"{network_set.name}-owner")
        for owner_no, member_no in network.memberships(network_set.name):
            store.eva_include(
                surrogate_of[(network_set.member, member_no)], eva,
                surrogate_of[(network_set.owner, owner_no)])
    return database
