"""Interfaces around the core system (paper §1, §5).

* :mod:`repro.interfaces.host` — a host-language cursor interface in the
  spirit of the COBOL/ALGOL/Pascal bindings: open a query, fetch fully
  structured records one at a time;
* :mod:`repro.interfaces.iqf` — an IQF-flavoured interactive query
  facility (REPL and script runner);
* :mod:`repro.interfaces.dmsii` — a miniature network-model (DMSII-like)
  database and the utility that views it as a SIM database;
* :mod:`repro.interfaces.builder` — a fluent query/update builder (the
  WQF stand-in);
* :mod:`repro.interfaces.server` — a multi-client JSON-lines socket
  server (one :class:`~repro.engine.sessions.Session` per connection)
  plus its Python client.
"""

from repro.interfaces.host import HostCursor, HostSession
from repro.interfaces.iqf import IQFSession, run_script
from repro.interfaces.dmsii import (
    NetworkDatabase,
    NetworkRecordType,
    NetworkSet,
    import_network_database,
)
from repro.interfaces.builder import (
    InsertBuilder,
    ModifyBuilder,
    QueryBuilder,
)
from repro.interfaces.server import (
    RemoteResult,
    ServerError,
    SimClient,
    SimServer,
)

__all__ = [
    "HostCursor",
    "HostSession",
    "IQFSession",
    "run_script",
    "NetworkDatabase",
    "NetworkRecordType",
    "NetworkSet",
    "import_network_database",
    "InsertBuilder",
    "ModifyBuilder",
    "QueryBuilder",
    "RemoteResult",
    "ServerError",
    "SimClient",
    "SimServer",
]
