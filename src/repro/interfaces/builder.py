"""A programmatic query builder — the WQF stand-in.

The paper's WQF is "a workstation-based graphically-oriented query
language" (§1): users compose queries by picking classes, attributes and
conditions instead of typing DML.  The equivalent for a Python host is a
fluent builder that assembles *well-formed DML text* (so everything flows
through the same parser, qualifier and optimizer as hand-written queries):

    from repro.interfaces.builder import QueryBuilder, attr, count, path

    q = (QueryBuilder("student")
         .retrieve("name", path("name", "advisor"))
         .where((attr("soc-sec-no") > 100) & attr("name").like("J%"))
         .order_by("name", descending=True))
    result = db.query(q.dml())

String literals are escaped; values are rendered by type (dates, decimals,
booleans), eliminating the quoting mistakes hand-built strings invite.
"""

from __future__ import annotations

from decimal import Decimal
from typing import List, Optional, Union

from repro.errors import SimError
from repro.types.dates import SimDate, SimTime


def render_value(value) -> str:
    """Render a Python value as a DML literal."""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, Decimal)):
        return str(value)
    if isinstance(value, float):
        return repr(value)
    if isinstance(value, (SimDate, SimTime)):
        return f'"{value}"'
    if isinstance(value, str):
        return '"' + value.replace('"', '""') + '"'
    raise SimError(f"cannot render {value!r} as a DML literal")


class Term:
    """A value expression: qualification path, aggregate, or literal."""

    def __init__(self, text: str):
        self.text = text

    # comparisons build conditions -------------------------------------------------

    def _compare(self, op: str, other) -> "Condition":
        other_text = (other.text if isinstance(other, Term)
                      else render_value(other))
        return Condition(f"{self.text} {op} {other_text}")

    def __eq__(self, other):                       # noqa: D105
        return self._compare("=", other)

    def __ne__(self, other):                       # noqa: D105
        return self._compare("neq", other)

    def __lt__(self, other):
        return self._compare("<", other)

    def __le__(self, other):
        return self._compare("<=", other)

    def __gt__(self, other):
        return self._compare(">", other)

    def __ge__(self, other):
        return self._compare(">=", other)

    def like(self, pattern: str) -> "Condition":
        return Condition(f"{self.text} like {render_value(pattern)}")

    def isa(self, class_name: str) -> "Condition":
        return Condition(f"{self.text} isa {class_name}")

    def eq_some(self, inner: "Term") -> "Condition":
        return Condition(f"{self.text} = some({inner.text})")

    def neq_some(self, inner: "Term") -> "Condition":
        return Condition(f"{self.text} neq some({inner.text})")

    def eq_all(self, inner: "Term") -> "Condition":
        return Condition(f"{self.text} = all({inner.text})")

    def eq_no(self, inner: "Term") -> "Condition":
        return Condition(f"{self.text} = no({inner.text})")

    # arithmetic ---------------------------------------------------------------------

    def _arith(self, op: str, other, reverse=False) -> "Term":
        other_text = (other.text if isinstance(other, Term)
                      else render_value(other))
        if reverse:
            return Term(f"({other_text} {op} {self.text})")
        return Term(f"({self.text} {op} {other_text})")

    def __add__(self, other):
        return self._arith("+", other)

    def __radd__(self, other):
        return self._arith("+", other, reverse=True)

    def __sub__(self, other):
        return self._arith("-", other)

    def __mul__(self, other):
        return self._arith("*", other)

    def __rmul__(self, other):
        return self._arith("*", other, reverse=True)

    def __truediv__(self, other):
        return self._arith("/", other)

    def of(self, *steps: str) -> "Term":
        """Append outer qualification: count(x).of("department")."""
        return Term(self.text + "".join(f" of {step}" for step in steps))

    def __hash__(self):
        return hash(self.text)

    def __repr__(self):
        return f"Term({self.text!r})"


class Condition:
    """A boolean expression; combine with ``&``, ``|``, ``~``."""

    def __init__(self, text: str):
        self.text = text

    def __and__(self, other: "Condition") -> "Condition":
        return Condition(f"({self.text}) and ({other.text})")

    def __or__(self, other: "Condition") -> "Condition":
        return Condition(f"({self.text}) or ({other.text})")

    def __invert__(self) -> "Condition":
        return Condition(f"not ({self.text})")

    def __repr__(self):
        return f"Condition({self.text!r})"


# -- Term factories --------------------------------------------------------------

def attr(name: str) -> Term:
    """A bare attribute (resolved by shorthand completion)."""
    return Term(name)


def path(*steps: str) -> Term:
    """A qualification chain, innermost first: path("name", "advisor")."""
    return Term(" of ".join(steps))


def inverse(eva_name: str) -> Term:
    return Term(f"inverse({eva_name})")


def transitive(eva_name: str) -> Term:
    return Term(f"transitive({eva_name})")


def literal(value) -> Term:
    return Term(render_value(value))


def _aggregate(func: str, inner: Union[Term, str],
               distinct: bool = False) -> Term:
    inner_text = inner.text if isinstance(inner, Term) else inner
    keyword = "distinct " if distinct else ""
    return Term(f"{func}({keyword}{inner_text})")


def count(inner, distinct: bool = False) -> Term:
    return _aggregate("count", inner, distinct)


def sum_(inner) -> Term:
    return _aggregate("sum", inner)


def avg(inner) -> Term:
    return _aggregate("avg", inner)


def min_(inner) -> Term:
    return _aggregate("min", inner)


def max_(inner) -> Term:
    return _aggregate("max", inner)


# -- The builders --------------------------------------------------------------------

class QueryBuilder:
    """Fluent Retrieve construction."""

    def __init__(self, *perspectives: str):
        self._perspectives = list(perspectives)
        self._targets: List[str] = []
        self._where: Optional[Condition] = None
        self._order: List[str] = []
        self._distinct = False
        self._structure = False

    def retrieve(self, *items: Union[str, Term]) -> "QueryBuilder":
        for item in items:
            self._targets.append(item.text if isinstance(item, Term)
                                 else item)
        return self

    def where(self, condition: Condition) -> "QueryBuilder":
        self._where = (condition if self._where is None
                       else self._where & condition)
        return self

    def order_by(self, item: Union[str, Term],
                 descending: bool = False) -> "QueryBuilder":
        text = item.text if isinstance(item, Term) else item
        self._order.append(text + (" desc" if descending else ""))
        return self

    def distinct(self) -> "QueryBuilder":
        self._distinct = True
        return self

    def structure(self) -> "QueryBuilder":
        self._structure = True
        return self

    def dml(self) -> str:
        if not self._targets:
            raise SimError("retrieve() was never called")
        parts = []
        if self._perspectives:
            parts.append("From " + ", ".join(self._perspectives))
        mode = ("Structure" if self._structure
                else ("Table Distinct" if self._distinct else ""))
        parts.append(("Retrieve " + mode).strip() + " "
                     + ", ".join(self._targets))
        if self._order:
            parts.append("Order By " + ", ".join(self._order))
        if self._where is not None:
            parts.append("Where " + self._where.text)
        return " ".join(parts)

    def run(self, database):
        return database.query(self.dml())

    def __repr__(self):
        return f"QueryBuilder({self.dml()!r})"


class InsertBuilder:
    """Fluent Insert construction (including FROM role extension)."""

    def __init__(self, class_name: str):
        self._class = class_name
        self._assignments: List[str] = []
        self._from: Optional[str] = None
        self._from_where: Optional[Condition] = None

    def set(self, attr_name: str, value) -> "InsertBuilder":
        self._assignments.append(
            f"{attr_name} := "
            + (value.text if isinstance(value, Term)
               else render_value(value)))
        return self

    def set_ref(self, attr_name: str, range_class: str,
                condition: Condition) -> "InsertBuilder":
        self._assignments.append(
            f"{attr_name} := {range_class} with ({condition.text})")
        return self

    def extending(self, ancestor: str,
                  condition: Condition) -> "InsertBuilder":
        self._from = ancestor
        self._from_where = condition
        return self

    def dml(self) -> str:
        text = f"Insert {self._class}"
        if self._from is not None:
            text += f" From {self._from} Where {self._from_where.text}"
        if self._assignments:
            text += "(" + ", ".join(self._assignments) + ")"
        return text

    def run(self, database) -> int:
        return database.execute(self.dml())


class ModifyBuilder:
    """Fluent Modify construction."""

    def __init__(self, class_name: str):
        self._class = class_name
        self._assignments: List[str] = []
        self._where: Optional[Condition] = None

    def set(self, attr_name: str, value) -> "ModifyBuilder":
        self._assignments.append(
            f"{attr_name} := "
            + (value.text if isinstance(value, Term)
               else render_value(value)))
        return self

    def set_ref(self, attr_name: str, range_class: str,
                condition: Condition) -> "ModifyBuilder":
        self._assignments.append(
            f"{attr_name} := {range_class} with ({condition.text})")
        return self

    def include(self, attr_name: str, range_class: str,
                condition: Condition) -> "ModifyBuilder":
        self._assignments.append(
            f"{attr_name} := include {range_class} with"
            f" ({condition.text})")
        return self

    def exclude(self, attr_name: str,
                condition: Optional[Condition] = None) -> "ModifyBuilder":
        text = f"{attr_name} := exclude {attr_name}"
        if condition is not None:
            text += f" with ({condition.text})"
        self._assignments.append(text)
        return self

    def where(self, condition: Condition) -> "ModifyBuilder":
        self._where = (condition if self._where is None
                       else self._where & condition)
        return self

    def dml(self) -> str:
        if not self._assignments:
            raise SimError("set()/include()/exclude() was never called")
        text = f"Modify {self._class}(" + ", ".join(self._assignments) + ")"
        if self._where is not None:
            text += f" Where {self._where.text}"
        return text

    def run(self, database) -> int:
        return database.execute(self.dml())
