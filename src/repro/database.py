"""The public Database facade: open a schema, run DML, manage transactions.

Typical use::

    from repro import Database

    db = Database(ddl_text)
    db.execute('Insert person(name := "Ada", soc-sec-no := 1)')
    result = db.query("From person Retrieve name")
    print(result.pretty())

The facade wires together the architecture of the paper's Figure 1: the
Parser (:mod:`repro.dml`), the Directory/catalog, the LUC Mapper
(:mod:`repro.mapper`) and the Query Driver (:mod:`repro.engine`), with an
optional Optimizer plan (:mod:`repro.optimizer`).
"""

from __future__ import annotations

import contextlib
import itertools
from dataclasses import dataclass, field
from typing import List, Optional, Union

from repro.dml.ast import RetrieveQuery
from repro.dml.parser import parse_dml
from repro.dml.qualification import Qualifier
from repro.engine.constraints import ConstraintManager
from repro.engine.executor import QueryExecutor
from repro.engine.output import ResultSet
from repro.engine.sessions import LockManager
from repro.engine.updates import UpdateEngine
from repro.errors import SimError
from repro.mapper.physical import PhysicalDesign
from repro.mapper.store import MapperStore
from repro.schema.ddl_parser import parse_ddl
from repro.schema.schema import Schema


@dataclass
class CompiledStatement:
    """A statement taken through the static pipeline without executing.

    ``diagnostics`` holds everything the analyzers reported (the compile
    itself raises on error severity); ``tree`` and ``plan`` are populated
    for Retrieve statements only.
    """

    statement: object
    tree: object = None
    plan: object = None
    diagnostics: List = field(default_factory=list)


class Database:
    """One SIM database: a resolved schema bound to a Mapper store."""

    def __init__(self, schema: Union[str, Schema],
                 design: Optional[PhysicalDesign] = None,
                 constraint_mode: str = "immediate",
                 use_optimizer: bool = True,
                 rewrite: bool = True,
                 track_history: bool = False,
                 batch_size: Optional[int] = None,
                 parallelism: Optional[int] = None):
        if isinstance(schema, str):
            schema = parse_ddl(schema)
        elif not schema.resolved:
            schema.resolve()
        self.schema = schema
        self.store = MapperStore(schema, design)
        if track_history:
            self.store.enable_history()
        self.design = self.store.design
        self.qualifier = Qualifier(schema)
        knobs = {}
        if batch_size is not None:
            knobs["batch_size"] = batch_size
        if parallelism is not None:
            knobs["parallelism"] = parallelism
        self.executor = QueryExecutor(self.store, self.qualifier, **knobs)
        self.constraints = ConstraintManager(self.executor, constraint_mode)
        self.updates = UpdateEngine(self.executor, self.constraints)
        self.use_optimizer = use_optimizer
        #: semantic rewrite pass (optimizer/rewrite.py); off reproduces
        #: the legacy planner byte for byte
        self.rewrite = rewrite
        self._optimizer = None
        # Concurrency plumbing, created eagerly so two threads opening
        # their first Session can never race to install it.
        self._lock_manager = LockManager()
        self._session_ids = itertools.count(1)

    # -- Statements ---------------------------------------------------------------

    def execute(self, statement: Union[str, object]):
        """Run one DML statement.

        Returns a :class:`ResultSet` for Retrieve and the affected-entity
        count for updates.
        """
        trace = self.store.trace
        if trace is None or not trace.enabled:
            if isinstance(statement, str):
                statement = parse_dml(statement)
            if isinstance(statement, RetrieveQuery):
                return self._run_retrieve(statement)
            self._lint_update(statement)
            return self.updates.execute(statement)
        text = statement if isinstance(statement, str) else repr(statement)
        with self._statement_scope(trace, text) as root:
            if isinstance(statement, str):
                with trace.span("parse", layer="parser"):
                    statement = parse_dml(statement)
            if isinstance(statement, RetrieveQuery):
                result = self._run_retrieve(statement)
                if root is not None:
                    result.trace = root
                return result
            with trace.span("lint", layer="analysis"):
                self._lint_update(statement)
            with trace.span("update", layer="engine"):
                return self.updates.execute(statement)

    def query(self, text: str) -> ResultSet:
        """Run a Retrieve statement and return its result set."""
        statement = parse_dml(text) if isinstance(text, str) else text
        if not isinstance(statement, RetrieveQuery):
            raise SimError("query() takes a Retrieve statement")
        return self._run_retrieve(statement)

    @contextlib.contextmanager
    def _statement_scope(self, trace, text: str):
        """Open one statement root span unless one is already open (the
        Session path enters through _run_retrieve/updates directly).  The
        root is closed however the statement ends — success, integrity
        failure, or injected storage fault — so no span ever leaks."""
        if trace is None or not trace.enabled or trace.open_spans():
            yield None
            return
        root = trace.begin_statement(text)
        error = None
        try:
            yield root
        except BaseException as exc:
            error = f"{type(exc).__name__}: {exc}"
            raise
        finally:
            trace.end_statement(error)

    def compile(self, statement: Union[str, object]) -> CompiledStatement:
        """Take a statement through the full static pipeline — parse,
        qualify, lint, plan, verify — without executing it.

        Raises the same typed exceptions :meth:`execute` would for
        error-severity diagnostics; returns the compiled artifacts plus
        every diagnostic (warnings and notes included) otherwise.
        """
        from repro.analysis import raise_for_errors
        if isinstance(statement, str):
            statement = parse_dml(statement)
        if not isinstance(statement, RetrieveQuery):
            diagnostics = self._lint_update(statement)
            return CompiledStatement(statement, diagnostics=diagnostics)
        tree = self.qualifier.resolve_retrieve(statement)
        diagnostics = self._lint_retrieve(statement)
        plan = None
        if self.use_optimizer:
            plan = self.optimizer.choose_plan(statement, tree)
        from repro.analysis import verify_plan
        verdict = verify_plan(self.schema, tree, plan)
        raise_for_errors(verdict)
        diagnostics.extend(verdict)
        return CompiledStatement(statement, tree, plan, diagnostics)

    def _run_retrieve(self, query: RetrieveQuery,
                      executor: Optional[QueryExecutor] = None) -> ResultSet:
        from repro.analysis import raise_for_errors, verify_plan
        trace = self.store.trace
        if trace is None or not trace.enabled:
            tree = self.qualifier.resolve_retrieve(query)
            diagnostics = self._lint_retrieve(query)
            plan = None
            if self.use_optimizer:
                plan = self.optimizer.choose_plan(query, tree)
            # Fail closed: a plan that breaks the structural contract
            # between the labelled tree and the enumeration must never run.
            verdict = verify_plan(self.schema, tree, plan)
            raise_for_errors(verdict)
            diagnostics.extend(verdict)
            result = (executor or self.executor).run(query, tree, plan)
            result.diagnostics = diagnostics
            return result
        with self._statement_scope(trace, repr(query)) as root:
            with trace.span("qualify", layer="qualifier"):
                tree = self.qualifier.resolve_retrieve(query)
            with trace.span("lint", layer="analysis"):
                diagnostics = self._lint_retrieve(query)
            plan = None
            if self.use_optimizer:
                plan = self.optimizer.choose_plan(query, tree)
            with trace.span("verify", layer="analysis"):
                verdict = verify_plan(self.schema, tree, plan)
                raise_for_errors(verdict)
                diagnostics.extend(verdict)
            result = (executor or self.executor).run(query, tree, plan)
            result.diagnostics = diagnostics
            if root is not None:
                result.trace = root
            if result.node_stats and self.use_optimizer:
                # Close the loop: traced actuals refine future estimates.
                self.optimizer.observe_execution(tree, result.node_stats)
            return result

    def _statement_executor(self) -> QueryExecutor:
        """A private executor for one snapshot Retrieve: fresh accessor
        and evaluator memo shards, so rows read at one snapshot's epoch
        can never be served to a query pinned at another."""
        return QueryExecutor(self.store, self.qualifier,
                             batch_size=self.executor.batch_size,
                             parallelism=self.executor.parallelism)

    def _lint_retrieve(self, query: RetrieveQuery) -> List:
        """Type-check a resolved Retrieve; raises on error severity and
        returns the surviving (warning/info) diagnostics."""
        from repro.analysis import lint_retrieve, raise_for_errors
        diagnostics = lint_retrieve(self.schema, query)
        raise_for_errors(diagnostics)
        return diagnostics

    def _lint_update(self, statement) -> List:
        from repro.analysis import lint_update, raise_for_errors
        diagnostics = lint_update(self.schema, statement)
        raise_for_errors(diagnostics)
        return diagnostics

    def explain(self, text: str) -> str:
        """The optimizer's strategy report for a Retrieve statement."""
        query = parse_dml(text) if isinstance(text, str) else text
        if not isinstance(query, RetrieveQuery):
            raise SimError("explain() takes a Retrieve statement")
        tree = self.qualifier.resolve_retrieve(query)
        return self.optimizer.explain(query, tree)

    @property
    def optimizer(self):
        if self._optimizer is None:
            from repro.optimizer.strategies import Optimizer
            self._optimizer = Optimizer(self)
        return self._optimizer

    def analyze(self):
        """Collect optimizer statistics (the ANALYZE pass; paper §5.1's
        "statistical optimization").  Returns the TableStatistics."""
        from repro.optimizer.statistics import analyze
        statistics = analyze(self.store)
        self.optimizer.table_statistics = statistics
        return statistics

    # -- Transactions ---------------------------------------------------------------

    def begin(self) -> None:
        self.store.transactions.begin()

    def commit(self) -> None:
        self.constraints.before_commit()
        self.store.transactions.commit()

    def abort(self) -> None:
        self.constraints.reset_deferred()
        self.store.transactions.abort()

    @contextlib.contextmanager
    def transaction(self):
        """``with db.transaction(): ...`` — commit on success, abort on
        error (including deferred-constraint failures)."""
        self.begin()
        try:
            yield self
        except BaseException:
            self.abort()
            raise
        else:
            try:
                self.commit()
            except BaseException:
                if self.store.transactions.in_transaction():
                    self.abort()
                raise

    # -- Sessions and the network front end --------------------------------------------

    def session(self, **kwargs):
        """Open a concurrent :class:`~repro.engine.sessions.Session` on
        this database (MVCC snapshot reads by default)."""
        from repro.engine.sessions import Session
        return Session(self, **kwargs)

    def serve(self, host: str = "127.0.0.1", port: int = 0, **kwargs):
        """Start a :class:`~repro.interfaces.server.SimServer` on this
        database and return it (already listening; ``server.port`` holds
        the bound port).  Stop it with ``server.stop()`` or use it as a
        context manager."""
        from repro.interfaces.server import SimServer
        server = SimServer(self, host=host, port=port, **kwargs)
        server.start()
        return server

    # -- Introspection -----------------------------------------------------------------

    def statistics(self) -> dict:
        stats = dict(self.schema.statistics())
        stats.update(self.constraints.statistics())
        stats["io"] = repr(self.store.io_stats())
        stats["read_path"] = self.store.perf.as_dict()
        stats["storage"] = self.store.storage_statistics()
        stats["locks"] = self._lock_manager.statistics()
        if self.store.trace is not None:
            stats["trace"] = self.store.trace.histograms.as_dict()
        return stats

    @property
    def io_stats(self):
        return self.store.io_stats()

    @property
    def perf(self):
        """Cumulative read-path counters (cache hits, records decoded...)."""
        return self.store.perf

    def reset_io_stats(self) -> None:
        self.store.reset_io_stats()
        self.store.perf.reset()

    # -- Tracing / EXPLAIN ANALYZE ---------------------------------------------------

    def enable_tracing(self, capacity: int = 256):
        """Attach (or re-enable) end-to-end query tracing and return the
        :class:`~repro.trace.TraceRecorder`.  Every statement then records
        a hierarchical span tree — parse, qualification, optimization,
        verification, per-node execution, mapper decodes/cache traffic and
        storage I/O — rendered by ``ResultSet.explain_analyze()``."""
        from repro.trace import attach_tracing
        recorder = self.store.trace
        if recorder is None:
            recorder = attach_tracing(self.store, capacity=capacity)
        recorder.enabled = True
        return recorder

    def disable_tracing(self, detach: bool = False) -> None:
        """Stop recording.  With ``detach=True`` the recorder is removed
        entirely (the layers' trace hooks revert to ``None``, restoring
        the zero-overhead fast path's single identity test)."""
        recorder = self.store.trace
        if recorder is not None:
            recorder.enabled = False
        if detach:
            from repro.trace import detach_tracing
            detach_tracing(self.store)

    @property
    def trace(self):
        """The attached TraceRecorder, or None when tracing is off."""
        return self.store.trace

    def trace_jsonl(self) -> str:
        """The retained statement traces as JSON Lines — one span tree
        per line, oldest first (``python -m repro trace`` emits this)."""
        recorder = self.store.trace
        if recorder is None:
            raise SimError(
                "tracing is not attached; call enable_tracing() first")
        return recorder.to_jsonl()

    def cold_cache(self) -> None:
        self.store.cold_cache()

    # -- Materialized derived relations ----------------------------------------------

    def materialize(self, name: str, kind: str, class_name: str,
                    eva_names):
        """Declare (and eagerly build) a named materialized derived
        relation — ``kind`` is ``"join"`` (one EVA's instance set) or
        ``"closure"`` (the transitive closure of an EVA hop chain).
        See :mod:`repro.mapper.materialized`."""
        manager = self.store.attach_materializations()
        return manager.declare(name, kind, class_name, eva_names)

    def refresh_materialization(self, name: str):
        """Recompute one materialization from current physical state."""
        return self.store.attach_materializations().refresh(name)

    def drop_materialization(self, name: str) -> None:
        self.store.attach_materializations().drop(name)

    def list_materializations(self):
        """All declared materializations, sorted by name."""
        if self.store.materialized is None:
            return []
        return self.store.materialized.list()

    # -- Temporal history (paper §6) ------------------------------------------------

    @property
    def clock(self) -> int:
        """The logical clock (ticks once per update statement) when
        history tracking is on."""
        self._require_history()
        return self.store.history.clock

    def attribute_history(self, surrogate: int, attr_name: str):
        """All recorded changes of one entity's attribute, oldest first."""
        self._require_history()
        return self.store.history.attribute_history(surrogate, attr_name)

    def role_history(self, surrogate: int):
        self._require_history()
        return self.store.history.role_history(surrogate)

    def value_as_of(self, surrogate: int, class_name: str, attr_name: str,
                    tick: int):
        """An attribute's value as it stood at the end of statement
        ``tick`` — a single value for DVAs, a list for MV DVAs and EVAs."""
        self._require_history()
        attr = self.schema.get_class(class_name).attribute(attr_name)
        journal = self.store.history
        if attr.is_eva:
            current = (self.store.eva_targets(surrogate, attr)
                       if self.store.has_role(surrogate, attr.owner_name)
                       else [])
            return journal.collection_as_of(surrogate, attr.name, tick,
                                            current)
        if attr.multi_valued:
            current = (self.store.read_dva(surrogate, attr)
                       if self.store.has_role(surrogate, attr.owner_name)
                       else [])
            return journal.collection_as_of(surrogate, attr.name, tick,
                                            current)
        from repro.types.tvl import NULL
        current = (self.store.read_dva(surrogate, attr)
                   if self.store.has_role(surrogate, attr.owner_name)
                   else NULL)
        return journal.scalar_as_of(surrogate, attr.name, tick, current)

    def had_role_at(self, surrogate: int, class_name: str,
                    tick: int) -> bool:
        self._require_history()
        return self.store.history.had_role_at(
            surrogate, class_name, tick,
            self.store.has_role(surrogate, class_name))

    def _require_history(self):
        if self.store.history is None:
            raise SimError(
                "history tracking is off; open the database with "
                "track_history=True")

    def simulate_crash(self) -> dict:
        """Lose all volatile state and recover from disk + log.

        Committed transactions survive; the in-flight transaction (if any)
        is undone from the write-ahead log's before-images.  Returns
        recovery statistics.
        """
        self.constraints.reset_deferred()
        return self.store.simulate_crash()

    # -- Fault injection and consistency checking -----------------------------------

    def install_faults(self, injector=None, seed: int = 0):
        """Attach a :class:`~repro.storage.faults.FaultInjector` to the
        storage devices and return it.  Arm fault plans on the returned
        injector; ``simulate_crash`` reboots a crashed device before
        recovering."""
        return self.store.install_faults(injector, seed=seed)

    def check(self, constraints: bool = True):
        """Run the semantic consistency checker against the physical
        state (read caches bypassed).  Returns a
        :class:`~repro.checker.CheckReport`; ``report.ok`` is the
        clean-bill-of-health flag the crash-torture suite asserts."""
        return self.store.check(constraints=constraints)

    # -- Persistence ------------------------------------------------------------------

    def save(self, path: str) -> None:
        """Persist the database to a file (see :mod:`repro.persistence`)."""
        from repro.persistence import save_database
        save_database(self, path)

    @classmethod
    def open(cls, path: str) -> "Database":
        """Open a database file written by :meth:`save`."""
        from repro.persistence import open_database
        return open_database(path)

    def __repr__(self):
        return f"<Database {self.schema.name}>"
