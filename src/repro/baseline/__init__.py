"""Baseline systems the paper compares against conceptually.

The paper's §1 argues the relational model "requires that concepts of an
application be fragmented to suit the model", forcing artificial joins.
:mod:`repro.baseline.relational` implements a small relational engine —
heap tables, hash indexes, scan/select/join/outer-join operators — over
the *same* block storage substrate as SIM, so query answers and block-I/O
counts are directly comparable (experiment E7).
"""

from repro.baseline.relational import RelationalDatabase, load_university_relational

__all__ = ["RelationalDatabase", "load_university_relational"]
