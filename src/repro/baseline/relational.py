"""A small relational engine over the shared block-storage substrate.

This is the comparison baseline of experiment E7: the UNIVERSITY concepts
fragmented into flat relations (the fragmentation §1 of the paper
criticizes), queried with explicit scans, selections and joins.  Because
tables live in the same :class:`~repro.storage.files.RecordFile` /
:class:`~repro.storage.buffer.BufferPool` machinery as SIM's LUCs, block
I/O counts are directly comparable.

There is deliberately no SQL parser — queries are composed from the
operator methods (``scan``, ``select``, ``hash_join``, ``left_outer_join``,
``project``, ``sort``), which is all the benchmarks need.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Iterator, List

from repro.errors import StorageError
from repro.storage.buffer import BufferPool, Disk
from repro.types.tvl import is_null
from repro.storage.files import RecordFile
from repro.storage.index import HashIndex
from repro.storage.records import RecordFormat

Row = Dict[str, object]


class Table:
    """One heap relation with optional hash indexes."""

    def __init__(self, name: str, record_file: RecordFile, format_id: int,
                 columns: List[str]):
        self.name = name
        self.file = record_file
        self.format_id = format_id
        self.columns = columns
        self.indexes: Dict[str, HashIndex] = {}
        self.row_count = 0


class RelationalDatabase:
    """Heap tables + hash indexes + pull-based operators."""

    def __init__(self, block_size: int = 1024, pool_capacity: int = 256):
        self.disk = Disk()
        self.pool = BufferPool(self.disk, pool_capacity)
        self.block_size = block_size
        self._tables: Dict[str, Table] = {}
        self._file_counter = 0
        self._format_counter = 0

    # -- DDL --------------------------------------------------------------------

    def create_table(self, name: str, columns: Dict[str, int],
                     indexes: Iterable[str] = ()) -> Table:
        """``columns`` maps column name to byte width (for blocking)."""
        if name in self._tables:
            raise StorageError(f"table {name!r} already exists")
        self._file_counter += 1
        record_file = RecordFile(self._file_counter, name, self.pool,
                                 self.block_size)
        self._format_counter += 1
        record_file.register_format(
            RecordFormat(self._format_counter, name, dict(columns)))
        table = Table(name, record_file, self._format_counter,
                      list(columns))
        for column in indexes:
            if column not in columns:
                raise StorageError(
                    f"cannot index unknown column {column!r}")
            table.indexes[column] = HashIndex(f"{name}--{column}")
        self._tables[name] = table
        return table

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise StorageError(f"unknown table {name!r}") from None

    # -- DML --------------------------------------------------------------------

    def insert(self, table_name: str, row: Row) -> None:
        table = self.table(table_name)
        record = {column: row.get(column) for column in table.columns}
        rid = table.file.insert(table.format_id, record)
        for column, index in table.indexes.items():
            if record.get(column) is not None:
                index.insert(record[column], rid)
        table.row_count += 1

    # -- Operators ----------------------------------------------------------------

    def scan(self, table_name: str) -> Iterator[Row]:
        table = self.table(table_name)
        for _, _, record in table.file.scan(table.format_id):
            yield record

    def select(self, rows: Iterable[Row],
               predicate: Callable[[Row], bool]) -> Iterator[Row]:
        return (row for row in rows if predicate(row))

    def index_lookup(self, table_name: str, column: str,
                     value) -> List[Row]:
        table = self.table(table_name)
        index = table.indexes.get(column)
        if index is None:
            raise StorageError(f"no index on {table_name}.{column}")
        rows = []
        for rid in index.lookup(value):
            _, record = table.file.read(rid)
            rows.append(record)
        return rows

    def project(self, rows: Iterable[Row],
                columns: List[str]) -> Iterator[tuple]:
        return (tuple(row.get(c) for c in columns) for row in rows)

    def hash_join(self, left_rows: Iterable[Row], right_table: str,
                  left_column: str, right_column: str,
                  prefix: str = "") -> Iterator[Row]:
        """Equi-join; the right side is read through its hash index when
        one exists, else materialized into an in-memory hash table."""
        table = self.table(right_table)
        index = table.indexes.get(right_column)
        if index is not None:
            for left in left_rows:
                key = left.get(left_column)
                if key is None:
                    continue
                for rid in index.lookup(key):
                    _, right = table.file.read(rid)
                    yield self._merge(left, right, prefix)
            return
        build: Dict[object, List[Row]] = {}
        for right in self.scan(right_table):
            build.setdefault(right.get(right_column), []).append(right)
        for left in left_rows:
            for right in build.get(left.get(left_column), ()):
                yield self._merge(left, right, prefix)

    def left_outer_join(self, left_rows: Iterable[Row], right_table: str,
                        left_column: str, right_column: str,
                        prefix: str = "") -> Iterator[Row]:
        """The directed outer join SIM's perspective semantics imply
        (paper §4.1 cites [Codd79])."""
        table = self.table(right_table)
        index = table.indexes.get(right_column)
        null_right = {f"{prefix}{c}": None for c in table.columns}
        if index is None:
            build: Dict[object, List[Row]] = {}
            for right in self.scan(right_table):
                build.setdefault(right.get(right_column), []).append(right)
        for left in left_rows:
            key = left.get(left_column)
            matches: List[Row] = []
            if key is not None:
                if index is not None:
                    matches = [table.file.read(rid)[1]
                               for rid in index.lookup(key)]
                else:
                    matches = build.get(key, [])
            if matches:
                for right in matches:
                    yield self._merge(left, right, prefix)
            else:
                merged = dict(left)
                merged.update(null_right)
                yield merged

    def sort(self, rows: Iterable[Row], key_columns: List[str]
             ) -> List[Row]:
        """Sort with nulls first, matching SIM's ordering semantics.

        Tuples never compare a None with a value: the leading flag decides
        before the value is inspected.
        """
        def key(row):
            parts = []
            for column in key_columns:
                value = row.get(column)
                parts.append((False, 0) if value is None else (True, value))
            return tuple(parts)
        return sorted(rows, key=key)

    @staticmethod
    def _merge(left: Row, right: Row, prefix: str) -> Row:
        merged = dict(left)
        for column, value in right.items():
            merged[f"{prefix}{column}"] = value
        return merged

    # -- Statistics ------------------------------------------------------------------

    @property
    def io_stats(self):
        return self.pool.stats

    def reset_io_stats(self) -> None:
        self.pool.stats.reset()

    def cold_cache(self) -> None:
        self.pool.invalidate()


# --------------------------------------------------------- university loader

def load_university_relational(sim_db, block_size: int = 1024,
                               pool_capacity: int = 256
                               ) -> RelationalDatabase:
    """Fragment a populated SIM UNIVERSITY database into flat relations.

    The schema follows the classic relational design for the same
    application: entity tables keyed by surrogate, foreign keys for 1:many
    relationships, junction tables for many:many.
    """
    rel = RelationalDatabase(block_size, pool_capacity)
    rel.create_table("person", {
        "id": 6, "name": 30, "ssn": 6, "birthdate": 4, "spouse_id": 6,
    }, indexes=["id", "ssn"])
    rel.create_table("student", {
        "id": 6, "student_nbr": 6, "advisor_id": 6, "major_dept_id": 6,
    }, indexes=["id", "advisor_id"])
    rel.create_table("instructor", {
        "id": 6, "employee_nbr": 6, "salary": 6, "bonus": 6, "dept_id": 6,
    }, indexes=["id", "dept_id"])
    rel.create_table("teaching_assistant", {"id": 6, "teaching_load": 6},
                     indexes=["id"])
    rel.create_table("course", {
        "id": 6, "course_no": 6, "title": 30, "credits": 6,
    }, indexes=["id", "course_no"])
    rel.create_table("department", {"id": 6, "dept_nbr": 6, "name": 30},
                     indexes=["id"])
    rel.create_table("enrollment", {"student_id": 6, "course_id": 6},
                     indexes=["student_id", "course_id"])
    rel.create_table("teaches", {"instructor_id": 6, "course_id": 6},
                     indexes=["instructor_id", "course_id"])
    rel.create_table("prerequisite", {"course_id": 6, "prereq_id": 6},
                     indexes=["course_id"])

    store = sim_db.store
    schema = sim_db.schema

    def attr(cls, name):
        return schema.get_class(cls).attribute(name)

    def value(surrogate, attribute):
        raw = store.read_dva(surrogate, attribute)
        return None if is_null(raw) else raw

    def one(surrogate, eva):
        targets = store.eva_targets(surrogate, eva)
        return targets[0] if targets else None

    for surrogate in store.scan_class("person"):
        rel.insert("person", {
            "id": surrogate,
            "name": value(surrogate, attr("person", "name")),
            "ssn": value(surrogate, attr("person", "soc-sec-no")),
            "birthdate": value(surrogate,
                                        attr("person", "birthdate")),
            "spouse_id": one(surrogate, attr("person", "spouse")),
        })
    for surrogate in store.scan_class("student"):
        rel.insert("student", {
            "id": surrogate,
            "student_nbr": value(surrogate,
                                          attr("student", "student-nbr")),
            "advisor_id": one(surrogate, attr("student", "advisor")),
            "major_dept_id": one(surrogate,
                                 attr("student", "major-department")),
        })
        for course_id in store.eva_targets(
                surrogate, attr("student", "courses-enrolled")):
            rel.insert("enrollment", {"student_id": surrogate,
                                      "course_id": course_id})
    for surrogate in store.scan_class("instructor"):
        rel.insert("instructor", {
            "id": surrogate,
            "employee_nbr": value(
                surrogate, attr("instructor", "employee-nbr")),
            "salary": value(surrogate,
                                     attr("instructor", "salary")),
            "bonus": value(surrogate, attr("instructor", "bonus")),
            "dept_id": one(surrogate,
                           attr("instructor", "assigned-department")),
        })
        for course_id in store.eva_targets(
                surrogate, attr("instructor", "courses-taught")):
            rel.insert("teaches", {"instructor_id": surrogate,
                                   "course_id": course_id})
    for surrogate in store.scan_class("teaching-assistant"):
        rel.insert("teaching_assistant", {
            "id": surrogate,
            "teaching_load": value(
                surrogate, attr("teaching-assistant", "teaching-load")),
        })
    for surrogate in store.scan_class("course"):
        rel.insert("course", {
            "id": surrogate,
            "course_no": value(surrogate,
                                        attr("course", "course-no")),
            "title": value(surrogate, attr("course", "title")),
            "credits": value(surrogate, attr("course", "credits")),
        })
        for prereq in store.eva_targets(surrogate,
                                        attr("course", "prerequisites")):
            rel.insert("prerequisite", {"course_id": surrogate,
                                        "prereq_id": prereq})
    for surrogate in store.scan_class("department"):
        rel.insert("department", {
            "id": surrogate,
            "dept_nbr": value(surrogate,
                                       attr("department", "dept-nbr")),
            "name": value(surrogate, attr("department", "name")),
        })
    return rel
