"""Command-line entry point: an IQF-style session over a SIM database.

Usage::

    python -m repro schema.ddl                  # REPL over an empty db
    python -m repro schema.ddl --load data.dml  # run a DML script first
    python -m repro schema.ddl -c "From c Retrieve x"   # one statement
    python -m repro --university                # the paper's demo database
    python -m repro lint schema.ddl [q.dml ...] # simcheck static analysis
    python -m repro trace schema.ddl work.dml   # traced run -> JSON Lines
    python -m repro trace --university          # trace the 12-query sweep

Inside the REPL, ``.help`` lists the dot-commands (``.schema``,
``.classes``, ``.stats``, ``.design``, ``.explain``, ``.io``, ``.quit``).
"""

from __future__ import annotations

import argparse
import sys

from repro.database import Database
from repro.errors import SimError
from repro.interfaces.iqf import IQFSession


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="SIM (SIGMOD 1988) — semantic database REPL")
    parser.add_argument("schema", nargs="?",
                        help="DDL file defining the database schema, or a"
                             " .simdb file saved with .save / db.save()")
    parser.add_argument("--university", action="store_true",
                        help="open the paper's populated UNIVERSITY demo")
    parser.add_argument("--load", metavar="SCRIPT",
                        help="DML script to run before the session")
    parser.add_argument("-c", "--command", action="append", default=[],
                        metavar="STATEMENT",
                        help="run a statement and exit (repeatable)")
    parser.add_argument("--constraint-mode", default="immediate",
                        choices=["immediate", "deferred", "off"],
                        help="VERIFY checking mode (default: immediate)")
    parser.add_argument("--no-optimizer", action="store_true",
                        help="always use the canonical nested-loop strategy")
    return parser


def open_database(args) -> Database:
    if args.university:
        from repro.workloads import build_university
        return build_university(constraint_mode=args.constraint_mode,
                                use_optimizer=not args.no_optimizer)
    if not args.schema:
        raise SystemExit("error: provide a DDL file or --university "
                         "(see --help)")
    if args.schema.endswith(".simdb"):
        return Database.open(args.schema)
    with open(args.schema) as handle:
        ddl = handle.read()
    return Database(ddl, constraint_mode=args.constraint_mode,
                    use_optimizer=not args.no_optimizer)


def build_trace_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro trace",
        description="Run a workload with end-to-end tracing and emit one "
                    "JSON span tree per statement (JSON Lines) on stdout")
    parser.add_argument("schema", nargs="?",
                        help="DDL file or saved .simdb database")
    parser.add_argument("workload", nargs="?",
                        help="DML script (';'-terminated statements; lines "
                             "starting with -- are comments).  Defaults to "
                             "the 12-query sweep with --university")
    parser.add_argument("--university", action="store_true",
                        help="trace against the populated UNIVERSITY demo")
    parser.add_argument("--constraint-mode", default="immediate",
                        choices=["immediate", "deferred", "off"])
    parser.add_argument("--no-optimizer", action="store_true")
    return parser


def read_workload(path: str) -> list:
    with open(path) as handle:
        text = handle.read()
    lines = [line for line in text.splitlines()
             if not line.lstrip().startswith("--")]
    statements = [part.strip() for part in "\n".join(lines).split(";")]
    return [statement for statement in statements if statement]


def trace_main(argv) -> int:
    import json
    args = build_trace_parser().parse_args(argv)
    try:
        database = open_database(args)
        if args.workload:
            statements = read_workload(args.workload)
        elif args.university:
            from repro.workloads.university import UNIVERSITY_QUERIES
            statements = list(UNIVERSITY_QUERIES)
        else:
            raise SystemExit("error: provide a workload script or "
                             "--university (see --help)")
    except (OSError, SimError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    recorder = database.enable_tracing(
        capacity=max(len(statements) + 1, 256))
    # Metadata header first, so consumers can map span counters (which
    # speak LUC / unit names) back to the semantic schema.
    print(json.dumps({"schema": database.schema.name,
                      "statements": len(statements),
                      "layout": database.store.luc_schema.layout_summary()},
                     sort_keys=True))
    failures = 0
    for statement in statements:
        try:
            database.execute(statement)
        except SimError as exc:
            failures += 1
            print(f"error: {exc}", file=sys.stderr)
    print(database.trace_jsonl())
    return 1 if failures else 0


def main(argv=None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "lint":
        from repro.analysis.cli import main as lint_main
        return lint_main(argv[1:])
    if argv and argv[0] == "trace":
        return trace_main(argv[1:])
    args = build_parser().parse_args(argv)
    try:
        database = open_database(args)
    except (OSError, SimError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    session = IQFSession(database)
    if args.load:
        try:
            with open(args.load) as handle:
                session.run(handle)
        except OSError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1

    if args.command:
        for statement in args.command:
            session.handle(statement)
        return 0

    print("SIM repl — .help for commands, .quit to leave")
    session.run()
    return 0


if __name__ == "__main__":
    sys.exit(main())
