"""Named, incrementally-maintained materialized derived relations.

Litwin's *Stored and Inherited Relations* motivates the shape: a derived
relation (a hot EVA join like ``advisor`` of ``student``, or the
transitive closure of ``prerequisites``) is worth storing when it is
read far more often than its base relations change.  A
:class:`Materialization` holds the fully-computed relation as plain
dictionaries; the manager serves traversals from it on the read path and
keeps it current from the Mapper's write events.

Two kinds:

* ``"join"`` — one EVA's full instance set, both directions
  (``forward``: canonical-side source -> targets, ``reverse``: the
  inverse direction).  Maintained *incrementally*: each
  ``eva_changed`` event applies the single-pair delta under the
  manager's lock.  A delta that disagrees with the stored state (the
  pair already present on add, absent on remove — possible when a
  refresh races a writer) marks the materialization stale instead of
  guessing; staleness converges through the next lazy refresh.
* ``"closure"`` — the transitive closure of an EVA hop chain from every
  entity of the anchor class, stored as the engine's exact
  ``(target, level)`` pair lists.  Any change to a chain relationship
  marks it stale; the next probe refreshes it in place.

Transactional story (tentpole layer 3): deltas apply at write time
inside the owning transaction's statement.  If that transaction aborts —
or a statement rolls back, or the store crash-recovers — the rollback
surgery fires ``TransactionManager.invalidation_hooks``, which reaches
:meth:`MaterializationManager.rollback` through the write notifier and
marks *everything* stale; the next read recomputes from the recovered
physical state, which makes maintenance idempotent through WAL replay.
Snapshot (MVCC) Retrieves never consult materializations at all — the
serve paths check ``store.current_snapshot() is None`` — so epoch
consistency is preserved trivially: snapshot readers pay the version-
chain fold they already paid before this module existed.

Locking: ``mapper.materialized`` is rank 22 — below the unit latches
(42) whose holders publish write events into :meth:`eva_changed`, and
above ``mapper.read_cache`` (20), which refresh acquires through the
store's read path.  Both orders are descending, so lockdep stays green.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import CatalogError
from repro.naming import canon
from repro.storage.latch import ranked_lock


@dataclass
class Materialization:
    """One named derived relation and its stored content."""

    name: str
    kind: str                       # "join" | "closure"
    class_name: str                 # anchor (perspective) class
    eva_names: Tuple[str, ...]      # one EVA (join) or the hop chain (closure)
    #: resolved schema EVAs, anchor-out (set by the manager)
    evas: tuple = ()
    #: canonical rel_ids of every EVA involved (staleness triggers)
    rel_ids: frozenset = frozenset()
    #: join: canonical rel_id this materialization serves
    rel_id: Optional[int] = None
    self_inverse: bool = False
    fresh: bool = False
    refreshes: int = 0
    #: join: canonical-direction source -> target tuple
    forward: Dict[int, tuple] = field(default_factory=dict)
    #: join: inverse-direction source -> target tuple
    reverse: Dict[int, tuple] = field(default_factory=dict)
    #: closure: anchor surrogate -> ((target, level), ...)
    closure: Dict[int, tuple] = field(default_factory=dict)

    def spec(self) -> dict:
        """The declaration, as persisted (content is always recomputed)."""
        return {"name": self.name, "kind": self.kind,
                "class_name": self.class_name,
                "eva_names": list(self.eva_names)}

    def describe(self) -> str:
        chain = " of ".join(reversed(self.eva_names))
        state = "fresh" if self.fresh else "stale"
        if self.kind == "join":
            pairs = sum(len(t) for t in self.forward.values())
            detail = f"{pairs} pairs"
        else:
            chain = f"transitive({chain})"
            pairs = sum(len(t) for t in self.closure.values())
            detail = f"{len(self.closure)} sources, {pairs} reachable"
        return (f"{self.name}: {chain} of {self.class_name} "
                f"[{self.kind}, {state}, {detail}, "
                f"refreshes {self.refreshes}]")


class MaterializationManager:
    """Declares, serves, and maintains a store's materializations.

    Registered as a :class:`~repro.mapper.writes.WriteSubscriber`; the
    store's hot traversal paths probe :meth:`serve_eva` /
    :meth:`serve_closure`, which answer only from *fresh* content and
    bump the ``materialized_hits`` / ``materialized_misses`` counters
    the trace layer renders per statement.
    """

    def __init__(self, store):
        self.store = store
        self.schema = store.schema
        self.perf = store.perf
        self.enabled = True
        self._mats: Dict[str, Materialization] = {}
        #: canonical rel_id -> join materialization (read lock-free on
        #: the hot path; rebuilt-and-swapped under the lock)
        self._by_rel: Dict[int, Materialization] = {}
        #: hop-chain id() signature -> closure materialization
        self._by_chain: Dict[tuple, Materialization] = {}
        #: canonical rel_id -> closure mats invalidated by that rel
        #: (rebuilt wholesale under the lock, read lock-free)
        self._closure_triggers: Dict[int, tuple] = {}
        # Rank 22: above read_cache (20), below the unit latches (42)
        # whose holders publish the eva_changed deltas applied here.
        self._lock = ranked_lock("mapper.materialized")

    # ---------------------------------------------------------------- lifecycle

    def declare(self, name: str, kind: str, class_name: str,
                eva_names) -> Materialization:
        """Declare (and eagerly build) a named materialization."""
        name = canon(name)
        kind = kind.lower()
        if kind not in ("join", "closure"):
            raise CatalogError(f"unknown materialization kind {kind!r}")
        class_name = canon(class_name)
        if not self.schema.has_class(class_name):
            raise CatalogError(f"unknown class {class_name!r}")
        eva_names = tuple(canon(n) for n in (
            eva_names if isinstance(eva_names, (list, tuple))
            else [eva_names]))
        if kind == "join" and len(eva_names) != 1:
            raise CatalogError("a join materialization names exactly one EVA")
        if not eva_names:
            raise CatalogError("a materialization needs at least one EVA")
        evas = self._resolve_chain(class_name, eva_names)
        mat = Materialization(name, kind, class_name, eva_names, evas=evas)
        mat.rel_ids = frozenset(self.store.eva_info(eva).rel_id
                                for eva in evas)
        if kind == "join":
            info = self.store.eva_info(evas[0])
            mat.rel_id = info.rel_id
            mat.self_inverse = bool(info.self_inverse)
        with self._lock:
            if name in self._mats:
                raise CatalogError(f"materialization {name!r} already exists")
            if kind == "join" and mat.rel_id in self._by_rel:
                raise CatalogError(
                    f"EVA {eva_names[0]!r} is already materialized as "
                    f"{self._by_rel[mat.rel_id].name!r}")
            self._mats[name] = mat
            if kind == "join":
                self._by_rel[mat.rel_id] = mat
            else:
                self._by_chain[self._chain_key(evas)] = mat
                self._rebuild_triggers()
        self.refresh(name)
        return mat

    def _rebuild_triggers(self) -> None:
        triggers: Dict[int, list] = {}
        for mat in self._mats.values():
            if mat.kind != "closure":
                continue
            for rel_id in mat.rel_ids:
                triggers.setdefault(rel_id, []).append(mat)
        self._closure_triggers = {rel_id: tuple(mats)  # noqa: SIM303
                                  for rel_id, mats in triggers.items()}

    def _resolve_chain(self, class_name: str, eva_names) -> tuple:
        evas = []
        cursor = class_name
        for eva_name in eva_names:
            sim_class = self.schema.get_class(cursor)
            if not sim_class.has_attribute(eva_name):
                raise CatalogError(
                    f"class {cursor!r} has no attribute {eva_name!r}")
            attr = sim_class.attribute(eva_name)
            if not attr.is_eva:
                raise CatalogError(
                    f"{eva_name!r} of {cursor!r} is not an EVA")
            evas.append(attr)
            cursor = attr.range_class_name
        return tuple(evas)

    @staticmethod
    def _chain_key(evas) -> tuple:
        return tuple(id(eva) for eva in evas)

    def drop(self, name: str) -> None:
        name = canon(name)
        with self._lock:
            mat = self._mats.pop(name, None)
            if mat is None:
                raise CatalogError(f"unknown materialization {name!r}")
            if mat.kind == "join":
                self._by_rel.pop(mat.rel_id, None)
            else:
                self._by_chain.pop(self._chain_key(mat.evas), None)
                self._rebuild_triggers()

    def get(self, name: str) -> Materialization:
        mat = self._mats.get(canon(name))
        if mat is None:
            raise CatalogError(f"unknown materialization {canon(name)!r}")
        return mat

    def list(self) -> List[Materialization]:
        with self._lock:
            return sorted(self._mats.values(), key=lambda m: m.name)

    def specs(self) -> List[dict]:
        """Declarations for persistence (content never persists: opening
        a database is a restart, and stale-on-restart + lazy refresh is
        what makes maintenance idempotent through WAL replay)."""
        return [mat.spec() for mat in self.list()]

    # ------------------------------------------------------------------ refresh

    def refresh(self, name: str) -> Materialization:
        """Recompute one materialization from the current physical state."""
        mat = self.get(name)
        with self._lock:
            if mat.kind == "join":
                self._refresh_join(mat)
            else:
                self._refresh_closure(mat)
            mat.fresh = True
            mat.refreshes += 1
        trace = self.store.trace
        if trace is not None and trace.enabled:
            trace.event("materialized_refresh", name=mat.name,
                        kind=mat.kind)
        return mat

    def _refresh_join(self, mat: Materialization) -> None:
        store = self.store
        info = store.eva_info(mat.evas[0])
        canonical = info.canonical
        forward: Dict[int, tuple] = {}
        reverse: Dict[int, tuple] = {}
        for source in list(store.scan_class(canonical.owner_name)):
            if info.self_inverse:
                targets = (store._traverse(info, source, forward=True)
                           + store._traverse(info, source, forward=False))
            else:
                targets = store._traverse(info, source, forward=True)
            if targets:
                forward[source] = tuple(targets)
                for target in targets:
                    reverse[target] = reverse.get(target, ()) + (source,)
        mat.forward = forward
        mat.reverse = reverse

    def _refresh_closure(self, mat: Materialization) -> None:
        # Recompute with the engine's own BFS so served pair lists are
        # bit-identical to uncached evaluation (ordered-by EVAs included).
        # Serving is disabled for the recompute: the BFS itself probes
        # serve_closure, and answering from the still-stale (or
        # half-built) content here would recurse or lie.
        from repro.engine.access import EntityAccessor
        accessor = EntityAccessor(self.store)
        closure: Dict[int, tuple] = {}
        chain = list(mat.evas)
        with self.disabled():
            for source in list(self.store.scan_class(mat.class_name)):
                closure[source] = tuple(accessor.transitive(source, chain))
        mat.closure = closure

    def refresh_all(self) -> None:
        for mat in self.list():
            self.refresh(mat.name)

    def mark_all_stale(self) -> None:
        with self._lock:
            for mat in self._mats.values():
                mat.fresh = False

    # ------------------------------------------------------------------ serving

    def serve_eva(self, rel_id: int, side: bool,
                  surrogate: int) -> Optional[tuple]:
        """Targets of one traversal, or None (stale / not materialized).

        Only sound outside snapshot scopes — the *callers* guard on
        ``current_snapshot() is None`` so the check is not paid twice.
        """
        if not self.enabled:
            return None
        mat = self._by_rel.get(rel_id)
        if mat is None:
            return None
        with self._lock:
            if not mat.fresh:
                self._miss()
                return None
            if mat.self_inverse or side:
                targets = mat.forward.get(surrogate, ())
            else:
                targets = mat.reverse.get(surrogate, ())
        self._hit()
        return targets

    def serve_closure(self, evas, surrogate: int) -> Optional[tuple]:
        """(target, level) pairs of a closure probe, or None.

        Stale closures auto-refresh on first probe (lazy maintenance):
        the refresh runs under the manager's lock, so concurrent probes
        converge on one recomputation.
        """
        if not self.enabled:
            return None
        mat = self._by_chain.get(self._chain_key(evas))
        if mat is None:
            return None
        with self._lock:
            if not mat.fresh:
                self._miss()
                self._refresh_closure(mat)
                mat.fresh = True
                mat.refreshes += 1
            pairs = mat.closure.get(surrogate)
        if pairs is None:
            # Entity outside the anchor extent at refresh time (e.g. just
            # inserted): fall back to direct evaluation.
            self._miss()
            return None
        self._hit()
        return pairs

    def _hit(self) -> None:
        self.perf.bump("materialized_hits")
        trace = self.store.trace
        if trace is not None and trace.enabled:
            trace.count("mapper.materialized_hits")

    def _miss(self) -> None:
        self.perf.bump("materialized_misses")
        trace = self.store.trace
        if trace is not None and trace.enabled:
            trace.count("mapper.materialized_misses")

    @contextlib.contextmanager
    def disabled(self):
        """Bypass every materialization for the block (the consistency
        checker's sweep must observe physical state only)."""
        # A racing reader that observes the transient False simply falls
        # back to direct evaluation — sound, just a missed hit.
        previous = self.enabled
        self.enabled = False  # noqa: SIM303
        try:
            yield self
        finally:
            self.enabled = previous  # noqa: SIM303

    # -------------------------------------------------- write-event subscriber

    def note_write(self) -> None:
        """Plain DVA writes don't change any derived relation here."""

    def record_changed(self, class_name: str, surrogate: int) -> None:
        """DVA values are not part of a join/closure materialization."""

    def role_changed(self, class_name: str, surrogate: int) -> None:
        """Membership changes only matter when the entity gains pairs,
        which arrives as its own ``eva_changed`` events."""

    def eva_changed(self, rel_id: int, domain_surr: int, range_surr: int,
                    added: bool) -> None:
        mat = self._by_rel.get(rel_id)
        if mat is not None:
            with self._lock:
                if mat.fresh:
                    self._apply_join_delta(mat, domain_surr, range_surr,
                                           added)
        for closure_mat in self._closure_triggers.get(rel_id, ()):
            closure_mat.fresh = False

    def _apply_join_delta(self, mat: Materialization, domain_surr: int,
                          range_surr: int, added: bool) -> None:
        if mat.self_inverse:
            # Both directions live in one map; orientation of a removal
            # is ambiguous from the event alone.  Converge via refresh.
            mat.fresh = False
            return
        forward = mat.forward.get(domain_surr, ())
        reverse = mat.reverse.get(range_surr, ())
        if added:
            if range_surr in forward or domain_surr in reverse:
                # The pair exists already: this delta raced a refresh (or
                # the base state drifted).  Guessing would double-count.
                mat.fresh = False
                return
            mat.forward[domain_surr] = forward + (range_surr,)
            mat.reverse[range_surr] = reverse + (domain_surr,)
        else:
            if range_surr not in forward or domain_surr not in reverse:
                mat.fresh = False
                return
            mat.forward[domain_surr] = tuple(t for t in forward
                                             if t != range_surr)
            mat.reverse[range_surr] = tuple(t for t in reverse
                                            if t != domain_surr)

    def rollback(self) -> None:
        """Undo surgery / crash recovery invalidated incremental state."""
        self.mark_all_stale()

    def __repr__(self):
        fresh = sum(1 for m in self._mats.values() if m.fresh)
        return (f"<MaterializationManager mats={len(self._mats)} "
                f"fresh={fresh}>")
