"""The Mapper's write-event hub: one invalidation point, many listeners.

Before this module the store's mutation paths called the read cache's
invalidation methods directly from a dozen hard-coded sites.  Anything
else that needs to observe writes — today the materialized derived
relations (:mod:`repro.mapper.materialized`), tomorrow replication or
change capture — would have needed its own copies of those call sites,
each a missed-invalidation bug waiting to happen.

:class:`WriteNotifier` centralizes them: the store publishes each
mutation *once* (``record_changed``, ``role_changed``, ``eva_changed``,
``note_write``, ``rollback``) and the notifier fans it out to every
registered subscriber.  The read cache subscribes through
:class:`ReadCacheSubscriber`, which maps the events onto its existing
invalidation API, so cache behaviour is unchanged by the refactor.

Locking: the subscriber list is an immutable tuple swapped under
``mapper.writes`` (rank 24); *publishing* reads the tuple without taking
any lock, so events raised while the store holds a unit latch (rank 42)
only ever acquire the subscribers' own lower-ranked locks
(``mapper.materialized`` 22, ``mapper.read_cache`` 20) — descending,
as the declared hierarchy requires.
"""

from __future__ import annotations

from typing import Tuple

from repro.storage.latch import ranked_lock


class WriteSubscriber:
    """Interface write observers implement (all methods optional in
    spirit; the base class makes every event a no-op)."""

    def note_write(self) -> None:
        """A mutation with no finer-grained description."""

    def record_changed(self, class_name: str, surrogate: int) -> None:
        """A role record's DVA values changed."""

    def role_changed(self, class_name: str, surrogate: int) -> None:
        """A role appeared or disappeared (insert/delete/undo)."""

    def eva_changed(self, rel_id: int, domain_surr: int, range_surr: int,
                    added: bool) -> None:
        """A relationship instance was included (``added``) or excluded."""

    def rollback(self) -> None:
        """Transaction-undo surgery or crash recovery rewrote state out
        from under any derived representation: discard everything."""


class ReadCacheSubscriber(WriteSubscriber):
    """Adapts write events onto the read cache's invalidation API."""

    def __init__(self, read_cache):
        self.read_cache = read_cache

    def note_write(self) -> None:
        self.read_cache.note_write()

    def record_changed(self, class_name: str, surrogate: int) -> None:
        self.read_cache.invalidate_record(class_name, surrogate)

    def role_changed(self, class_name: str, surrogate: int) -> None:
        self.read_cache.invalidate_role(class_name, surrogate)

    def eva_changed(self, rel_id: int, domain_surr: int, range_surr: int,
                    added: bool) -> None:
        self.read_cache.invalidate_eva(rel_id, domain_surr, range_surr)

    def rollback(self) -> None:
        self.read_cache.clear()


class WriteNotifier:
    """Publishes Mapper write events to registered subscribers.

    Subscribe order is notification order; the read cache registers
    first so downstream listeners (materializations) never observe a
    state the cache still serves stale.
    """

    def __init__(self):
        self._subscribers: Tuple[WriteSubscriber, ...] = ()
        # Guards subscription changes only — rank 24 (lock_order.py).
        # Publishing iterates the tuple lock-free: tuples are immutable,
        # and a racing subscribe swaps in a fresh tuple atomically.
        self._lock = ranked_lock("mapper.writes")

    def subscribe(self, subscriber: WriteSubscriber) -> WriteSubscriber:
        with self._lock:
            self._subscribers = self._subscribers + (subscriber,)
        return subscriber

    def unsubscribe(self, subscriber: WriteSubscriber) -> None:
        with self._lock:
            self._subscribers = tuple(s for s in self._subscribers
                                      if s is not subscriber)

    # ------------------------------------------------------------------ events

    def note_write(self) -> None:
        for subscriber in self._subscribers:
            subscriber.note_write()

    def record_changed(self, class_name: str, surrogate: int) -> None:
        for subscriber in self._subscribers:
            subscriber.record_changed(class_name, surrogate)

    def role_changed(self, class_name: str, surrogate: int) -> None:
        for subscriber in self._subscribers:
            subscriber.role_changed(class_name, surrogate)

    def eva_changed(self, rel_id: int, domain_surr: int, range_surr: int,
                    added: bool) -> None:
        for subscriber in self._subscribers:
            subscriber.eva_changed(rel_id, domain_surr, range_surr, added)

    def rollback(self) -> None:
        for subscriber in self._subscribers:
            subscriber.rollback()

    def __repr__(self):
        return f"<WriteNotifier subscribers={len(self._subscribers)}>"
