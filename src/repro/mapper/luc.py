"""Logical Underlying Components (LUCs) and their relationships.

Paper §5.1: "A LUC is a collection of records all of whose fields are
single-valued.  Relationships between LUCs come in three flavors, based on
the SIM objects they represent: class-subclass links (always 1:1),
Multi-valued DVAs (1:many between an independent LUC and a dependent LUC)
and EVAs (1:1, 1:many or many:many between two independent LUCs)."
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import SchemaError
from repro.naming import canon


class LUC:
    """One Logical Underlying Component: flat single-valued records.

    ``kind`` is ``"class"`` for class/subclass LUCs (independent) or
    ``"mvdva"`` for the dependent LUC of a multi-valued DVA.
    """

    def __init__(self, name: str, kind: str, class_name: str,
                 fields: Dict[str, object],
                 mv_attribute_name: Optional[str] = None):
        if kind not in ("class", "mvdva"):
            raise SchemaError(f"unknown LUC kind {kind!r}")
        self.name = canon(name)
        self.kind = kind
        #: the SIM class this LUC belongs to (owner class for MV-DVA LUCs)
        self.class_name = canon(class_name)
        #: field name -> DataType
        self.fields = dict(fields)
        #: for mvdva LUCs, the attribute they materialize
        self.mv_attribute_name = (canon(mv_attribute_name)
                                  if mv_attribute_name else None)

    @property
    def independent(self) -> bool:
        return self.kind == "class"

    def __repr__(self):
        return f"<LUC {self.name} ({self.kind}, {len(self.fields)} fields)>"


class LUCRelationship:
    """A relationship between two LUCs.

    ``flavor`` ∈ {"subclass", "mvdva", "eva"}:

    * ``subclass`` — 1:1 link from superclass LUC to subclass LUC;
    * ``mvdva`` — 1:many link from an independent LUC to its dependent
      MV-DVA LUC;
    * ``eva`` — 1:1, 1:many or many:many between two independent LUCs;
      carries the EVA/inverse attribute names.
    """

    def __init__(self, name: str, flavor: str, domain_luc: str,
                 range_luc: str, multiplicity: str,
                 eva_name: Optional[str] = None,
                 inverse_name: Optional[str] = None):
        if flavor not in ("subclass", "mvdva", "eva"):
            raise SchemaError(f"unknown relationship flavor {flavor!r}")
        if multiplicity not in ("1:1", "1:many", "many:1", "many:many"):
            raise SchemaError(f"unknown multiplicity {multiplicity!r}")
        self.name = canon(name)
        self.flavor = flavor
        self.domain_luc = canon(domain_luc)
        self.range_luc = canon(range_luc)
        self.multiplicity = multiplicity
        self.eva_name = canon(eva_name) if eva_name else None
        self.inverse_name = canon(inverse_name) if inverse_name else None

    def __repr__(self):
        return (f"<LUCRelationship {self.name} {self.flavor} "
                f"{self.domain_luc}->{self.range_luc} {self.multiplicity}>")


class LUCSchema:
    """The complete LUC translation of one SIM schema."""

    def __init__(self):
        self._lucs: Dict[str, LUC] = {}
        self._relationships: Dict[str, LUCRelationship] = {}

    def add_luc(self, luc: LUC) -> LUC:
        if luc.name in self._lucs:
            raise SchemaError(f"LUC {luc.name!r} defined twice")
        self._lucs[luc.name] = luc
        return luc

    def add_relationship(self, rel: LUCRelationship) -> LUCRelationship:
        if rel.name in self._relationships:
            raise SchemaError(f"LUC relationship {rel.name!r} defined twice")
        if rel.domain_luc not in self._lucs or rel.range_luc not in self._lucs:
            raise SchemaError(
                f"relationship {rel.name!r} references unknown LUCs")
        self._relationships[rel.name] = rel
        return rel

    def luc(self, name: str) -> LUC:
        try:
            return self._lucs[canon(name)]
        except KeyError:
            raise SchemaError(f"unknown LUC {name!r}") from None

    def class_luc(self, class_name: str) -> LUC:
        """The class LUC for a SIM class (named after the class)."""
        return self.luc(class_name)

    def relationship(self, name: str) -> LUCRelationship:
        try:
            return self._relationships[canon(name)]
        except KeyError:
            raise SchemaError(f"unknown LUC relationship {name!r}") from None

    def lucs(self) -> List[LUC]:
        return list(self._lucs.values())

    def relationships(self, flavor: Optional[str] = None
                      ) -> List[LUCRelationship]:
        rels = list(self._relationships.values())
        if flavor is not None:
            rels = [r for r in rels if r.flavor == flavor]
        return rels

    def relationships_of_luc(self, luc_name: str) -> List[LUCRelationship]:
        key = canon(luc_name)
        return [r for r in self._relationships.values()
                if r.domain_luc == key or r.range_luc == key]

    def eva_relationship_for(self, owner_class: str,
                             eva_name: str) -> LUCRelationship:
        """Find the EVA relationship carrying ``owner_class.eva_name`` on
        either end."""
        owner = canon(owner_class)
        eva = canon(eva_name)
        for rel in self._relationships.values():
            if rel.flavor != "eva":
                continue
            if rel.domain_luc == owner and rel.eva_name == eva:
                return rel
            if rel.range_luc == owner and rel.inverse_name == eva:
                return rel
        raise SchemaError(
            f"no EVA relationship for {owner_class}.{eva_name}")

    def layout_summary(self) -> Dict[str, object]:
        """Compact layout description of the LUC translation — the
        metadata header of a trace export (``python -m repro trace``), so
        offline analysis can resolve decoded-record and relationship
        counts back to the Directory's view of the schema."""
        return {
            "lucs": {
                luc.name: {"kind": luc.kind,
                           "class": luc.class_name,
                           "fields": len(luc.fields)}
                for luc in self._lucs.values()},
            "relationships": {
                rel.name: {"flavor": rel.flavor,
                           "domain": rel.domain_luc,
                           "range": rel.range_luc,
                           "multiplicity": rel.multiplicity}
                for rel in self._relationships.values()},
        }

    def __repr__(self):
        return (f"<LUCSchema {len(self._lucs)} LUCs, "
                f"{len(self._relationships)} relationships>")
