"""Logical pre-image version chains: MVCC snapshot reads for the Mapper.

The paper leans on DMSII for concurrency control (§1); this module is
the substrate's reader half of it.  Writers keep strict 2PL exclusive
locks (:mod:`repro.engine.sessions`) and mutate records in place, but
*before* every first mutation of a logical read unit they stage its
pre-image here.  A Retrieve then runs against a :class:`Snapshot`
pinned to a commit epoch: commits with a later epoch, and other
transactions' uncommitted writes, are invisible — readers never take
class locks and never block writers.

Version granularity is the Mapper's logical read unit, not the physical
page.  Three key shapes cover every read path:

* ``("rec", class, surrogate)`` — an entity's role record: the
  pre-image ``(rid, field dict)``, or :data:`ABSENT` when the role did
  not exist (so records inserted after the snapshot disappear);
* ``("mv", class, attr, surrogate)`` — a separate-unit MV DVA's value
  tuple;
* ``("fan", rel_id, side, surrogate)`` — one side of an EVA fan-out.

Class membership (``scan_class``) is versioned as per-class deltas:
each commit's added/removed surrogate sets are chained by epoch, and a
snapshot reader folds the chain backwards over the physical extent.

Visibility rule: a reader at epoch ``S`` takes the pre-image of the
*earliest* committed change with epoch ``> S`` (the value as it stood at
``S``); failing that, the pre-image of another transaction's pending
write; failing that, the physical state.  The reader's own uncommitted
writes read physical (read-your-own-writes).

Writers stage BEFORE mutating, so a lock-free reader can double-check:
probe the version map, read physical on a miss, then re-probe — a
concurrent mutation is caught by the second probe.

Chains are pruned to the oldest active snapshot's epoch: a reader at
``S`` only ever selects entries with epoch ``> S``, so once no snapshot
is older than an entry it is unreachable and dropped; with no snapshots
open at all the chains empty out entirely.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.storage.latch import ranked_lock


class _Absent:
    """Sentinel pre-image: the role/record did not exist at staging."""

    __slots__ = ()

    def __repr__(self):
        return "<ABSENT>"


ABSENT = _Absent()


class Snapshot:
    """A pinned read view: commits with epoch <= ``epoch`` are visible;
    later commits and other transactions' pending writes are not.
    ``txn_id`` marks the reader's own transaction (if any) so the
    snapshot reads its own uncommitted writes physically."""

    __slots__ = ("epoch", "txn_id", "active")

    def __init__(self, epoch: int, txn_id: Optional[int] = None):
        self.epoch = epoch
        self.txn_id = txn_id
        self.active = True

    def __repr__(self):
        return f"<Snapshot epoch={self.epoch} txn={self.txn_id}>"


class VersionManager:
    """Pending pre-images + committed version chains, under one mutex.

    ``enabled`` gates all staging: the plain single-threaded execution
    paths do zero extra I/O (pre-image staging reads records), which
    keeps the crash-torture suite's seeded fault ordinals stable.
    Sessions flip it on via ``MapperStore.enable_mvcc()``.
    """

    def __init__(self):
        self._mutex = ranked_lock("mapper.versions")
        self.enabled = False
        #: commit counter; bumped once per committed transaction that
        #: staged anything
        self.epoch = 0
        # pending (uncommitted) pre-images: key -> (txn_id, pre, class)
        self._pending: Dict[tuple, Tuple[Optional[int], object, str]] = {}
        self._txn_keys: Dict[Optional[int], List[tuple]] = {}
        # committed chains: key -> [(epoch, pre_image)] ascending
        self._chains: Dict[tuple, List[Tuple[int, object]]] = {}
        # class-membership deltas: txn -> class -> (added, removed);
        # committed: class -> [(epoch, added, removed)] ascending
        self._member_pending: Dict[Optional[int],
                                   Dict[str, Tuple[set, set]]] = {}
        self._member_chains: Dict[str,
                                  List[Tuple[int, frozenset, frozenset]]] = {}
        # per-class dirtiness for the index fast-path clean check
        self._class_pending: Dict[str, Set[Optional[int]]] = {}
        self._txn_classes: Dict[Optional[int], Set[str]] = {}
        self._class_epoch: Dict[str, int] = {}
        # active snapshots by pinned epoch (for chain GC)
        self._active: Dict[int, int] = {}
        self._pruned_to = 0
        self.snapshots_opened = 0
        self.commits = 0

    # -- Snapshot lifecycle ------------------------------------------------------

    def begin_snapshot(self, txn_id: Optional[int] = None) -> Snapshot:
        with self._mutex:
            snap = Snapshot(self.epoch, txn_id)
            self._active[snap.epoch] = self._active.get(snap.epoch, 0) + 1
            self.snapshots_opened += 1
            return snap

    def end_snapshot(self, snap: Snapshot) -> None:
        with self._mutex:
            if not snap.active:
                return
            snap.active = False
            count = self._active.get(snap.epoch, 0) - 1
            if count <= 0:
                self._active.pop(snap.epoch, None)
            else:
                self._active[snap.epoch] = count
            self._prune()

    # -- Writer side: staging ----------------------------------------------------

    def is_staged(self, key: tuple) -> bool:
        """True when a pending pre-image exists for ``key`` (the
        writer's exclusive class or entity locks guarantee it can only
        be this transaction's), so the store can skip recomputing the
        pre-image."""
        return key in self._pending

    def stage(self, txn_id: Optional[int], key: tuple, pre_image,
              class_name: str) -> None:
        """Record ``key``'s pre-image before its first mutation by
        ``txn_id`` (first write wins).  A ``txn_id`` of None is an
        auto-committed Mapper-level mutation: it becomes a committed
        chain entry immediately."""
        with self._mutex:
            if txn_id is None:
                self.epoch += 1
                self._chains.setdefault(key, []).append(
                    (self.epoch, pre_image))
                self._class_epoch[class_name] = self.epoch
                self._prune()
                return
            if key in self._pending:
                return
            self._pending[key] = (txn_id, pre_image, class_name)
            self._txn_keys.setdefault(txn_id, []).append(key)
            self._mark_class(txn_id, class_name)

    def stage_member(self, txn_id: Optional[int], class_name: str,
                     surrogate: int, adding: bool) -> None:
        """Record a class-membership change (role added/removed)."""
        with self._mutex:
            if txn_id is None:
                self.epoch += 1
                added = frozenset((surrogate,)) if adding else frozenset()
                removed = frozenset() if adding else frozenset((surrogate,))
                self._member_chains.setdefault(class_name, []).append(
                    (self.epoch, added, removed))
                self._class_epoch[class_name] = self.epoch
                self._prune()
                return
            per_class = self._member_pending.setdefault(txn_id, {})
            added, removed = per_class.setdefault(class_name, (set(), set()))
            if adding:
                if surrogate in removed:
                    removed.discard(surrogate)
                else:
                    added.add(surrogate)
            else:
                if surrogate in added:
                    added.discard(surrogate)
                else:
                    removed.add(surrogate)
            self._mark_class(txn_id, class_name)

    def _mark_class(self, txn_id: Optional[int], class_name: str) -> None:
        self._class_pending.setdefault(class_name, set()).add(txn_id)
        self._txn_classes.setdefault(txn_id, set()).add(class_name)

    # -- Writer side: transaction outcome ----------------------------------------

    def commit(self, txn_id: int) -> None:
        """Promote the transaction's pending pre-images to committed
        chain entries under one new epoch (the visibility flip: new
        snapshots now see the transaction's writes physically; open
        snapshots keep reading the chained pre-images)."""
        with self._mutex:
            keys = self._txn_keys.pop(txn_id, None)
            members = self._member_pending.pop(txn_id, None)
            self._clear_class_marks(txn_id)
            if not keys and not members:
                return
            self.epoch += 1
            epoch = self.epoch
            self.commits += 1
            for key in keys or ():
                _, pre_image, class_name = self._pending.pop(key)
                self._chains.setdefault(key, []).append((epoch, pre_image))
                self._class_epoch[class_name] = epoch
            for class_name, (added, removed) in (members or {}).items():
                if added or removed:
                    self._member_chains.setdefault(class_name, []).append(
                        (epoch, frozenset(added), frozenset(removed)))
                    self._class_epoch[class_name] = epoch
            self._prune()

    def abort(self, txn_id: int) -> None:
        """Drop the transaction's pending pre-images (the undo log has
        restored the physical state they described)."""
        with self._mutex:
            for key in self._txn_keys.pop(txn_id, ()):
                self._pending.pop(key, None)
            self._member_pending.pop(txn_id, None)
            self._clear_class_marks(txn_id)

    def _clear_class_marks(self, txn_id: Optional[int]) -> None:
        for class_name in self._txn_classes.pop(txn_id, ()):
            holders = self._class_pending.get(class_name)
            if holders is not None:
                holders.discard(txn_id)
                if not holders:
                    del self._class_pending[class_name]

    # -- Reader side -------------------------------------------------------------

    def lookup(self, snap: Snapshot, key: tuple) -> Tuple[bool, object]:
        """``(hit, pre_image)`` for one key under ``snap``.

        A miss means the physical state IS the snapshot state for this
        key (no commit after the snapshot's epoch, no foreign pending
        write) — or that the reader owns the pending write and should
        read its own mutation physically.
        """
        with self._mutex:
            pending = self._pending.get(key)
            if (pending is not None and snap.txn_id is not None
                    and pending[0] == snap.txn_id):
                return (False, None)
            chain = self._chains.get(key)
            if chain is not None:
                for epoch, pre_image in chain:
                    if epoch > snap.epoch:
                        return (True, pre_image)
            if pending is not None:
                return (True, pending[1])
            return (False, None)

    def visible_members(self, snap: Snapshot, class_name: str,
                        physical: List[int]) -> List[int]:
        """Fold the class's membership deltas backwards over a physical
        extent scan: surrogates added after the snapshot are hidden,
        surrogates removed after it are restored (appended in surrogate
        order after the physically-ordered survivors).  The scan must
        complete BEFORE this is called — staging precedes mutation, so
        a membership change racing the scan is always in the fold."""
        with self._mutex:
            steps: List[Tuple[frozenset, frozenset]] = []
            for txn_id, per_class in self._member_pending.items():
                if txn_id == snap.txn_id:
                    continue
                delta = per_class.get(class_name)
                if delta is not None and (delta[0] or delta[1]):
                    steps.append((frozenset(delta[0]), frozenset(delta[1])))
            chain = self._member_chains.get(class_name)
            if chain is not None:
                for epoch, added, removed in reversed(chain):
                    if epoch > snap.epoch:
                        steps.append((added, removed))
        if not steps:
            return list(physical)
        visible = set(physical)
        for added, removed in steps:
            visible -= added
            visible |= removed
        physical_set = set(physical)
        result = [s for s in physical if s in visible]
        result.extend(sorted(visible - physical_set))
        return result

    def class_clean(self, snap: Snapshot, class_names) -> bool:
        """True when physical index paths over these classes are exact
        for ``snap``: no other transaction has pending writes in them
        and no commit after the snapshot's epoch touched them."""
        with self._mutex:
            for class_name in class_names:
                holders = self._class_pending.get(class_name)
                if holders and any(t != snap.txn_id for t in holders):
                    return False
                if self._class_epoch.get(class_name, 0) > snap.epoch:
                    return False
            return True

    # -- Maintenance -------------------------------------------------------------

    def _prune(self) -> None:  # noqa: SIM303 — every caller holds _mutex
        """Drop chain entries no active snapshot can reach (epoch <= the
        oldest pinned epoch; a reader at S only selects entries > S)."""
        floor = min(self._active) if self._active else self.epoch
        if floor <= self._pruned_to:
            return
        self._pruned_to = floor
        for key in list(self._chains):
            chain = [e for e in self._chains[key] if e[0] > floor]
            if chain:
                self._chains[key] = chain
            else:
                del self._chains[key]
        for class_name in list(self._member_chains):
            chain = [e for e in self._member_chains[class_name]
                     if e[0] > floor]
            if chain:
                self._member_chains[class_name] = chain
            else:
                del self._member_chains[class_name]

    def reset(self) -> None:
        """Crash path: all snapshots and versions are volatile state.
        The epoch stays monotonic so a stale Snapshot object can never
        see a fresh epoch as 'old'."""
        with self._mutex:
            self._pending.clear()
            self._txn_keys.clear()
            self._chains.clear()
            self._member_pending.clear()
            self._member_chains.clear()
            self._class_pending.clear()
            self._txn_classes.clear()
            self._class_epoch.clear()
            self._active.clear()
            self._pruned_to = self.epoch

    def statistics(self) -> Dict[str, int]:
        with self._mutex:
            return {
                "enabled": self.enabled,
                "epoch": self.epoch,
                "versioned_commits": self.commits,
                "snapshots_opened": self.snapshots_opened,
                "active_snapshots": sum(self._active.values()),
                "chained_keys": len(self._chains),
                "pending_keys": len(self._pending),
            }

    def __repr__(self):
        return (f"<VersionManager epoch={self.epoch} "
                f"chains={len(self._chains)} pending={len(self._pending)}>")
