"""Read-path caches above the physical mapping.

The paper's nested-loop semantics program (§4.5) re-reads every DVA and
re-traverses every EVA once per enumerated tuple, and §5.1 concedes that
statistical optimization "is not fully implemented yet" — so the read
path dominates every workload.  This module keeps LRU caches of the
*decoded* conceptual-level reads, keyed by surrogate, one level above the
block substrate:

* ``records`` — decoded role records, ``(class, surrogate) -> (rid,
  values)``; a hit skips the buffer-pool probe *and* the slot decode.
* ``roles`` — role membership, ``(class, surrogate) -> rid or None``
  (``None`` is a cached negative: the entity does not hold the role).
* ``fanout`` — EVA traversal results, ``(rel_id, side, surrogate) ->
  targets tuple``, covering every physical mapping uniformly.

Correctness rests on strict invalidation: every Mapper mutation drops the
affected entries, and so does every transaction-undo closure — abort must
invalidate, not just commit.  Each invalidation bumps ``epoch``; the
engine's query-scoped memoization validates against that epoch, so one
integer compare decides whether memoized values are still current.
"""

from __future__ import annotations

import contextlib
from collections import OrderedDict
from typing import Dict, Optional

from repro.storage.latch import ranked_lock

#: sentinel distinguishing "not cached" from a cached ``None`` rid
MISSING = object()


class ReadCache:
    """Decoded-record, role-membership and EVA fan-out caches."""

    def __init__(self, perf, record_capacity: int = 4096,
                 role_capacity: int = 16384,
                 fanout_capacity: int = 8192):
        self.perf = perf
        self.enabled = True
        #: optional trace recorder (repro.trace.attach_tracing)
        self.trace = None
        #: bumped on every invalidation; validates engine-level memos
        self.epoch = 0
        self.record_capacity = record_capacity
        self.role_capacity = role_capacity
        self.fanout_capacity = fanout_capacity
        self._records: "OrderedDict[Tuple[str, int], Tuple[object, Dict]]" \
            = OrderedDict()
        self._roles: "OrderedDict[Tuple[str, int], object]" = OrderedDict()
        self._fanout: "OrderedDict[Tuple[int, bool, int], tuple]" \
            = OrderedDict()
        # One lock over all three LRUs: concurrent morsel workers probe
        # and promote entries, and OrderedDict.move_to_end racing a
        # popitem corrupts the linked order (KeyErrors, lost entries).
        # Re-entrant because invalidation paths may nest through clear().
        # Rank 20 in the declared hierarchy (analysis/lock_order.py).
        self._lock = ranked_lock("mapper.read_cache")

    # ------------------------------------------------------------------ lookups

    def get_record(self, class_name: str, surrogate: int):
        """Cached ``(rid, values)`` or None.  The values dict is shared —
        callers must treat it as read-only (every write path invalidates)."""
        if not self.enabled:
            return None
        with self._lock:
            entry = self._records.get((class_name, surrogate))
            if entry is not None:
                self._records.move_to_end((class_name, surrogate))
        trace = self.trace
        if entry is None:
            self.perf.bump("record_cache_misses")
            if trace is not None and trace.enabled:
                trace.count("mapper.record_cache_misses")
            return None
        self.perf.bump("record_cache_hits")
        if trace is not None and trace.enabled:
            trace.count("mapper.record_cache_hits")
        return entry

    def put_record(self, class_name: str, surrogate: int, rid,
                   values: Dict) -> None:
        if not self.enabled:
            return
        with self._lock:
            self._records[(class_name, surrogate)] = (rid, values)
            if len(self._records) > self.record_capacity:
                self._records.popitem(last=False)

    def get_record_batch(self, class_name: str, surrogates):
        """Batched record lookup: ``(found, missing)`` where ``found``
        maps surrogate -> (rid, values) and ``missing`` lists the rest in
        input order.  Counter totals match per-surrogate ``get_record``
        calls exactly, but hit/miss bumps aggregate into two lock
        acquisitions instead of one per surrogate."""
        found: Dict[int, tuple] = {}
        if not self.enabled:
            return found, list(surrogates)
        missing = []
        records = self._records
        with self._lock:
            for surrogate in surrogates:
                entry = records.get((class_name, surrogate))
                if entry is None:
                    missing.append(surrogate)
                else:
                    records.move_to_end((class_name, surrogate))
                    found[surrogate] = entry
        trace = self.trace
        if found:
            self.perf.bump("record_cache_hits", len(found))
            if trace is not None and trace.enabled:
                trace.count("mapper.record_cache_hits", len(found))
        if missing:
            self.perf.bump("record_cache_misses", len(missing))
            if trace is not None and trace.enabled:
                trace.count("mapper.record_cache_misses", len(missing))
        return found, missing

    def get_role(self, class_name: str, surrogate: int):
        """Cached rid (``None`` = cached negative) or :data:`MISSING`."""
        if not self.enabled:
            return MISSING
        with self._lock:
            entry = self._roles.get((class_name, surrogate), MISSING)
            if entry is not MISSING:
                self._roles.move_to_end((class_name, surrogate))
        if entry is MISSING:
            self.perf.bump("role_cache_misses")
            return MISSING
        self.perf.bump("role_cache_hits")
        return entry

    def put_role(self, class_name: str, surrogate: int,
                 rid: Optional[object]) -> None:
        if not self.enabled:
            return
        with self._lock:
            self._roles[(class_name, surrogate)] = rid
            if len(self._roles) > self.role_capacity:
                self._roles.popitem(last=False)

    def get_fanout(self, rel_id: int, side: bool, surrogate: int):
        """Cached target tuple or None (an empty result caches as ``()``)."""
        if not self.enabled:
            return None
        with self._lock:
            targets = self._fanout.get((rel_id, side, surrogate))
            if targets is not None:
                self._fanout.move_to_end((rel_id, side, surrogate))
        trace = self.trace
        if targets is None:
            self.perf.bump("fanout_cache_misses")
            if trace is not None and trace.enabled:
                trace.count("mapper.fanout_cache_misses")
            return None
        self.perf.bump("fanout_cache_hits")
        if trace is not None and trace.enabled:
            trace.count("mapper.fanout_cache_hits")
        return targets

    def get_fanout_batch(self, rel_id: int, side: bool, surrogates):
        """Batched fan-out lookup: ``(found, missing)`` where ``found``
        maps surrogate -> target tuple and ``missing`` lists the rest in
        input order.  Same counter totals as per-surrogate lookups,
        aggregated into two bumps."""
        found: Dict[int, tuple] = {}
        if not self.enabled:
            return found, list(surrogates)
        missing = []
        fanout = self._fanout
        with self._lock:
            for surrogate in surrogates:
                targets = fanout.get((rel_id, side, surrogate))
                if targets is None:
                    missing.append(surrogate)
                else:
                    fanout.move_to_end((rel_id, side, surrogate))
                    found[surrogate] = targets
        trace = self.trace
        if found:
            self.perf.bump("fanout_cache_hits", len(found))
            if trace is not None and trace.enabled:
                trace.count("mapper.fanout_cache_hits", len(found))
        if missing:
            self.perf.bump("fanout_cache_misses", len(missing))
            if trace is not None and trace.enabled:
                trace.count("mapper.fanout_cache_misses", len(missing))
        return found, missing

    def put_fanout(self, rel_id: int, side: bool, surrogate: int,
                   targets: tuple) -> None:
        if not self.enabled:
            return
        with self._lock:
            self._fanout[(rel_id, side, surrogate)] = targets
            if len(self._fanout) > self.fanout_capacity:
                self._fanout.popitem(last=False)

    # ------------------------------------------------------------- invalidation

    def note_write(self) -> None:
        """Record a mutation that has no cached representation here (e.g.
        a separate-unit MV DVA write) so engine memos still expire."""
        with self._lock:
            self.epoch += 1
        self.perf.bump("invalidations")

    def invalidate_record(self, class_name: str, surrogate: int) -> None:
        with self._lock:
            self._records.pop((class_name, surrogate), None)
        self.note_write()

    def invalidate_role(self, class_name: str, surrogate: int) -> None:
        """A role appeared or disappeared: drop membership and record."""
        with self._lock:
            self._roles.pop((class_name, surrogate), None)
            self._records.pop((class_name, surrogate), None)
        self.note_write()

    def invalidate_eva(self, rel_id: int, *surrogates: int) -> None:
        """A relationship instance changed: drop both traversal directions
        for every involved endpoint (covers self-inverse EVAs)."""
        with self._lock:
            for surrogate in surrogates:
                self._fanout.pop((rel_id, True, surrogate), None)
                self._fanout.pop((rel_id, False, surrogate), None)
        self.note_write()

    def clear(self) -> None:
        """Drop everything (cold-cache benchmarks, crash recovery, and
        the transaction manager's rollback hook)."""
        with self._lock:
            self._records.clear()
            self._roles.clear()
            self._fanout.clear()
        self.note_write()
        trace = self.trace
        if trace is not None and trace.enabled:
            trace.event("cache_clear", epoch=self.epoch)

    @contextlib.contextmanager
    def disabled(self):
        """Bypass the caches for the duration of the block.

        The consistency checker runs under this: its verdicts must come
        from the physical state, never from cached decodes that could
        mask (or themselves be) the corruption, and its sweep must not
        pollute the caches with its own traffic.  Entries present before
        the block are dropped — a checker is usually run when cached
        state is exactly what's in doubt."""
        self.clear()
        with self._lock:
            previous = self.enabled
            self.enabled = False
        try:
            yield self
        finally:
            with self._lock:
                self.enabled = previous

    # ------------------------------------------------------------------- stats

    @property
    def sizes(self) -> Dict[str, int]:
        return {"records": len(self._records),
                "roles": len(self._roles),
                "fanout": len(self._fanout)}

    def __repr__(self):
        sizes = self.sizes
        return (f"<ReadCache records={sizes['records']} "
                f"roles={sizes['roles']} fanout={sizes['fanout']} "
                f"epoch={self.epoch}>")
