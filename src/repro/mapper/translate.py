"""Standard translation of a SIM schema into a LUC schema.

Paper §5.1: "Every SIM schema has a standard translation into a LUC schema
with a LUC for every class, subclass and multi-valued DVA."  Class LUCs
carry the surrogate and the class's *immediate* single-valued DVAs;
class–subclass edges become 1:1 subclass links; each MV DVA becomes a
dependent LUC with a 1:many link from its owner; each EVA/inverse pair
becomes one EVA relationship whose multiplicity follows the MV options on
the two sides (§3.2.1).
"""

from __future__ import annotations

from repro.mapper.luc import LUC, LUCRelationship, LUCSchema
from repro.schema.schema import Schema
from repro.types.domain import IntegerType, SurrogateType


def translate_schema(schema: Schema) -> LUCSchema:
    """Build the standard LUC translation of a resolved SIM ``schema``."""
    if not schema.resolved:
        raise ValueError("schema must be resolved before translation")
    luc_schema = LUCSchema()

    # Class LUCs: surrogate + immediate single-valued DVAs.
    for sim_class in schema.classes():
        fields = {"surrogate": SurrogateType()}
        for attr in sim_class.immediate_attributes.values():
            if attr.is_eva or attr.is_subrole or attr.is_surrogate:
                continue
            if attr.single_valued:
                fields[attr.name] = attr.data_type
        luc_schema.add_luc(LUC(sim_class.name, "class", sim_class.name, fields))

    # MV-DVA LUCs: owner surrogate + sequence number + the value.
    for sim_class in schema.classes():
        for attr in sim_class.immediate_attributes.values():
            if attr.is_eva or attr.is_subrole or not attr.multi_valued:
                continue
            luc_name = f"{sim_class.name}--{attr.name}"
            fields = {
                "owner": SurrogateType(),
                "seq": IntegerType(),
                "value": attr.data_type,
            }
            luc_schema.add_luc(LUC(luc_name, "mvdva", sim_class.name, fields,
                                   mv_attribute_name=attr.name))

    # Subclass links (always 1:1).
    for sim_class in schema.classes():
        for super_name in sim_class.superclass_names:
            luc_schema.add_relationship(LUCRelationship(
                f"link--{super_name}--{sim_class.name}", "subclass",
                super_name, sim_class.name, "1:1"))

    # MV-DVA links (1:many from the independent to the dependent LUC).
    for luc in luc_schema.lucs():
        if luc.kind == "mvdva":
            luc_schema.add_relationship(LUCRelationship(
                f"link--{luc.name}", "mvdva", luc.class_name, luc.name,
                "1:many"))

    # EVA relationships: one per EVA/inverse pair, attached to the
    # canonical side (see canonical_eva).
    seen = set()
    for sim_class in schema.classes():
        for eva in sim_class.immediate_evas():
            canonical = canonical_eva(eva)
            key = (canonical.owner_name, canonical.name)
            if key in seen:
                continue
            seen.add(key)
            luc_schema.add_relationship(LUCRelationship(
                eva_relationship_name(canonical), "eva",
                canonical.owner_name, canonical.range_class_name,
                canonical.relationship_kind(),
                eva_name=canonical.name,
                inverse_name=canonical.inverse.name))
    return luc_schema


def canonical_eva(eva):
    """Pick the canonical direction of an EVA/inverse pair.

    Exactly one side of each pair owns the stored relationship; we choose
    deterministically by (owner class, attribute name).  A self-inverse EVA
    (``spouse``) is its own canonical side.
    """
    inverse = eva.inverse
    if inverse is eva:
        return eva
    mine = (eva.owner_name, eva.name)
    theirs = (inverse.owner_name, inverse.name)
    return eva if mine <= theirs else inverse


def eva_relationship_name(canonical) -> str:
    return f"eva--{canonical.owner_name}--{canonical.name}"
