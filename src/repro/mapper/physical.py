"""Physical mapping options (paper §5.2).

The high-level objects of the model are mapped into record-based storage
units by "a carefully balanced set of rules"; the user can override any
default.  A :class:`PhysicalDesign` captures all the choices:

* **Hierarchy mapping** — a tree-shaped generalization hierarchy defaults
  to ONE storage unit with variable-format records (one record type per
  class); a class with two or more immediate superclasses always gets a
  separate unit joined by 1:1 subclass links.  ``SEPARATE_UNITS`` (one
  file per class) is the ablation baseline.
* **MV DVA mapping** — with MAX: an array inside the owner's record;
  unbounded: a separate storage unit.
* **EVA mapping** — ``FOREIGN_KEY`` (default for 1:1),
  ``COMMON`` (the Common EVA Structure ``<surrogate1, rel-id, surrogate2>``,
  default for 1:many and non-distinct many:many), ``DEDICATED`` (own
  structure, default for distinct many:many), plus the override options the
  paper names: ``CLUSTERED`` (relationship records stored in the domain
  entity's block) and ``POINTER`` (absolute addresses embedded in the
  owner's record).
* **Surrogate key kind** — ``direct``, ``hash`` or ``ordered``
  (index-sequential).
"""

from __future__ import annotations

import enum
from typing import Dict, List, Set, Tuple

from repro.errors import SchemaError
from repro.mapper.translate import canonical_eva
from repro.naming import canon
from repro.schema.schema import Schema


class HierarchyMapping(enum.Enum):
    """How a generalization hierarchy maps to storage units."""

    VARIABLE_FORMAT = "variable-format"   # one unit, record type per class
    SEPARATE_UNITS = "separate-units"     # one unit per class (ablation)


class MvDvaMapping(enum.Enum):
    """How a multi-valued DVA is stored."""

    ARRAY = "array"                  # inside the owner record (MAX only)
    SEPARATE_UNIT = "separate-unit"  # dependent storage unit


class EvaMapping(enum.Enum):
    """How an EVA/inverse pair is stored."""

    FOREIGN_KEY = "foreign-key"   # surrogate field in the owner record
    COMMON = "common"             # shared Common EVA Structure
    DEDICATED = "dedicated"       # dedicated <s1, rel, s2> structure
    CLUSTERED = "clustered"       # dedicated, records placed in owner blocks
    POINTER = "pointer"           # absolute record addresses in owner record


class SurrogateKeyKind(enum.Enum):
    """Surrogate access method (§5.2)."""

    DIRECT = "direct"     # record numbers
    HASH = "hash"         # random keys based on hashing
    ORDERED = "ordered"   # index sequential keys


class PhysicalDesign:
    """All physical choices for one schema; defaults follow §5.2.

    Overrides are applied *before* :meth:`finalize`; afterwards the design
    is read-only and every question has a definite answer.
    """

    def __init__(self, schema: Schema,
                 block_size: int = 1024,
                 pool_capacity: int = 256,
                 surrogate_key_kind: SurrogateKeyKind = SurrogateKeyKind.HASH,
                 default_hierarchy: HierarchyMapping =
                 HierarchyMapping.VARIABLE_FORMAT):
        if not schema.resolved:
            raise SchemaError("physical design needs a resolved schema")
        self.schema = schema
        self.block_size = block_size
        self.pool_capacity = pool_capacity
        self.surrogate_key_kind = surrogate_key_kind
        self.default_hierarchy = default_hierarchy
        self._hierarchy_overrides: Dict[str, HierarchyMapping] = {}
        self._eva_overrides: Dict[Tuple[str, str], EvaMapping] = {}
        self._mvdva_overrides: Dict[Tuple[str, str], MvDvaMapping] = {}
        self._value_indexes: Set[Tuple[str, str]] = set()
        self._value_index_kinds: Dict[Tuple[str, str], str] = {}
        self._finalized = False

    # -- Overrides ------------------------------------------------------------

    def override_hierarchy(self, base_class: str,
                           mapping: HierarchyMapping) -> "PhysicalDesign":
        self._mutable()
        base = canon(base_class)
        if not self.schema.get_class(base).is_base:
            raise SchemaError(f"{base_class!r} is not a base class")
        self._hierarchy_overrides[base] = mapping
        return self

    def override_eva(self, class_name: str, eva_name: str,
                     mapping: EvaMapping) -> "PhysicalDesign":
        """Override the mapping of the EVA pair containing this EVA."""
        self._mutable()
        eva = self.schema.get_class(class_name).attribute(eva_name)
        if not eva.is_eva:
            raise SchemaError(f"{class_name}.{eva_name} is not an EVA")
        canonical = canonical_eva(eva)
        if (mapping is EvaMapping.FOREIGN_KEY and canonical.multi_valued
                and canonical.inverse.multi_valued):
            raise SchemaError(
                "foreign-key mapping requires a single-valued EVA side")
        self._eva_overrides[(canonical.owner_name, canonical.name)] = mapping
        return self

    def override_mv_dva(self, class_name: str, attr_name: str,
                        mapping: MvDvaMapping) -> "PhysicalDesign":
        self._mutable()
        attr = self.schema.get_class(class_name).attribute(attr_name)
        if attr.is_eva or not attr.multi_valued:
            raise SchemaError(f"{class_name}.{attr_name} is not an MV DVA")
        if (mapping is MvDvaMapping.ARRAY
                and attr.options.max_cardinality is None):
            raise SchemaError(
                f"array mapping needs a MAX bound on {class_name}.{attr_name}")
        self._mvdva_overrides[(canon(attr.owner_name), canon(attr_name))] = mapping
        return self

    def add_value_index(self, class_name: str, attr_name: str,
                        kind: str = "hash") -> "PhysicalDesign":
        """Request a secondary value index on a single-valued DVA.

        ``kind`` is ``"hash"`` (equality lookups) or ``"ordered"`` (also
        serves range predicates on the update/VERIFY selection path)."""
        self._mutable()
        if kind not in ("hash", "ordered"):
            raise SchemaError(
                f"value index kind must be 'hash' or 'ordered', "
                f"not {kind!r}")
        attr = self.schema.get_class(class_name).attribute(attr_name)
        if attr.is_eva or attr.multi_valued:
            raise SchemaError(
                f"value index needs a single-valued DVA, not "
                f"{class_name}.{attr_name}")
        key = (canon(attr.owner_name), canon(attr_name))
        self._value_indexes.add(key)
        if kind == "ordered":
            self._value_index_kinds[key] = kind
        else:
            self._value_index_kinds.pop(key, None)
        return self

    def finalize(self) -> "PhysicalDesign":
        self._finalized = True
        return self

    def _mutable(self):
        if self._finalized:
            raise SchemaError("physical design already finalized")

    # -- Decisions -----------------------------------------------------------

    def hierarchy_mapping(self, base_class: str) -> HierarchyMapping:
        return self._hierarchy_overrides.get(
            canon(base_class), self.default_hierarchy)

    def class_in_shared_unit(self, class_name: str) -> bool:
        """True when the class's records live in its hierarchy's shared
        variable-format unit.

        §5.2: classes with two or more immediate superclasses always get a
        separate unit, even inside a variable-format hierarchy.
        """
        sim_class = self.schema.get_class(class_name)
        if len(sim_class.superclass_names) >= 2:
            return False
        mapping = self.hierarchy_mapping(sim_class.base_class_name)
        if mapping is not HierarchyMapping.VARIABLE_FORMAT:
            return False
        # Every ancestor on the (single) chain must itself be in the shared
        # unit; a multi-inheritance ancestor breaks the chain.
        current = sim_class
        while current.superclass_names:
            if len(current.superclass_names) >= 2:
                return False
            current = self.schema.get_class(current.superclass_names[0])
        return True

    def eva_mapping(self, eva) -> EvaMapping:
        """The mapping of the EVA pair containing ``eva`` (schema object)."""
        canonical = canonical_eva(eva)
        override = self._eva_overrides.get(
            (canonical.owner_name, canonical.name))
        if override is not None:
            return override
        kind = canonical.relationship_kind()
        if kind == "1:1":
            return EvaMapping.FOREIGN_KEY
        if kind == "many:many" and (canonical.options.distinct
                                    or canonical.inverse.options.distinct):
            return EvaMapping.DEDICATED
        # 1:many, many:1 and non-distinct many:many default to the Common
        # EVA Structure, "to avoid the additional index structure that will
        # be needed with a foreign-key based mapping".
        return EvaMapping.COMMON

    def mv_dva_mapping(self, attr) -> MvDvaMapping:
        override = self._mvdva_overrides.get(
            (canon(attr.owner_name), canon(attr.name)))
        if override is not None:
            return override
        if attr.options.max_cardinality is not None:
            return MvDvaMapping.ARRAY
        return MvDvaMapping.SEPARATE_UNIT

    def value_indexed(self, class_name: str, attr_name: str) -> bool:
        attr = self.schema.get_class(class_name).attribute(attr_name)
        return (canon(attr.owner_name), canon(attr_name)) in self._value_indexes

    def value_indexes(self) -> List[Tuple[str, str]]:
        return sorted(self._value_indexes)

    def value_index_kind(self, owner_name: str, attr_name: str) -> str:
        """Index kind for one requested value index ('hash' default)."""
        return self._value_index_kinds.get(
            (canon(owner_name), canon(attr_name)), "hash")

    def describe(self) -> str:
        """Human-readable summary of every mapping decision (for examples)."""
        lines = [f"block size {self.block_size}, buffer pool "
                 f"{self.pool_capacity} blocks, surrogate keys "
                 f"{self.surrogate_key_kind.value}"]
        for base in self.schema.base_classes():
            lines.append(f"hierarchy {base.name}: "
                         f"{self.hierarchy_mapping(base.name).value}")
        seen = set()
        for sim_class in self.schema.classes():
            for eva in sim_class.immediate_evas():
                canonical = canonical_eva(eva)
                key = (canonical.owner_name, canonical.name)
                if key in seen:
                    continue
                seen.add(key)
                lines.append(
                    f"eva {canonical.owner_name}.{canonical.name} "
                    f"({canonical.relationship_kind()}): "
                    f"{self.eva_mapping(canonical).value}")
            for attr in sim_class.immediate_attributes.values():
                if attr.multi_valued and not attr.is_eva and not attr.is_subrole:
                    lines.append(
                        f"mv dva {sim_class.name}.{attr.name}: "
                        f"{self.mv_dva_mapping(attr).value}")
        return "\n".join(lines)
